"""Tests for MBTS geometry (Definition 2, Equations 2 and 3)."""

import numpy as np
import pytest

from repro.core.distance import chebyshev_distance
from repro.core.mbts import MBTS, mbts_gap_distance, mbts_of, sequence_mbts_distance
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def sequences():
    rng = np.random.default_rng(0)
    return rng.normal(size=(6, 12))


@pytest.fixture()
def mbts(sequences):
    return MBTS.from_sequences(sequences)


class TestConstruction:
    def test_from_sequences_bounds(self, sequences, mbts):
        assert np.array_equal(mbts.upper, sequences.max(axis=0))
        assert np.array_equal(mbts.lower, sequences.min(axis=0))

    def test_from_single_sequence(self):
        box = MBTS.from_sequence([1.0, 2.0])
        assert np.array_equal(box.upper, box.lower)

    def test_rejects_inverted(self):
        with pytest.raises(InvalidParameterError, match="lower <= upper"):
            MBTS([0.0, 0.0], [1.0, 0.0])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            MBTS([0.0, 1.0], [0.0])

    def test_rejects_empty_matrix(self):
        with pytest.raises(InvalidParameterError):
            MBTS.from_sequences(np.zeros((0, 4)))

    def test_copy_is_independent(self, mbts):
        clone = mbts.copy()
        clone.upper[0] += 100.0
        assert mbts.upper[0] != clone.upper[0]

    def test_mbts_of_alias(self, sequences):
        assert mbts_of(sequences) == MBTS.from_sequences(sequences)

    def test_equality(self, sequences):
        assert MBTS.from_sequences(sequences) == MBTS.from_sequences(sequences)

    def test_unhashable(self, mbts):
        with pytest.raises(TypeError):
            hash(mbts)


class TestContainment:
    def test_contains_members(self, sequences, mbts):
        for row in sequences:
            assert mbts.contains(row)

    def test_not_contains_outlier(self, mbts):
        outlier = mbts.upper + 1.0
        assert not mbts.contains(outlier)

    def test_contains_mbts_subset(self, sequences, mbts):
        inner = MBTS.from_sequences(sequences[:3])
        assert mbts.contains_mbts(inner)

    def test_band_widths_non_negative(self, mbts):
        assert np.all(mbts.band_widths() >= 0.0)

    def test_area_is_sum_of_widths(self, mbts):
        assert np.isclose(mbts.area(), mbts.band_widths().sum())

    def test_max_width(self, mbts):
        assert np.isclose(mbts.max_width(), mbts.band_widths().max())


class TestEquation2:
    def test_zero_inside(self, sequences, mbts):
        assert mbts.distance_to_sequence(sequences[0]) == 0.0

    def test_distance_above(self):
        box = MBTS([1.0, 1.0], [0.0, 0.0])
        assert box.distance_to_sequence([3.0, 0.5]) == 2.0

    def test_distance_below(self):
        box = MBTS([1.0, 1.0], [0.0, 0.0])
        assert box.distance_to_sequence([0.5, -1.5]) == 1.5

    def test_lower_bounds_member_distance(self, sequences, mbts):
        # Lemma 1: d(Q, B) <= d(Q, S) for any S inside B.
        rng = np.random.default_rng(1)
        for _ in range(50):
            query = rng.normal(scale=2.0, size=12)
            bound = mbts.distance_to_sequence(query)
            for row in sequences:
                assert bound <= chebyshev_distance(query, row) + 1e-12

    def test_exceeds_matches_exact(self, mbts):
        rng = np.random.default_rng(2)
        for _ in range(50):
            query = rng.normal(scale=2.0, size=12)
            epsilon = rng.uniform(0.0, 2.0)
            exact = mbts.distance_to_sequence(query) > epsilon
            assert mbts.distance_to_sequence_exceeds(query, epsilon) == exact

    def test_functional_form(self, sequences, mbts):
        query = sequences[0] + 5.0
        assert sequence_mbts_distance(query, mbts) == mbts.distance_to_sequence(
            query
        )

    def test_length_mismatch(self, mbts):
        with pytest.raises(InvalidParameterError, match="length mismatch"):
            mbts.distance_to_sequence(np.zeros(5))


class TestEquation3:
    def test_overlapping_gap_zero(self, sequences):
        first = MBTS.from_sequences(sequences[:4])
        second = MBTS.from_sequences(sequences[2:])
        assert first.gap_to(second) == 0.0

    def test_disjoint_gap(self):
        first = MBTS([1.0, 1.0], [0.0, 0.0])
        second = MBTS([5.0, 5.0], [3.0, 3.0])
        assert first.gap_to(second) == 2.0
        assert second.gap_to(first) == 2.0

    def test_gap_lower_bounds_cross_distance(self):
        # d(B1, B2) <= d(S1, S2) for any S1 in B1, S2 in B2.
        rng = np.random.default_rng(3)
        group_a = rng.normal(size=(4, 10))
        group_b = rng.normal(size=(4, 10)) + 3.0
        gap = mbts_gap_distance(
            MBTS.from_sequences(group_a), MBTS.from_sequences(group_b)
        )
        for a in group_a:
            for b in group_b:
                assert gap <= chebyshev_distance(a, b) + 1e-12

    def test_gap_to_self_zero(self, mbts):
        assert mbts.gap_to(mbts) == 0.0


class TestExpansion:
    def test_expand_to_include(self, mbts):
        outlier = mbts.upper + 2.0
        mbts_copy = mbts.copy()
        mbts_copy.expand_to_include(outlier)
        assert mbts_copy.contains(outlier)

    def test_expand_fast_equivalent(self, mbts):
        outlier = np.asarray(mbts.upper + 2.0)
        a, b = mbts.copy(), mbts.copy()
        a.expand_to_include(outlier)
        b.expand_fast(outlier)
        assert a == b

    def test_expand_with_mbts(self, sequences):
        first = MBTS.from_sequences(sequences[:3])
        second = MBTS.from_sequences(sequences[3:])
        first.expand_to_include_mbts(second)
        assert first == MBTS.from_sequences(sequences)

    def test_union(self, sequences):
        first = MBTS.from_sequences(sequences[:3])
        second = MBTS.from_sequences(sequences[3:])
        assert first.union(second) == MBTS.from_sequences(sequences)

    def test_union_commutative(self, sequences):
        first = MBTS.from_sequences(sequences[:2])
        second = MBTS.from_sequences(sequences[2:])
        assert first.union(second) == second.union(first)

    def test_enlargement_zero_for_member(self, sequences, mbts):
        assert mbts.enlargement_for_sequence(sequences[0]) == 0.0

    def test_enlargement_matches_area_growth(self, mbts):
        rng = np.random.default_rng(4)
        outlier = rng.normal(scale=3.0, size=12)
        grown = mbts.copy()
        grown.expand_to_include(outlier)
        assert np.isclose(
            mbts.enlargement_for_sequence(outlier), grown.area() - mbts.area()
        )

    def test_enlargement_for_mbts_matches_area_growth(self, sequences, mbts):
        other = MBTS.from_sequences(sequences[:2] + 3.0)
        grown = mbts.union(other)
        assert np.isclose(
            mbts.enlargement_for_mbts(other), grown.area() - mbts.area()
        )

    def test_max_enlargement_equals_eq2(self, mbts):
        rng = np.random.default_rng(5)
        outlier = rng.normal(scale=3.0, size=12)
        assert mbts.max_enlargement_for_sequence(outlier) == (
            mbts.distance_to_sequence(outlier)
        )
