"""Tests for the Chebyshev matrix profile / motif / discord extension."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.exceptions import InvalidParameterError
from repro.extensions.profile import chebyshev_matrix_profile


@pytest.fixture(scope="module")
def planted_series():
    """Noise with a planted motif pair and a planted anomaly."""
    rng = np.random.default_rng(0)
    values = rng.normal(0.0, 1.0, size=1200)
    motif = np.sin(np.linspace(0, 6 * np.pi, 60)) * 4.0
    values[100:160] = motif
    values[700:760] = motif + rng.normal(0.0, 0.01, size=60)
    values[400:460] = rng.normal(0.0, 1.0, size=60) * 6.0  # anomaly burst
    return values


@pytest.fixture(scope="module")
def profile(planted_series):
    return chebyshev_matrix_profile(
        planted_series, 60, normalization="none"
    )


def _naive_profile(values, length, exclusion):
    view = np.lib.stride_tricks.sliding_window_view(values, length)
    count = view.shape[0]
    distances = np.empty(count)
    neighbors = np.empty(count, dtype=int)
    for p in range(count):
        best, best_q = np.inf, -1
        for q in range(count):
            if abs(q - p) <= exclusion:
                continue
            d = float(np.max(np.abs(view[p] - view[q])))
            if d < best:
                best, best_q = d, q
        distances[p] = best
        neighbors[p] = best_q
    return distances, neighbors


class TestProfileCorrectness:
    def test_matches_naive_on_small_series(self):
        values = synthetic.noisy_sines(220, seed=2, noise_std=0.4)
        length = 25
        profile = chebyshev_matrix_profile(values, length, normalization="none")
        naive_distances, _ = _naive_profile(values, length, profile.exclusion)
        assert np.allclose(profile.distances, naive_distances)

    def test_neighbors_respect_exclusion(self, profile):
        offsets = np.abs(profile.neighbors - np.arange(len(profile)))
        assert np.all(offsets > profile.exclusion)

    def test_neighbor_distance_is_exact(self, profile, planted_series):
        view = np.lib.stride_tricks.sliding_window_view(planted_series, 60)
        for p in (0, 100, 400, 700, len(profile) - 1):
            q = int(profile.neighbors[p])
            assert np.isclose(
                profile.distances[p], np.max(np.abs(view[p] - view[q]))
            )

    def test_symmetric_bound(self, profile):
        # profile[p] <= distance(p, q) for the reverse direction too.
        for p in (50, 300, 900):
            q = int(profile.neighbors[p])
            assert profile.distances[q] <= profile.distances[p] + 1e-12


class TestMotifsAndDiscords:
    def test_motif_is_planted_pair(self, profile):
        position, neighbor, distance = profile.motif()
        pair = sorted((position, neighbor))
        assert abs(pair[0] - 100) < 5
        assert abs(pair[1] - 700) < 5
        assert distance < 0.1

    def test_discord_is_planted_anomaly(self, profile):
        (position, distance), = profile.discords(1)
        assert 340 < position < 460
        assert distance > profile.distances.mean()

    def test_discords_non_overlapping(self, profile):
        discords = profile.discords(3)
        positions = [p for p, _ in discords]
        for i, a in enumerate(positions):
            for b in positions[i + 1 :]:
                assert abs(a - b) >= profile.length

    def test_discords_sorted_descending(self, profile):
        distances = [d for _, d in profile.discords(3)]
        assert distances == sorted(distances, reverse=True)


class TestReuseAndValidation:
    def test_reuses_index(self, planted_series):
        source = WindowSource(planted_series, 60, "none")
        index = TSIndex.from_source(source)
        profile = chebyshev_matrix_profile(
            planted_series, 60, index=index, normalization="none"
        )
        assert len(profile) == source.count

    def test_index_length_mismatch(self, planted_series):
        index = TSIndex.build(planted_series, 40, normalization="none")
        with pytest.raises(InvalidParameterError, match="length"):
            chebyshev_matrix_profile(planted_series, 60, index=index)

    def test_series_too_short(self):
        with pytest.raises(InvalidParameterError, match="too short"):
            chebyshev_matrix_profile(np.arange(50.0), 30, normalization="none")

    def test_custom_exclusion(self, planted_series):
        profile = chebyshev_matrix_profile(
            planted_series, 60, normalization="none", exclusion=100
        )
        offsets = np.abs(profile.neighbors - np.arange(len(profile)))
        assert np.all(offsets > 100)
