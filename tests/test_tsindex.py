"""Tests for TS-Index construction and queries (Section 5)."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.exceptions import IncompatibleQueryError, InvalidParameterError

from conftest import LENGTH


class TestParams:
    def test_defaults_match_paper(self):
        params = TSIndexParams()
        assert params.min_children == 10
        assert params.max_children == 30

    def test_rejects_incompatible_capacities(self):
        with pytest.raises(InvalidParameterError, match="2 \\* min_children"):
            TSIndexParams(min_children=10, max_children=15)

    def test_rejects_bad_split_metric(self):
        with pytest.raises(InvalidParameterError, match="split_metric"):
            TSIndexParams(split_metric="volume")

    def test_max_metric_allowed(self):
        assert TSIndexParams(split_metric="max").split_metric == "max"

    def test_frozen(self):
        with pytest.raises(Exception):
            TSIndexParams().min_children = 5


class TestConstruction:
    def test_build_from_values(self, series_values):
        index = TSIndex.build(series_values, LENGTH)
        assert index.size == len(series_values) - LENGTH + 1

    def test_single_window_tree(self):
        index = TSIndex.build(np.arange(10.0), 10, normalization="none")
        assert index.size == 1
        assert index.height == 1
        assert index.node_count == 1

    def test_leaf_root_below_capacity(self):
        values = synthetic.random_walk(30, seed=0)
        index = TSIndex.build(values, 10, normalization="none")
        assert index.size == 21
        # 21 windows fit in one leaf at the default Mc = 30.
        assert index.height == 1
        assert index.node_count == 1

    def test_small_capacity_forces_splits(self, tsindex_global):
        assert tsindex_global.height >= 3
        assert tsindex_global.build_stats.splits > 0

    def test_build_stats_populated(self, tsindex_global):
        stats = tsindex_global.build_stats
        assert stats.windows == tsindex_global.size
        assert stats.seconds > 0
        assert stats.nodes == tsindex_global.node_count
        assert stats.height == tsindex_global.height

    def test_repr(self, tsindex_global):
        text = repr(tsindex_global)
        assert "TSIndex" in text
        assert str(tsindex_global.size) in text

    def test_incremental_insert(self, source_global):
        index = TSIndex(source_global, TSIndexParams(min_children=4, max_children=10))
        for position in range(50):
            index.insert(position)
        result = index.search(source_global.window_block(25, 26)[0], 0.0)
        assert 25 in result.positions

    def test_insert_out_of_range(self, source_global):
        index = TSIndex(source_global)
        with pytest.raises(InvalidParameterError):
            index.insert(source_global.count)


class TestQueries:
    def test_self_match_at_zero_epsilon(self, tsindex_global, source_global):
        for position in (0, 57, 500, source_global.count - 1):
            query = source_global.window_block(position, position + 1)[0]
            result = tsindex_global.search(query, 0.0)
            assert position in result.positions

    def test_matches_sweepline(self, tsindex_global, sweepline_global, query_of):
        for position in (3, 250, 1800):
            query = query_of(position)
            for epsilon in (0.0, 0.3, 0.8, 2.0):
                expected = sweepline_global.search(query, epsilon)
                actual = tsindex_global.search(query, epsilon)
                assert np.array_equal(actual.positions, expected.positions)
                assert np.allclose(actual.distances, expected.distances)

    def test_verification_modes_identical(self, tsindex_global, query_of):
        query = query_of(321)
        reference = tsindex_global.search(query, 0.7)
        for mode in ("blocked", "per_candidate"):
            other = tsindex_global.search(query, 0.7, verification=mode)
            assert np.array_equal(other.positions, reference.positions)

    def test_count_matches_search(self, tsindex_global, query_of):
        query = query_of(99)
        assert tsindex_global.count(query, 0.5) == len(
            tsindex_global.search(query, 0.5)
        )

    def test_wrong_query_length(self, tsindex_global):
        with pytest.raises(IncompatibleQueryError):
            tsindex_global.search(np.zeros(LENGTH + 1), 0.5)

    def test_negative_epsilon(self, tsindex_global, query_of):
        with pytest.raises(InvalidParameterError):
            tsindex_global.search(query_of(0), -0.5)

    def test_epsilon_zero_exact_duplicates_only(self, tsindex_global, query_of):
        query = query_of(10)
        result = tsindex_global.search(query, 0.0)
        assert np.all(result.distances == 0.0)

    def test_stats_pruning_consistency(self, tsindex_global, query_of):
        result = tsindex_global.search(query_of(444), 0.4)
        stats = result.stats
        assert stats.candidates >= stats.matches
        assert stats.nodes_visited > 0
        assert stats.leaves_accessed > 0

    def test_huge_epsilon_returns_everything(self, tsindex_global, source_global, query_of):
        result = tsindex_global.search(query_of(0), 1e9)
        assert len(result) == source_global.count

    def test_candidates_superset_of_matches(self, tsindex_global, query_of):
        result = tsindex_global.search(query_of(77), 0.3)
        assert result.stats.candidates >= len(result)


class TestNormalizationRegimes:
    @pytest.mark.parametrize("regime", ["none", "global", "per_window"])
    def test_self_match_each_regime(self, series_values, regime):
        source = WindowSource(series_values[:800], LENGTH, regime)
        index = TSIndex.from_source(
            source, params=TSIndexParams(min_children=4, max_children=10)
        )
        query = np.array(source.window_block(123, 124)[0])
        assert 123 in index.search(query, 0.0).positions

    def test_per_window_prepares_queries(self, series_values):
        source = WindowSource(series_values[:800], LENGTH, "per_window")
        index = TSIndex.from_source(source)
        # A raw (un-normalized) query must be z-normalized internally.
        raw_query = np.array(series_values[123 : 123 + LENGTH]) * 5.0 + 40.0
        assert 123 in index.search(raw_query, 1e-9).positions


class TestSplitMetricAblation:
    def test_max_metric_still_correct(self, series_values, sweepline_global, source_global):
        index = TSIndex.from_source(
            source_global,
            params=TSIndexParams(min_children=4, max_children=10, split_metric="max"),
        )
        query = np.array(source_global.window_block(200, 201)[0])
        expected = sweepline_global.search(query, 0.6)
        actual = index.search(query, 0.6)
        assert np.array_equal(actual.positions, expected.positions)


class TestIterNodes:
    def test_counts_agree(self, tsindex_global):
        nodes = list(tsindex_global.iter_nodes())
        assert len(nodes) == tsindex_global.node_count

    def test_depth_range(self, tsindex_global):
        depths = [depth for _node, depth in tsindex_global.iter_nodes()]
        assert min(depths) == 0
        assert max(depths) == tsindex_global.height - 1
