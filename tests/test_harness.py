"""Tests for the experiment harness (timing protocol of Section 6.1)."""

import pytest

from repro.bench.harness import (
    ExperimentResult,
    MethodTiming,
    run_query_experiment,
    time_workload,
)
from repro.bench.timing import Timer
from repro.bench.workloads import workload_for_source
from repro.core.stats import QueryStats


@pytest.fixture(scope="module")
def small_workload(source_global):
    return workload_for_source(source_global, count=4, seed=0)


class TestTimer:
    def test_measures_positive(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.seconds > 0
        assert timer.milliseconds == timer.seconds * 1000.0


class TestTimeWorkload:
    def test_timing_fields(self, tsindex_global, small_workload):
        timing = time_workload(tsindex_global, small_workload, 0.5)
        assert timing.avg_query_ms > 0
        assert timing.total_matches >= len(small_workload)  # self matches
        assert timing.stats.candidates >= timing.total_matches
        assert timing.build_seconds == tsindex_global.build_stats.seconds

    def test_search_options_forwarded(self, tsindex_global, small_workload):
        bulk = time_workload(
            tsindex_global, small_workload, 0.5,
            search_options={"verification": "bulk"},
        )
        per_candidate = time_workload(
            tsindex_global, small_workload, 0.5,
            search_options={"verification": "per_candidate"},
        )
        assert bulk.total_matches == per_candidate.total_matches

    def test_method_name_detected(self, sweepline_global, small_workload):
        timing = time_workload(sweepline_global, small_workload, 0.5)
        assert timing.method == "sweepline"

    def test_as_row_keys(self, tsindex_global, small_workload):
        row = time_workload(tsindex_global, small_workload, 0.5).as_row()
        assert {"method", "avg_query_ms", "matches", "candidates"} <= set(row)


class TestRunQueryExperiment:
    def test_result_structure(
        self, tsindex_global, kvindex_global, small_workload
    ):
        result = run_query_experiment(
            "unit",
            {"tsindex": tsindex_global, "kvindex": kvindex_global},
            small_workload,
            0.5,
            parameters={"epsilon": 0.5},
        )
        assert isinstance(result, ExperimentResult)
        assert [t.method for t in result.timings] == ["tsindex", "kvindex"]
        rows = result.as_rows()
        assert len(rows) == 2
        assert rows[0]["epsilon"] == 0.5

    def test_methods_agree_on_matches(
        self, tsindex_global, kvindex_global, isax_global, sweepline_global,
        small_workload,
    ):
        result = run_query_experiment(
            "agreement",
            {
                "sweepline": sweepline_global,
                "kvindex": kvindex_global,
                "isax": isax_global,
                "tsindex": tsindex_global,
            },
            small_workload,
            0.6,
        )
        match_counts = {t.total_matches for t in result.timings}
        assert len(match_counts) == 1

    def test_stats_are_query_stats(self, tsindex_global, small_workload):
        result = run_query_experiment(
            "stats", {"ts": tsindex_global}, small_workload, 0.4
        )
        assert isinstance(result.timings[0].stats, QueryStats)
