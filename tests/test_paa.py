"""Tests for Piecewise Aggregate Approximation."""

import numpy as np
import pytest

from repro.core.windows import WindowSource
from repro.exceptions import InvalidParameterError
from repro.indices.paa import paa_matrix, paa_transform, segment_bounds


class TestSegmentBounds:
    def test_divisible(self):
        assert segment_bounds(100, 4).tolist() == [0, 25, 50, 75, 100]

    def test_non_divisible_sizes_differ_by_at_most_one(self):
        for length, segments in [(100, 7), (50, 3), (11, 4)]:
            bounds = segment_bounds(length, segments)
            sizes = np.diff(bounds)
            assert sizes.sum() == length
            assert sizes.max() - sizes.min() <= 1
            assert np.all(sizes >= 1)

    def test_single_segment(self):
        assert segment_bounds(10, 1).tolist() == [0, 10]

    def test_segments_equal_length(self):
        assert segment_bounds(5, 5).tolist() == [0, 1, 2, 3, 4, 5]

    def test_too_many_segments(self):
        with pytest.raises(InvalidParameterError):
            segment_bounds(4, 5)


class TestPaaTransform:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        sequence = rng.normal(size=60)
        for segments in (1, 3, 6, 7):
            bounds = segment_bounds(60, segments)
            expected = [
                sequence[bounds[j] : bounds[j + 1]].mean() for j in range(segments)
            ]
            assert np.allclose(paa_transform(sequence, segments), expected)

    def test_constant_sequence(self):
        assert np.allclose(paa_transform(np.full(12, 4.0), 3), 4.0)

    def test_mean_preserved(self):
        # With equal segment sizes, the PAA mean equals the sequence mean.
        rng = np.random.default_rng(1)
        sequence = rng.normal(size=40)
        assert np.isclose(paa_transform(sequence, 4).mean(), sequence.mean())

    def test_full_resolution(self):
        sequence = np.array([1.0, 5.0, 2.0])
        assert np.allclose(paa_transform(sequence, 3), sequence)


class TestPaaMatrix:
    @pytest.mark.parametrize("regime", ["none", "global", "per_window"])
    def test_matches_per_window_transform(self, series_values, regime):
        source = WindowSource(series_values[:300], 30, regime)
        matrix = paa_matrix(source, 5)
        assert matrix.shape == (source.count, 5)
        for position in range(0, source.count, 17):
            expected = paa_transform(source.window(position), 5)
            assert np.allclose(matrix[position], expected)

    def test_single_segment_equals_means(self, source_global):
        matrix = paa_matrix(source_global, 1)
        assert np.allclose(matrix[:, 0], source_global.means())

    def test_segment_count_capped_by_length(self, series_values):
        source = WindowSource(series_values[:100], 10, "none")
        with pytest.raises(InvalidParameterError):
            paa_matrix(source, 11)

    def test_twin_bound_per_segment(self, source_global):
        # Section 4.2: time-aligned segments of twins are twins, so PAA
        # means of twins differ by at most epsilon per segment.
        rng = np.random.default_rng(2)
        matrix = paa_matrix(source_global, 5)
        for _ in range(50):
            a, b = rng.integers(0, source_global.count, size=2)
            chebyshev = float(
                np.max(np.abs(source_global.window(int(a)) - source_global.window(int(b))))
            )
            assert np.all(np.abs(matrix[a] - matrix[b]) <= chebyshev + 1e-12)
