"""Boundary semantics: Definition 1 uses ``<= ε``, not ``< ε``.

A window whose Chebyshev distance equals ε *exactly* is a twin. These
tests plant exact-boundary cases and check every method and verifier
includes them — an easy off-by-one to introduce in any comparison.
"""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.verification import (
    verify_intervals,
    verify_positions,
    verify_positions_blocked,
    verify_positions_per_candidate,
)
from repro.core.windows import WindowSource
from repro.indices.isax import ISAXIndex, ISAXParams
from repro.indices.kvindex import KVIndex
from repro.indices.sweepline import SweeplineSearch


@pytest.fixture(scope="module")
def boundary_setup():
    """A series where window 40's distance to the query is exactly 0.5."""
    rng = np.random.default_rng(0)
    values = rng.normal(0.0, 2.0, size=400)
    length = 20
    query = values[100:120].copy()
    # Make window 40 an exact copy except one point displaced by 0.5.
    values[40:60] = query
    values[47] += 0.5
    source = WindowSource(values, length, "none")
    return source, query


EXACT_EPSILON = 0.5


class TestMethodsIncludeBoundary:
    def test_sweepline(self, boundary_setup):
        source, query = boundary_setup
        result = SweeplineSearch.from_source(source).search(query, EXACT_EPSILON)
        assert 40 in result.positions
        assert np.isclose(
            result.distances[result.positions.tolist().index(40)], 0.5
        )

    def test_tsindex(self, boundary_setup):
        source, query = boundary_setup
        index = TSIndex.from_source(
            source, params=TSIndexParams(min_children=2, max_children=5)
        )
        assert 40 in index.search(query, EXACT_EPSILON).positions

    def test_kvindex(self, boundary_setup):
        source, query = boundary_setup
        index = KVIndex.from_source(source)
        assert 40 in index.search(query, EXACT_EPSILON).positions

    def test_isax(self, boundary_setup):
        source, query = boundary_setup
        index = ISAXIndex.from_source(
            source, params=ISAXParams(segments=4, leaf_capacity=16)
        )
        assert 40 in index.search(query, EXACT_EPSILON).positions

    def test_excluded_just_above(self, boundary_setup):
        source, query = boundary_setup
        result = SweeplineSearch.from_source(source).search(
            query, np.nextafter(EXACT_EPSILON, 0.0)
        )
        assert 40 not in result.positions


class TestVerifiersIncludeBoundary:
    @pytest.mark.parametrize(
        "verifier",
        [verify_positions, verify_positions_blocked, verify_positions_per_candidate],
        ids=["bulk", "blocked", "per_candidate"],
    )
    def test_position_verifiers(self, boundary_setup, verifier):
        source, query = boundary_setup
        result = verifier(
            source, query, np.arange(source.count), EXACT_EPSILON
        )
        assert 40 in result.positions

    def test_interval_verifier(self, boundary_setup):
        source, query = boundary_setup
        result = verify_intervals(
            source, query, [(0, source.count)], EXACT_EPSILON
        )
        assert 40 in result.positions


class TestLemmaBoundary:
    def test_node_at_exact_bound_not_pruned(self, boundary_setup):
        # A node whose MBTS distance equals ε exactly must be explored.
        from repro.core.mbts import MBTS

        source, query = boundary_setup
        window = source.window(40)
        box = MBTS.from_sequence(window)
        assert box.distance_to_sequence(query) == EXACT_EPSILON
        # Algorithm 1 prunes strictly greater-than; equality passes.
        assert not (box.distance_to_sequence(query) > EXACT_EPSILON)

    def test_epsilon_zero_exact_copy(self, boundary_setup):
        source, query = boundary_setup
        index = TSIndex.from_source(source)
        result = index.search(query, 0.0)
        assert 100 in result.positions  # the original location
        assert np.all(result.distances == 0.0)
