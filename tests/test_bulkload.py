"""Tests for bottom-up bulk loading of TS-Index."""

import numpy as np
import pytest

from repro.core.bulkload import BULK_ORDERINGS, bulk_load, bulk_load_source
from repro.core.tsindex import TSIndexParams
from repro.exceptions import InvalidParameterError


class TestBulkLoadCorrectness:
    @pytest.mark.parametrize("ordering", BULK_ORDERINGS)
    def test_matches_sweepline(
        self, source_global, sweepline_global, ordering, query_of
    ):
        index = bulk_load_source(
            source_global,
            params=TSIndexParams(min_children=4, max_children=10),
            ordering=ordering,
        )
        for position in (5, 700, 2000):
            query = query_of(position)
            for epsilon in (0.0, 0.5, 1.2):
                expected = sweepline_global.search(query, epsilon)
                actual = index.search(query, epsilon)
                assert np.array_equal(actual.positions, expected.positions)

    def test_indexes_every_window_once(self, source_global):
        index = bulk_load_source(source_global)
        positions = []
        for node, _depth in index.iter_nodes():
            if node.is_leaf:
                positions.extend(node.positions)
        assert sorted(positions) == list(range(source_global.count))

    def test_from_raw_values(self, series_values):
        index = bulk_load(series_values[:600], 40, normalization="none")
        query = np.asarray(series_values[100:140])
        assert 100 in index.search(query, 0.0).positions

    def test_knn_works_on_bulk_tree(self, source_global):
        index = bulk_load_source(source_global)
        query = np.array(source_global.window_block(50, 51)[0])
        result = index.knn(query, 3)
        assert result.positions[0] == 50

    def test_single_leaf_tree(self):
        index = bulk_load(np.arange(40.0), 30, normalization="none")
        assert index.size == 11
        assert index.height == 1


class TestBulkLoadStructure:
    def test_build_stats(self, source_global):
        index = bulk_load_source(source_global)
        stats = index.build_stats
        assert stats.windows == source_global.count
        assert stats.splits == 0
        assert stats.height == index.height
        assert stats.nodes == index.node_count

    def test_much_faster_than_insertion(self, source_global):
        from repro.core.tsindex import TSIndex

        bulk = bulk_load_source(source_global)
        inserted = TSIndex.from_source(source_global)
        assert bulk.build_stats.seconds < inserted.build_stats.seconds

    def test_fill_fraction_bounds_leaf_size(self, source_global):
        params = TSIndexParams(min_children=4, max_children=20)
        index = bulk_load_source(
            source_global, params=params, ordering="position", fill_fraction=0.5
        )
        for node, _depth in index.iter_nodes():
            if node.is_leaf:
                assert len(node.positions) <= params.max_children

    def test_mean_ordering_groups_similar_means(self, source_global):
        index = bulk_load_source(source_global, ordering="mean")
        means = source_global.means()
        # Each leaf's mean spread should be below the global spread.
        global_spread = means.max() - means.min()
        leaf_spreads = []
        for node, _depth in index.iter_nodes():
            if node.is_leaf and len(node.positions) > 1:
                leaf_means = means[np.asarray(node.positions)]
                leaf_spreads.append(leaf_means.max() - leaf_means.min())
        assert np.mean(leaf_spreads) < 0.5 * global_spread


class TestBulkLoadValidation:
    def test_unknown_ordering(self, source_global):
        with pytest.raises(InvalidParameterError, match="ordering"):
            bulk_load_source(source_global, ordering="random")

    def test_bad_fill_fraction(self, source_global):
        with pytest.raises(InvalidParameterError, match="fill_fraction"):
            bulk_load_source(source_global, fill_fraction=0.0)

    def test_paa_segments_validated(self, source_global):
        with pytest.raises(InvalidParameterError):
            bulk_load_source(source_global, ordering="paa", paa_segments=0)
