"""Integration tests: every method returns the sweepline ground truth.

This is the correctness contract of the whole library (DESIGN.md §7):
for any series, regime, query and threshold, TS-Index, KV-Index and
iSAX must return *exactly* the same twins as the exhaustive scan.
"""

import numpy as np
import pytest

from repro import create_method, twin_search
from repro.core.bulkload import bulk_load_source
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.exceptions import InvalidParameterError
from repro.indices.base import (
    METHOD_NAMES,
    SubsequenceIndex,
    available_methods,
    create_method_from_source,
)
from repro.indices.isax import ISAXIndex, ISAXParams
from repro.indices.kvindex import KVIndex, KVIndexParams
from repro.indices.sweepline import SweeplineSearch


def _build_all(source):
    """All four methods over one source (small capacities force real
    tree structure even on small series)."""
    methods = {
        "sweepline": SweeplineSearch.from_source(source),
        "isax": ISAXIndex.from_source(
            source, params=ISAXParams(segments=5, leaf_capacity=64)
        ),
        "tsindex": TSIndex.from_source(
            source, params=TSIndexParams(min_children=4, max_children=10)
        ),
        "bulk-tsindex": bulk_load_source(
            source, params=TSIndexParams(min_children=4, max_children=10)
        ),
    }
    if source.normalization.value != "per_window":
        methods["kvindex"] = KVIndex.from_source(
            source, params=KVIndexParams(num_bins=64)
        )
    return methods


DATASETS = {
    "insect-like": synthetic.insect_like(2500, seed=3),
    "eeg-like": synthetic.eeg_like(2500, seed=4),
    "random-walk": synthetic.random_walk(2500, seed=5),
    "sines": synthetic.noisy_sines(2500, seed=6),
}


@pytest.mark.parametrize("dataset", list(DATASETS), ids=list(DATASETS))
@pytest.mark.parametrize("regime", ["none", "global", "per_window"])
def test_all_methods_agree(dataset, regime):
    values = DATASETS[dataset]
    source = WindowSource(values, 60, regime)
    methods = _build_all(source)
    sweepline = methods.pop("sweepline")

    rng = np.random.default_rng(42)
    scale = float(np.std(values)) if regime == "none" else 1.0
    for query_position in rng.integers(0, source.count, size=3):
        query = np.array(
            source.window_block(int(query_position), int(query_position) + 1)[0]
        )
        for epsilon in (0.0, 0.2 * scale, 0.6 * scale, 1.5 * scale):
            expected = sweepline.search(query, epsilon)
            assert int(query_position) in expected.positions
            for name, method in methods.items():
                actual = method.search(query, epsilon)
                assert np.array_equal(
                    actual.positions, expected.positions
                ), f"{name} disagrees at eps={epsilon} ({dataset}/{regime})"
                assert np.allclose(actual.distances, expected.distances)


def test_results_monotone_in_epsilon():
    values = DATASETS["insect-like"]
    source = WindowSource(values, 60, "global")
    index = TSIndex.from_source(source)
    query = np.array(source.window_block(100, 101)[0])
    previous: set = set()
    for epsilon in (0.0, 0.25, 0.5, 1.0, 2.0):
        current = set(index.search(query, epsilon).positions.tolist())
        assert previous <= current
        previous = current


def test_external_query_not_from_series():
    # Queries need not be extracted from the indexed series.
    values = DATASETS["sines"]
    source = WindowSource(values, 60, "global")
    methods = _build_all(source)
    sweepline = methods.pop("sweepline")
    rng = np.random.default_rng(9)
    query = rng.normal(size=60)
    for epsilon in (0.5, 1.5, 3.0):
        expected = sweepline.search(query, epsilon)
        for name, method in methods.items():
            actual = method.search(query, epsilon)
            assert np.array_equal(actual.positions, expected.positions), name


class TestFactory:
    def test_available_methods(self):
        assert available_methods() == METHOD_NAMES

    @pytest.mark.parametrize("name", METHOD_NAMES)
    def test_create_each_method(self, name):
        values = DATASETS["random-walk"][:500]
        method = create_method(name, values, 50, normalization="global")
        assert isinstance(method, SubsequenceIndex)
        query = np.array(method.source.window_block(10, 11)[0])
        assert 10 in method.search(query, 0.0).positions

    def test_name_aliases(self):
        values = DATASETS["random-walk"][:300]
        source = WindowSource(values, 50, "global")
        assert isinstance(
            create_method_from_source("KV-Index", source), KVIndex
        )
        assert isinstance(create_method_from_source("TS_Index", source), TSIndex)

    def test_unknown_method(self):
        with pytest.raises(InvalidParameterError, match="unknown method"):
            create_method("btree", DATASETS["sines"], 50)

    def test_tsindex_kwargs_become_params(self):
        values = DATASETS["random-walk"][:400]
        index = create_method(
            "tsindex", values, 50, min_children=4, max_children=10
        )
        assert index.params.max_children == 10


class TestTwinSearchConvenience:
    def test_finds_planted_twin(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=900) * 2.0
        series[700:760] = series[100:160] + rng.normal(0, 0.005, size=60)
        result = twin_search(series, series[100:160], epsilon=0.05)
        found = set(result.positions.tolist())
        assert 100 in found
        assert 700 in found

    def test_method_selection(self):
        series = DATASETS["sines"][:400]
        for method in METHOD_NAMES:
            result = twin_search(
                series, series[50:100], epsilon=0.01, method=method
            )
            assert 50 in result.positions
