"""Variable-length queries as a plane capability: seven planes, one
answer.

The seeded property suite behind the tentpole promise: for every
registered plane (sweepline, KV-Index, iSAX, TS-Index, frozen, sharded,
live) and every tested query length ``m <= l``, engine-served
``search`` / ``knn`` / ``exists`` / ``count`` results are byte-identical
to the brute-force prefix scan — tail positions at series, shard and
segment boundaries included — in both the raw and global regimes, with
``m == l`` collapsing exactly onto the native fixed-length path
(positions, distances *and* QueryStats). Per-window stays rejected with
the typed error, and the engine cache never serves one length's result
to another.
"""

import numpy as np
import pytest

from repro import QueryEngine
from repro.engine import IndexRegistry
from repro.exceptions import UnsupportedNormalizationError
from repro.indices import create_method
from repro.query import (
    CAP_VARLENGTH,
    QuerySpec,
    capabilities_of,
    execute,
    plan,
    scan_prefix_search,
)

LENGTH = 16
EPSILONS = (0.0, 0.3, 1.1)
QUERY_LENGTHS = (LENGTH // 4, LENGTH // 2, LENGTH - 1, LENGTH)

ALL_PLANES = ("sweepline", "kvindex", "isax", "tsindex", "frozen",
              "sharded", "live")

#: Planes with a native prefix kernel (the rest are served by the
#: planner's synthesized prefix scan).
NATIVE_VARLENGTH = ("tsindex", "frozen", "sharded", "live")

BUILD_OPTIONS = {
    "sharded": {"shards": 3},
    "live": {"seal_threshold": 96, "background_compaction": False},
}


def make_series() -> np.ndarray:
    """Seeded series with duplicate blocks planted mid-series and in
    the final (tail) stretch, so exact twins exist at known positions —
    including ones only a tail scan can find."""
    rng = np.random.default_rng(1234)
    series = np.cumsum(rng.normal(scale=0.4, size=640))
    block = np.array(series[52 : 52 + LENGTH + 4])
    series[230 : 230 + block.size] = block
    series[-(LENGTH - 2) :] = series[52 : 52 + LENGTH - 2]  # tail twin
    return series


SERIES = make_series()


def prefix_oracle(values: np.ndarray, query: np.ndarray, epsilon: float):
    """Brute force over every m-window of the prepared buffer."""
    m = query.size
    windows = np.lib.stride_tricks.sliding_window_view(values, m)
    distances = np.max(np.abs(windows - query), axis=1)
    keep = np.flatnonzero(distances <= epsilon)
    return keep, distances[keep]


def build_planes(normalization: str) -> dict:
    names = [
        name
        for name in ALL_PLANES
        if not (name == "live" and normalization == "global")
    ]
    return {
        name: create_method(
            name, SERIES, LENGTH, normalization=normalization,
            **BUILD_OPTIONS.get(name, {}),
        )
        for name in names
    }


@pytest.fixture(scope="module", params=("none", "global"))
def regime_planes(request):
    built = build_planes(request.param)
    yield request.param, built
    if "live" in built:
        built["live"].close()


@pytest.fixture(scope="module")
def regime_engine(regime_planes):
    regime, planes = regime_planes
    with QueryEngine(cache_capacity=128) as serving:
        for name, plane in planes.items():
            serving.add(name, plane)
        yield regime, planes, serving


def queries_for(values: np.ndarray, m: int) -> list[np.ndarray]:
    """A planted duplicate, the tail twin, and a near-miss, length m."""
    rng = np.random.default_rng(m)
    planted = np.array(values[52 : 52 + m])
    tail = np.array(values[values.size - m :])
    near = np.array(values[400 : 400 + m]) + rng.normal(
        scale=0.04, size=m
    )
    return [planted, tail, near]


class TestSevenPlanesMatchThePrefixScan:
    @pytest.mark.parametrize("m", QUERY_LENGTHS)
    def test_search_engine_and_direct(self, regime_engine, m):
        regime, planes, serving = regime_engine
        for name, plane in planes.items():
            values = plane.source.values
            for query in queries_for(values, m):
                for epsilon in EPSILONS:
                    expected_pos, expected_dist = prefix_oracle(
                        values, query, epsilon
                    )
                    direct = plane.search_varlength(query, epsilon)
                    served = serving.query(
                        name, query, epsilon, use_cache=False
                    )
                    for label, result in (
                        ("direct", direct), ("engine", served),
                    ):
                        context = f"{regime}/{name}/{label} m={m} ε={epsilon}"
                        assert np.array_equal(
                            result.positions, expected_pos
                        ), context
                        assert np.array_equal(
                            result.distances, expected_dist
                        ), context

    @pytest.mark.parametrize("m", QUERY_LENGTHS[:-1])
    def test_knn_exists_count_derive_from_the_scan(self, regime_engine, m):
        regime, planes, serving = regime_engine
        for name, plane in planes.items():
            values = plane.source.values
            query = queries_for(values, m)[0]
            # knn: exact prefix scan with the (distance, position) ties.
            windows = np.lib.stride_tricks.sliding_window_view(values, m)
            distances = np.max(np.abs(windows - query), axis=1)
            order = np.lexsort((np.arange(distances.size), distances))[:6]
            served = serving.knn(name, query, 6)
            direct = plane.knn(query, 6)
            assert np.array_equal(served.positions, order), (regime, name)
            assert np.array_equal(direct.positions, order), (regime, name)
            for epsilon in EPSILONS[1:]:
                expected = int(
                    np.count_nonzero(distances <= epsilon)
                )
                assert serving.count(name, query, epsilon) == expected
                assert plane.count(query, epsilon) == expected
                assert serving.exists(name, query, epsilon) is (
                    expected > 0
                )
                assert plane.exists(query, epsilon) is (expected > 0)

    def test_tail_twin_only_a_tail_scan_can_find(self, regime_engine):
        """The planted tail twin starts past the last indexed l-window;
        every plane must still report it."""
        regime, planes, serving = regime_engine
        m = LENGTH - 2
        for name, plane in planes.items():
            values = plane.source.values
            tail_start = values.size - m
            assert tail_start >= plane.source.count  # truly unindexed
            query = np.array(values[52 : 52 + m])
            result = serving.query(name, query, 0.0, use_cache=False)
            assert tail_start in result.positions, (regime, name)

    def test_mixed_length_batch(self, regime_engine):
        regime, planes, serving = regime_engine
        for name, plane in planes.items():
            values = plane.source.values
            queries = [
                np.array(values[52 : 52 + LENGTH]),       # full length
                np.array(values[52 : 52 + LENGTH // 2]),  # prefix
                np.array(values[values.size - 10 :]),     # tail query
            ]
            epsilon = EPSILONS[1]
            batch = execute(
                plane,
                QuerySpec(query=queries, mode="batch", epsilon=epsilon),
            )
            served = serving.batch(name, queries, epsilon, use_cache=False)
            assert len(batch) == len(served) == 3
            for query, one, other in zip(
                queries, batch.results, served.results
            ):
                expected_pos, expected_dist = prefix_oracle(
                    values, query, epsilon
                )
                for result in (one, other):
                    assert np.array_equal(result.positions, expected_pos)
                    assert np.array_equal(result.distances, expected_dist)


class TestChunkBoundaryCoverage:
    """Exact twins planted at shard/segment chunk boundaries: the
    overlap argument (l-1 >= m-1) means no boundary position is lost."""

    @pytest.mark.parametrize("m", QUERY_LENGTHS[:-1])
    def test_every_shard_boundary_position_served(self, m):
        plane = create_method(
            "sharded", SERIES, LENGTH, normalization="none", shards=3
        )
        values = plane.source.values
        boundaries = [start for start, _ in plane.spans if start > 0]
        assert boundaries  # the suite must actually cross chunks
        for boundary in boundaries:
            for position in (boundary - 1, boundary, boundary + 1):
                query = np.array(values[position : position + m])
                result = plane.search_varlength(query, 0.0)
                expected_pos, expected_dist = prefix_oracle(
                    values, query, 0.0
                )
                assert position in result.positions
                assert np.array_equal(result.positions, expected_pos)
                assert np.array_equal(result.distances, expected_dist)

    @pytest.mark.parametrize("m", QUERY_LENGTHS[:-1])
    def test_every_segment_boundary_position_served(self, m):
        plane = create_method(
            "live", SERIES, LENGTH, normalization="none",
            seal_threshold=96, background_compaction=False,
        )
        try:
            starts = [segment.start for segment in plane.segments]
            boundaries = [start for start in starts if start > 0]
            boundaries.append(plane.delta_windows and plane.segments[-1].stop)
            values = plane.source.values
            assert boundaries
            for boundary in boundaries:
                for position in (boundary - 1, boundary, boundary + 1):
                    query = np.array(values[position : position + m])
                    result = plane.search_varlength(query, 0.0)
                    expected_pos, _ = prefix_oracle(values, query, 0.0)
                    assert position in result.positions
                    assert np.array_equal(result.positions, expected_pos)
        finally:
            plane.close()

    def test_live_before_first_window(self):
        """A live plane with fewer than l readings still serves shorter
        queries on every mode (pure scan over the raw readings) —
        search directly and knn/exists/count through the engine too."""
        from repro.live import LiveTwinIndex

        live = LiveTwinIndex(SERIES[:10], LENGTH, seal_threshold=None)
        try:
            query = np.array(SERIES[3:9])
            result = live.search_varlength(query, 0.0)
            assert 3 in result.positions
            nearest = live.knn(query, 2)
            assert nearest.positions[0] == 3 and nearest.distances[0] == 0.0
            assert live.exists(query, 0.0) is True
            assert live.count(query, 0.0) == len(result)
            with QueryEngine(cache_capacity=8) as serving:
                serving.add_live("young", live)
                served = serving.knn("young", query, 2)
                assert np.array_equal(served.positions, nearest.positions)
                # Raw-domain arrival (the CLI --query-file path) must
                # not die on the plane's not-yet-built window source.
                raw = serving.query(
                    "young", query, 0.0, domain="raw", use_cache=False
                )
                assert 3 in raw.positions
        finally:
            live.close()

    def test_batched_true_rejected_for_short_queries(self):
        from repro.exceptions import InvalidParameterError

        plane = create_method(
            "sharded", SERIES, LENGTH, normalization="none", shards=3
        )
        queries = [
            np.array(SERIES[52 : 52 + LENGTH]),
            np.array(SERIES[52 : 52 + LENGTH // 2]),
        ]
        # batched=True promises the fixed-length shared traversal and
        # raises when it cannot run — short queries included.
        with pytest.raises(InvalidParameterError, match="variable-length"):
            plane.search_batch(queries, 0.3, batched=True)
        # The default path serves the mixed workload.
        batch = plane.search_batch(queries, 0.3)
        assert len(batch) == 2


class TestExistsStatsOnPrefixPath:
    @pytest.mark.parametrize("name", ("tsindex", "frozen"))
    def test_caller_stats_populated_for_short_queries(self, name):
        from repro.core.stats import QueryStats

        plane = create_method(name, SERIES, LENGTH, normalization="none")
        query = np.array(plane.source.values[52 : 52 + LENGTH // 2])
        stats = QueryStats()
        assert plane.exists(query, 0.0, stats=stats) is True
        reference = plane.search_varlength(query, 0.0).stats
        assert stats == reference
        assert stats.candidates > 0


class TestFullLengthParity:
    def test_m_equals_l_matches_native_search_exactly(self, regime_engine):
        regime, planes, _ = regime_engine
        for name, plane in planes.items():
            values = plane.source.values
            query = np.array(values[52 : 52 + LENGTH])
            for epsilon in EPSILONS:
                native = plane.search(query, epsilon)
                varlength = plane.search_varlength(query, epsilon)
                assert np.array_equal(
                    varlength.positions, native.positions
                ), (regime, name)
                assert np.array_equal(
                    varlength.distances, native.distances
                ), (regime, name)
                assert varlength.stats == native.stats, (regime, name)


class TestPerWindowStaysRejected:
    @pytest.mark.parametrize(
        "name", ("sweepline", "isax", "tsindex", "frozen", "sharded", "live")
    )
    def test_typed_error_for_short_queries(self, name):
        plane = create_method(
            name, SERIES, LENGTH, normalization="per_window",
            **BUILD_OPTIONS.get(name, {}),
        )
        try:
            with pytest.raises(UnsupportedNormalizationError):
                plane.search_varlength(np.zeros(LENGTH // 2), 0.5)
            # Full length keeps working under per-window.
            query = np.array(
                plane.source.window(52)
                if name != "live"
                else plane.source.window(52)
            )
            result = plane.search_varlength(query, 0.0)
            assert 52 in result.positions
        finally:
            if name == "live":
                plane.close()


class TestPlannerAndSpecSurface:
    def test_spec_prepare_accepts_any_m_up_to_l(self, regime_planes):
        regime, planes = regime_planes
        source = planes["tsindex"].source
        for m in QUERY_LENGTHS:
            prepared = QuerySpec(
                query=np.array(source.values[:m]),
                mode="search",
                epsilon=0.5,
            ).prepare(source)
            assert prepared.query.size == m

    def test_raw_domain_mapping_applies_to_prefixes(self):
        plane = create_method(
            "tsindex", SERIES, LENGTH, normalization="global"
        )
        m = LENGTH // 2
        raw = np.array(SERIES[52 : 52 + m])  # raw value domain
        result = execute(
            plane,
            QuerySpec(query=raw, mode="search", epsilon=1e-9, domain="raw"),
        )
        assert 52 in result.positions

    def test_plan_flags_varlength_and_native_kernels(self, regime_planes):
        regime, planes = regime_planes
        short = np.zeros(LENGTH // 2)
        full = np.zeros(LENGTH)
        for name, plane in planes.items():
            planned = plan(
                plane, QuerySpec(query=short, mode="search", epsilon=0.5)
            )
            assert planned.varlength
            assert planned.native == (
                CAP_VARLENGTH in capabilities_of(plane)
            )
            assert (name in NATIVE_VARLENGTH) == planned.native
            # knn is always the synthesized prefix scan.
            knn_plan = plan(plane, QuerySpec(query=short, mode="knn", k=3))
            assert knn_plan.varlength and not knn_plan.native
            fixed = plan(
                plane, QuerySpec(query=full, mode="search", epsilon=0.5)
            )
            assert not fixed.varlength

    def test_scan_prefix_search_is_the_oracle(self, regime_planes):
        regime, planes = regime_planes
        source = planes["sweepline"].source
        m = LENGTH // 2
        query = np.array(source.values[52 : 52 + m])
        result = scan_prefix_search(source, query, 0.25)
        expected_pos, expected_dist = prefix_oracle(
            source.values, query, 0.25
        )
        assert np.array_equal(result.positions, expected_pos)
        assert np.array_equal(result.distances, expected_dist)


class TestEngineCacheIsolation:
    def test_cache_never_serves_one_length_to_another(self):
        """Acceptance regression: an m=8 result must never be served to
        an m=16 query (or vice versa) even when one is a prefix of the
        other and every other key component matches."""
        with QueryEngine(cache_capacity=64) as serving:
            serving.build(
                "iso", SERIES, LENGTH, method="tsindex",
                normalization="none",
            )
            plane = serving.registry.get("iso")
            values = plane.source.values
            long_query = np.array(values[52 : 52 + LENGTH])
            short_query = np.array(long_query[: LENGTH // 2])
            epsilon = 0.3
            first_long = serving.query("iso", long_query, epsilon)
            first_short = serving.query("iso", short_query, epsilon)
            # Warm repeats hit the cache (same object back) ...
            assert serving.query("iso", long_query, epsilon) is first_long
            assert serving.query("iso", short_query, epsilon) is first_short
            # ... and each length's answer equals its own oracle.
            for query, result in (
                (long_query, first_long), (short_query, first_short),
            ):
                expected_pos, expected_dist = prefix_oracle(
                    values, query, epsilon
                )
                assert np.array_equal(result.positions, expected_pos)
                assert np.array_equal(result.distances, expected_dist)
            assert len(first_short) > len(first_long)  # truly different

    def test_live_append_invalidates_varlength_results(self):
        from repro.live import LiveTwinIndex

        live = LiveTwinIndex(
            SERIES[:300], LENGTH, seal_threshold=96,
            background_compaction=False,
        )
        try:
            with QueryEngine(cache_capacity=32) as serving:
                serving.add_live("live", live)
                query = np.array(SERIES[292:300])  # the current tail
                before = serving.query("live", query, 0.0)
                assert 292 in before.positions
                serving.append("live", SERIES[292:300])  # duplicate tail
                after = serving.query("live", query, 0.0)
                assert after is not before
                assert len(after) > len(before)
        finally:
            live.close()


class TestRegistryStats:
    def test_rows_report_varlength_capability(self):
        registry = IndexRegistry()
        registry.build(
            "caps", SERIES, LENGTH, method="frozen", normalization="none"
        )
        row = registry.stats("caps")
        assert CAP_VARLENGTH in row["capabilities"]
        registry.build(
            "scan-only", SERIES, LENGTH, method="sweepline",
            normalization="none",
        )
        assert CAP_VARLENGTH not in registry.stats("scan-only")["capabilities"]
