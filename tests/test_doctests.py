"""Execute the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro
import repro.bench.timing
import repro.core.series
import repro.core.tsindex
import repro.engine.cache
import repro.engine.executor
import repro.engine.registry
import repro.engine.sharding
import repro.extensions.streaming
import repro.indices.isax
import repro.indices.kvindex
import repro.indices.sweepline
import repro.live.index
import repro.live.wal

MODULES = [
    repro,
    repro.bench.timing,
    repro.core.series,
    repro.core.tsindex,
    repro.engine.cache,
    repro.engine.executor,
    repro.engine.registry,
    repro.engine.sharding,
    repro.extensions.streaming,
    repro.indices.isax,
    repro.indices.kvindex,
    repro.indices.sweepline,
    repro.live.index,
    repro.live.wal,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_doctests(module):
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.attempted > 0, f"{module.__name__} has no doctest examples"
    assert outcome.failed == 0, f"{module.__name__} doctests failed"
