"""Tests for variable-length twin queries over a TS-Index."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.extensions.varlength import search_variable_length
from repro.exceptions import (
    InvalidParameterError,
    UnsupportedNormalizationError,
)

from conftest import LENGTH


def _naive(values: np.ndarray, query: np.ndarray, epsilon: float):
    m = query.size
    return [
        p
        for p in range(values.size - m + 1)
        if np.max(np.abs(values[p : p + m] - query)) <= epsilon
    ]


class TestCorrectness:
    @pytest.mark.parametrize("m", [5, 17, 30, LENGTH])
    def test_matches_naive_raw(self, series_values, m):
        source = WindowSource(series_values[:900], LENGTH, "none")
        index = TSIndex.from_source(
            source, params=TSIndexParams(min_children=4, max_children=10)
        )
        query = np.asarray(series_values[200 : 200 + m])
        for epsilon in (0.0, 0.2, 0.8):
            result = search_variable_length(index, query, epsilon)
            assert result.positions.tolist() == _naive(
                source.values, query, epsilon
            )

    def test_full_length_agrees_with_search(self, tsindex_global, source_global, query_of):
        query = query_of(123)
        for epsilon in (0.0, 0.4):
            expected = tsindex_global.search(query, epsilon)
            actual = search_variable_length(tsindex_global, query, epsilon)
            assert np.array_equal(actual.positions, expected.positions)

    def test_tail_positions_found(self, series_values):
        # A short query matching at a position with no full l-window.
        values = np.asarray(series_values[:300])
        source = WindowSource(values, 100, "none")
        index = TSIndex.from_source(source)
        m = 20
        tail_position = values.size - m  # inside the unindexed tail
        query = values[tail_position : tail_position + m]
        result = search_variable_length(index, query, 0.0)
        assert tail_position in result.positions

    def test_global_regime_in_normalized_domain(self, tsindex_global, source_global):
        m = 25
        query = np.array(source_global.values[500 : 500 + m])
        result = search_variable_length(tsindex_global, query, 0.0)
        assert 500 in result.positions

    def test_distances_reported(self, tsindex_global, source_global):
        m = 30
        query = np.array(source_global.values[100 : 100 + m])
        result = search_variable_length(tsindex_global, query, 0.3)
        for position, distance in result:
            window = source_global.values[int(position) : int(position) + m]
            assert np.isclose(distance, np.max(np.abs(window - query)))

    def test_positions_sorted(self, tsindex_global, source_global):
        query = np.array(source_global.values[40:70])
        result = search_variable_length(tsindex_global, query, 0.5)
        assert np.all(np.diff(result.positions) > 0)


class TestPruning:
    def test_prunes_nodes(self, tsindex_global, source_global):
        query = np.array(source_global.values[900:940])
        result = search_variable_length(tsindex_global, query, 0.1)
        assert result.stats.nodes_pruned > 0

    def test_shorter_query_weaker_pruning(self, tsindex_global, source_global):
        # Fewer constrained timestamps -> no more pruning than full length.
        short = np.array(source_global.values[900:910])
        full = np.array(source_global.values[900 : 900 + LENGTH])
        short_stats = search_variable_length(tsindex_global, short, 0.2).stats
        full_stats = search_variable_length(tsindex_global, full, 0.2).stats
        assert short_stats.candidates >= full_stats.candidates - LENGTH


class TestValidation:
    def test_rejects_per_window(self, source_per_window):
        index = TSIndex.from_source(source_per_window)
        with pytest.raises(UnsupportedNormalizationError):
            search_variable_length(index, np.zeros(10), 0.1)

    def test_rejects_too_long_query(self, tsindex_global):
        with pytest.raises(InvalidParameterError, match="exceeds"):
            search_variable_length(tsindex_global, np.zeros(LENGTH + 1), 0.1)

    def test_rejects_negative_epsilon(self, tsindex_global):
        with pytest.raises(InvalidParameterError):
            search_variable_length(tsindex_global, np.zeros(10), -1.0)
