"""Variable-length twin queries: native tree kernel, typed errors,
block-bounded verification, and the deprecated extension shim.

Cross-plane equivalence (all seven planes vs the brute-force prefix
scan, engine serving, cache isolation) lives in
``tests/test_varlength_planes.py``; this module covers the TS-Index
kernel itself plus the bugfix satellites:

* :class:`~repro.exceptions.IncompatibleQueryError` carries the
  offending query length in ``received`` (it used to always be
  ``None``);
* verification is block-bounded and identical across every strategy
  (the old extension materialized the full candidate matrix in one
  shot);
* ``repro.extensions.search_variable_length`` survives as a
  ``DeprecationWarning``-emitting shim that now serves *every* plane
  through the pipeline instead of poking ``index._root``.
"""

import numpy as np
import pytest

from repro.core.frozen import FrozenTSIndex
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.exceptions import (
    IncompatibleQueryError,
    InvalidParameterError,
    UnsupportedCapabilityError,
    UnsupportedNormalizationError,
)
from repro.query import QuerySpec, execute

from conftest import LENGTH


def _naive(values: np.ndarray, query: np.ndarray, epsilon: float):
    m = query.size
    return [
        p
        for p in range(values.size - m + 1)
        if np.max(np.abs(values[p : p + m] - query)) <= epsilon
    ]


class TestCorrectness:
    @pytest.mark.parametrize("m", [5, 17, 30, LENGTH])
    def test_matches_naive_raw(self, series_values, m):
        source = WindowSource(series_values[:900], LENGTH, "none")
        index = TSIndex.from_source(
            source, params=TSIndexParams(min_children=4, max_children=10)
        )
        query = np.asarray(series_values[200 : 200 + m])
        for epsilon in (0.0, 0.2, 0.8):
            result = index.search_varlength(query, epsilon)
            assert result.positions.tolist() == _naive(
                source.values, query, epsilon
            )

    def test_full_length_agrees_with_search(
        self, tsindex_global, query_of
    ):
        query = query_of(123)
        for epsilon in (0.0, 0.4):
            expected = tsindex_global.search(query, epsilon)
            actual = tsindex_global.search_varlength(query, epsilon)
            assert np.array_equal(actual.positions, expected.positions)
            assert np.array_equal(actual.distances, expected.distances)
            assert actual.stats == expected.stats

    def test_tail_positions_found(self, series_values):
        # A short query matching at a position with no full l-window.
        values = np.asarray(series_values[:300])
        source = WindowSource(values, 100, "none")
        index = TSIndex.from_source(source)
        m = 20
        tail_position = values.size - m  # inside the unindexed tail
        query = values[tail_position : tail_position + m]
        result = index.search_varlength(query, 0.0)
        assert tail_position in result.positions

    def test_global_regime_in_normalized_domain(self, tsindex_global, source_global):
        m = 25
        query = np.array(source_global.values[500 : 500 + m])
        result = tsindex_global.search_varlength(query, 0.0)
        assert 500 in result.positions

    def test_distances_reported(self, tsindex_global, source_global):
        m = 30
        query = np.array(source_global.values[100 : 100 + m])
        result = tsindex_global.search_varlength(query, 0.3)
        for position, distance in result:
            window = source_global.values[int(position) : int(position) + m]
            assert np.isclose(distance, np.max(np.abs(window - query)))

    def test_positions_sorted(self, tsindex_global, source_global):
        query = np.array(source_global.values[40:70])
        result = tsindex_global.search_varlength(query, 0.5)
        assert np.all(np.diff(result.positions) > 0)


class TestPruning:
    def test_prunes_nodes(self, tsindex_global, source_global):
        query = np.array(source_global.values[900:940])
        result = tsindex_global.search_varlength(query, 0.1)
        assert result.stats.nodes_pruned > 0

    def test_shorter_query_weaker_pruning(self, tsindex_global, source_global):
        # Fewer constrained timestamps -> no more pruning than full length.
        short = np.array(source_global.values[900:910])
        full = np.array(source_global.values[900 : 900 + LENGTH])
        short_stats = tsindex_global.search_varlength(short, 0.2).stats
        full_stats = tsindex_global.search_varlength(full, 0.2).stats
        assert short_stats.candidates >= full_stats.candidates - LENGTH


class TestBlockBoundedVerification:
    """The memory satellite: verification routes through the chunked
    strategies (no one-shot ``view[positions]`` candidate matrix), and
    every strategy returns identical results."""

    @pytest.mark.parametrize("m", [10, 33, LENGTH - 1])
    def test_strategies_identical(self, tsindex_global, source_global, m):
        query = np.array(source_global.values[700 : 700 + m])
        bulk = tsindex_global.search_varlength(
            query, 0.6, verification="bulk"
        )
        blocked = tsindex_global.search_varlength(
            query, 0.6, verification="blocked"
        )
        per_candidate = tsindex_global.search_varlength(
            query, 0.6, verification="per_candidate"
        )
        for other in (blocked, per_candidate):
            assert np.array_equal(bulk.positions, other.positions)
            assert np.array_equal(bulk.distances, other.distances)

    def test_routes_through_chunked_verifier(self, monkeypatch, series_values):
        """Even with every window a candidate, verification goes through
        the chunked kernel (peak memory one ``chunk × m`` block), not a
        one-shot ``sliding_window_view(values, m)[positions]`` gather —
        and a tiny chunk size changes nothing about the answer."""
        import repro.core.verification as verification

        source = WindowSource(series_values[:1200], LENGTH, "none")
        index = TSIndex.from_source(source)
        m = 16
        calls = []
        original = verification.verify_positions

        def tiny_chunks(source, query, positions, epsilon, **kwargs):
            kwargs["chunk_size"] = 64
            calls.append(int(np.asarray(positions).size))
            return original(source, query, positions, epsilon, **kwargs)

        monkeypatch.setattr(verification, "verify_positions", tiny_chunks)
        query = np.array(series_values[:m])
        result = index.search_varlength(query, 1e9)  # everything matches
        assert calls == [source.values.size - m + 1]
        assert result.positions.size == source.values.size - m + 1
        assert result.stats.matches == result.positions.size


class TestTypedErrors:
    def test_rejects_per_window(self, source_per_window):
        index = TSIndex.from_source(source_per_window)
        with pytest.raises(UnsupportedNormalizationError):
            index.search_varlength(np.zeros(10), 0.1)

    def test_rejects_per_window_on_frozen(self, source_per_window):
        frozen = TSIndex.from_source(source_per_window).freeze()
        with pytest.raises(UnsupportedNormalizationError):
            frozen.search_varlength(np.zeros(10), 0.1)

    def test_rejects_too_long_query(self, tsindex_global):
        with pytest.raises(IncompatibleQueryError, match="exceeds") as info:
            tsindex_global.search_varlength(np.zeros(LENGTH + 1), 0.1)
        assert info.value.expected == LENGTH
        assert info.value.received == LENGTH + 1

    def test_rejects_negative_epsilon(self, tsindex_global):
        with pytest.raises(InvalidParameterError):
            tsindex_global.search_varlength(np.zeros(10), -1.0)

    def test_incompatible_error_carries_received_length(self, tsindex_global):
        """Satellite regression: the query-mismatch error used to read
        ``received=None``; it must name the offending query length."""
        with pytest.raises(IncompatibleQueryError) as info:
            tsindex_global.search(np.zeros(LENGTH + 7), 0.1)
        assert info.value.expected == LENGTH
        assert info.value.received == LENGTH + 7
        assert "expected=50" in str(info.value)
        assert "received=57" in str(info.value)
        # Higher-dimensional garbage reports its shape instead.
        with pytest.raises(IncompatibleQueryError) as info:
            tsindex_global.knn(np.zeros((2, LENGTH)), 3)
        assert info.value.expected == LENGTH
        assert info.value.received == (2, LENGTH)

    def test_non_plane_target_raises_typed_error(self):
        with pytest.raises(UnsupportedCapabilityError, match="no.*search"):
            execute(
                object(),
                QuerySpec(query=np.zeros(8), mode="search", epsilon=0.1),
            )


class TestDeprecatedShim:
    def test_warns_and_matches_native_kernel(self, tsindex_global, source_global):
        from repro.extensions import search_variable_length

        query = np.array(source_global.values[300:330])
        with pytest.warns(DeprecationWarning, match="search_varlength"):
            shimmed = search_variable_length(tsindex_global, query, 0.4)
        native = tsindex_global.search_varlength(query, 0.4)
        assert np.array_equal(shimmed.positions, native.positions)
        assert np.array_equal(shimmed.distances, native.distances)

    def test_serves_frozen_plane(self, series_values):
        """The headline bugfix: the shim used to die on FrozenTSIndex
        with ``AttributeError: '_root'``; it now serves every plane."""
        from repro.extensions import search_variable_length

        frozen = FrozenTSIndex.build(
            series_values[:800], LENGTH, normalization="none"
        )
        query = np.array(frozen.source.values[100:120])
        with pytest.warns(DeprecationWarning):
            result = search_variable_length(frozen, query, 0.0)
        assert 100 in result.positions
