"""Registry snapshots and deltas: structure, subtraction semantics, and
per-sample consistency under concurrent mutation."""

import threading

import pytest

from repro.obs import MetricsRegistry, NULL_REGISTRY, snapshot_delta


@pytest.fixture
def registry():
    return MetricsRegistry("snaptest")


class TestSnapshotStructure:
    def test_counter_and_gauge_values(self, registry):
        registry.counter("jobs_total", "Jobs.").inc(3)
        registry.gauge("depth", "Depth.").set(7.5)
        snap = registry.snapshot()
        assert snap["jobs_total"]["kind"] == "counter"
        assert snap["jobs_total"]["samples"][""] == 3.0
        assert snap["depth"]["samples"][""] == 7.5

    def test_labelled_samples_keyed_by_label_values(self, registry):
        counter = registry.counter("ops_total", "Ops.", labels=("mode",))
        counter.labels(mode="search").inc(2)
        counter.labels(mode="knn").inc()
        samples = registry.snapshot()["ops_total"]["samples"]
        assert samples == {"search": 2.0, "knn": 1.0}

    def test_histogram_sample_shape(self, registry):
        histogram = registry.histogram("lat_seconds", "Latency.")
        histogram.observe(0.003)
        histogram.observe(0.004)
        entry = registry.snapshot()["lat_seconds"]
        sample = entry["samples"][""]
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(0.007)
        assert len(sample["buckets"]) == len(entry["le"]) + 1
        assert sum(sample["buckets"]) == 2

    def test_null_registry_snapshot_is_empty(self):
        assert NULL_REGISTRY.snapshot() == {}


class TestSnapshotDelta:
    def test_counters_subtract(self, registry):
        counter = registry.counter("jobs_total", "Jobs.")
        counter.inc(5)
        before = registry.snapshot()
        counter.inc(2)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["jobs_total"]["samples"][""] == 2.0

    def test_metric_registered_mid_interval_counts_from_zero(self, registry):
        before = registry.snapshot()
        registry.counter("late_total", "Late.").inc(4)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["late_total"]["samples"][""] == 4.0

    def test_gauges_pass_through_after_value(self, registry):
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(10)
        before = registry.snapshot()
        gauge.set(3)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["depth"]["samples"][""] == 3.0

    def test_histograms_subtract_bucketwise(self, registry):
        histogram = registry.histogram("lat_seconds", "Latency.")
        histogram.observe(0.003)
        before = registry.snapshot()
        histogram.observe(0.003)
        histogram.observe(0.3)
        delta = snapshot_delta(before, registry.snapshot())
        sample = delta["lat_seconds"]["samples"][""]
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(0.303)
        assert sum(sample["buckets"]) == 2

    def test_metric_absent_from_after_is_dropped(self, registry):
        registry.counter("jobs_total", "Jobs.").inc()
        before = registry.snapshot()
        delta = snapshot_delta(before, {})
        assert delta == {}


class TestConcurrentConsistency:
    """Each snapshotted histogram sample must be internally consistent
    (count == sum of buckets, sum == count * observed value) even while
    writer threads are mid-flight, and counters must be monotonic
    across successive snapshots."""

    OBSERVED = 0.004
    WRITERS = 4
    INCREMENTS = 2_000

    def test_snapshots_under_concurrent_writes(self, registry):
        counter = registry.counter("jobs_total", "Jobs.")
        histogram = registry.histogram("lat_seconds", "Latency.")
        start = threading.Barrier(self.WRITERS + 1)

        def hammer():
            start.wait()
            for _ in range(self.INCREMENTS):
                counter.inc()
                histogram.observe(self.OBSERVED)

        threads = [
            threading.Thread(target=hammer) for _ in range(self.WRITERS)
        ]
        for thread in threads:
            thread.start()
        start.wait()

        previous_count = 0.0
        for _ in range(200):
            snap = registry.snapshot()
            sample = snap["lat_seconds"]["samples"][""]
            assert sample["count"] == sum(sample["buckets"])
            assert sample["sum"] == pytest.approx(
                sample["count"] * self.OBSERVED
            )
            count = snap["jobs_total"]["samples"][""]
            assert count >= previous_count
            previous_count = count

        for thread in threads:
            thread.join()
        final = registry.snapshot()
        expected = self.WRITERS * self.INCREMENTS
        assert final["jobs_total"]["samples"][""] == expected
        assert final["lat_seconds"]["samples"][""]["count"] == expected
