"""Cross-plane conformance: one pipeline, seven planes, equal answers.

The unified query plane (:mod:`repro.query`) promises that every
registered plane — the paper's four methods (sweepline, KV-Index, iSAX,
TS-Index) and the extended serving planes (frozen, sharded, live) —
answers every query mode identically through
:class:`~repro.engine.QueryEngine`, byte-identical to the plane's
direct call. This module is that promise as a parametrized suite:

* ``search`` / ``knn`` / ``exists`` / ``search_batch`` agreement with a
  seeded exhaustive-scan reference on every plane, including the
  planner-synthesized modes of the search-only baselines;
* ``(distance, position)`` k-NN tie-breaks on a series with planted
  duplicate windows;
* stats-counter invariants (``matches == len(result)``, aggregation is
  an element-wise sum);
* ``count`` equals ``len(search(...))`` on every plane (the
  non-materializing default path regression);
* exactly one implementation of query preparation in the tree.
"""

import concurrent.futures

import numpy as np
import pytest

from repro import QueryEngine, QuerySpec
from repro.engine import IndexRegistry
from repro.indices import (
    available_methods,
    create_method,
    extended_methods,
)
from repro.query import capabilities_of, execute, plan

LENGTH = 16
EPSILONS = (0.0, 0.35, 1.2)

#: Every plane the library registers, paper methods and extended alike.
ALL_PLANES = ("sweepline", "kvindex", "isax", "tsindex", "frozen",
              "sharded", "live")

#: Extra build options per plane (keep the suite light and thread-free).
BUILD_OPTIONS = {
    "sharded": {"shards": 3},
    "live": {"seal_threshold": 128, "background_compaction": False},
}


def make_series() -> np.ndarray:
    """A seeded series with planted duplicate blocks, so exact twins
    (and therefore distance ties) exist at known positions."""
    rng = np.random.default_rng(42)
    series = np.cumsum(rng.normal(scale=0.35, size=620))
    block = np.array(series[40 : 40 + LENGTH + 8])
    series[200 : 200 + block.size] = block
    series[455 : 455 + block.size] = block
    return series


SERIES = make_series()


def make_queries() -> list[np.ndarray]:
    """Three queries: a planted duplicate window (exact twins at three
    positions), an unplanted window, and a perturbed near-miss."""
    rng = np.random.default_rng(7)
    duplicate = np.array(SERIES[44 : 44 + LENGTH])
    plain = np.array(SERIES[310 : 310 + LENGTH])
    near = plain + rng.normal(scale=0.05, size=LENGTH)
    return [duplicate, plain, near]


QUERIES = make_queries()


def reference_distances(query: np.ndarray) -> np.ndarray:
    """Exhaustive Chebyshev distances to every window — the oracle."""
    count = SERIES.size - LENGTH + 1
    windows = np.lib.stride_tricks.sliding_window_view(SERIES, LENGTH)
    return np.max(np.abs(windows[:count] - query), axis=1)


@pytest.fixture(scope="module")
def planes():
    built = {
        name: create_method(
            name, SERIES, LENGTH, normalization="none",
            **BUILD_OPTIONS.get(name, {}),
        )
        for name in ALL_PLANES
    }
    yield built
    built["live"].close()


@pytest.fixture(scope="module")
def engine(planes):
    with QueryEngine(cache_capacity=64) as serving:
        for name, plane in planes.items():
            serving.add(name, plane)
        yield serving


def assert_results_equal(actual, expected, label: str) -> None:
    assert np.array_equal(actual.positions, expected.positions), label
    assert np.array_equal(actual.distances, expected.distances), label


class TestListings:
    def test_paper_and_extended_split(self):
        assert available_methods() == (
            "sweepline", "kvindex", "isax", "tsindex"
        )
        assert extended_methods() == ("frozen", "sharded", "live")
        assert available_methods(extended=True) == (
            available_methods() + extended_methods()
        )

    def test_unknown_name_lists_every_working_plane(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError) as excinfo:
            create_method("btree", SERIES, LENGTH, normalization="none")
        message = str(excinfo.value)
        for name in ALL_PLANES:
            assert name in message


@pytest.mark.parametrize("name", ALL_PLANES)
class TestEngineAgreesWithDirectCall:
    """QueryEngine answers == the plane's own answers, byte for byte."""

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_search(self, engine, planes, name, epsilon):
        for query in QUERIES:
            served = engine.query(name, query, epsilon, use_cache=False)
            direct = planes[name].search(query, epsilon)
            assert_results_equal(served, direct, f"{name} eps={epsilon}")
            oracle = reference_distances(query)
            expected = np.flatnonzero(oracle <= epsilon)
            assert np.array_equal(served.positions, expected)
            assert np.allclose(served.distances, oracle[expected])

    def test_knn(self, engine, planes, name):
        for query in QUERIES:
            served = engine.knn(name, query, 5)
            direct = planes[name].knn(query, 5)
            assert_results_equal(served, direct, name)
            assert len(served) == 5

    def test_knn_exclude(self, engine, planes, name):
        query = QUERIES[0]
        served = engine.knn(name, query, 4, exclude=(40, 60))
        direct = planes[name].knn(query, 4, exclude=(40, 60))
        assert_results_equal(served, direct, name)
        assert not any(40 <= p < 60 for p in served.positions)

    def test_exists(self, engine, planes, name):
        query = QUERIES[0]
        for epsilon, expected in ((0.0, True), (1e9, True),):
            assert engine.exists(name, query, epsilon) is expected
            assert planes[name].exists(query, epsilon) is expected
        far = np.full(LENGTH, 1e6)
        assert engine.exists(name, far, 1.0) is False
        assert planes[name].exists(far, 1.0) is False

    def test_batch(self, engine, planes, name):
        epsilon = EPSILONS[1]
        served = engine.batch(name, QUERIES, epsilon, use_cache=False)
        direct = planes[name].search_batch(QUERIES, epsilon)
        assert len(served) == len(direct) == len(QUERIES)
        for one, other in zip(served.results, direct.results):
            assert_results_equal(one, other, name)

    def test_count_matches_search_length(self, engine, planes, name):
        """The satellite regression: counts equal ``len(search(...))``
        on every plane, through the engine and directly — and the
        standalone non-materializing scan counter agrees too."""
        from repro.query import scan_count

        for epsilon in EPSILONS:
            for query in QUERIES:
                expected = len(planes[name].search(query, epsilon))
                assert planes[name].count(query, epsilon) == expected
                assert engine.count(name, query, epsilon) == expected
                assert scan_count(
                    planes[name].source, query, epsilon
                ) == expected


@pytest.mark.parametrize("name", ALL_PLANES)
class TestTieBreaksAndStats:
    def test_knn_ranked_by_distance_then_position(self, planes, name):
        # The planted duplicates give >= 3 zero-distance ties; the
        # library-wide tie-break orders equals by ascending position.
        result = planes[name].knn(QUERIES[0], 7)
        pairs = list(zip(result.distances.tolist(),
                         result.positions.tolist()))
        assert pairs == sorted(pairs)
        zero = [p for d, p in pairs if d == 0.0]
        assert zero == sorted(zero) and len(zero) >= 3

    def test_search_stats_invariants(self, planes, name):
        epsilon = EPSILONS[1]
        for query in QUERIES:
            result = planes[name].search(query, epsilon)
            stats = result.stats
            assert stats.matches == len(result)
            assert stats.candidates >= stats.matches
            assert min(stats.verified, stats.nodes_visited,
                       stats.nodes_pruned, stats.leaves_accessed) >= 0

    def test_batch_stats_are_elementwise_sums(self, planes, name):
        epsilon = EPSILONS[1]
        batch = planes[name].search_batch(QUERIES, epsilon)
        merged = batch.stats
        for field in ("candidates", "verified", "matches",
                      "nodes_visited", "nodes_pruned", "leaves_accessed"):
            assert getattr(merged, field) == sum(
                getattr(result.stats, field) for result in batch.results
            )


@pytest.mark.parametrize("name", ALL_PLANES)
class TestPlannerSurface:
    def test_plan_marks_native_modes_from_capabilities(self, planes, name):
        plane = planes[name]
        caps = capabilities_of(plane)
        for mode, kwargs in (
            ("knn", {"k": 3}),
            ("exists", {"epsilon": 0.5}),
            ("batch", {"epsilon": 0.5}),
            ("count", {"epsilon": 0.5}),
        ):
            query = QUERIES[0] if mode != "batch" else QUERIES[:2]
            planned = plan(plane, QuerySpec(query=query, mode=mode, **kwargs))
            required = mode if mode != "batch" else "search_batch"
            assert planned.native == (required in caps)
            assert "search" in caps

    def test_search_only_options_dropped_for_knn(self, planes, name):
        # A knn spec carrying a search-kernel option must behave the
        # same on every plane: the planner drops it (native knn kernels
        # take no such options), never forwards it into a TypeError.
        spec = QuerySpec(query=QUERIES[0], mode="knn", k=3,
                         options={"verification": "bulk"})
        filtered = execute(planes[name], spec)
        plain = planes[name].knn(QUERIES[0], 3)
        assert_results_equal(filtered, plain, name)

    def test_executor_fanout_matches_serial(self, planes, name):
        epsilon = EPSILONS[1]
        spec = QuerySpec(query=QUERIES, mode="batch", epsilon=epsilon)
        serial = execute(planes[name], spec)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            fanned = execute(planes[name], spec, executor=pool)
        for one, other in zip(serial.results, fanned.results):
            assert_results_equal(one, other, name)


class TestEngineBuildsEveryPlane:
    @pytest.mark.parametrize("name", ALL_PLANES)
    def test_build_by_method_name(self, name):
        registry = IndexRegistry()
        plane = registry.build(
            f"built-{name}", SERIES, LENGTH,
            method=name, normalization="none",
            **BUILD_OPTIONS.get(name, {}),
        )
        try:
            result = plane.search(QUERIES[0], EPSILONS[1])
            oracle = reference_distances(QUERIES[0])
            assert np.array_equal(
                result.positions, np.flatnonzero(oracle <= EPSILONS[1])
            )
            row = registry.stats(f"built-{name}")
            assert row["name"] == f"built-{name}"
        finally:
            if name == "live":
                plane.close()

    @pytest.mark.parametrize("option", [{"shards": 2}, {"frozen": False},
                                        {"max_workers": 2}])
    def test_sharded_only_options_rejected_elsewhere(self, option):
        from repro.exceptions import InvalidParameterError

        registry = IndexRegistry()
        with pytest.raises(InvalidParameterError, match="sharded"):
            registry.build(
                "x", SERIES, LENGTH, method="tsindex",
                normalization="none", **option,
            )


class TestRawDomainMapping:
    """QuerySpec(domain="raw") is the one global-normalization mapping
    (the logic the CLI used to open-code)."""

    @pytest.mark.parametrize("name", ["tsindex", "frozen", "sharded"])
    def test_raw_query_matches_indexed_window(self, name):
        plane = create_method(
            name, SERIES, LENGTH, normalization="global",
            **BUILD_OPTIONS.get(name, {}),
        )
        raw = np.array(SERIES[44 : 44 + LENGTH])  # raw value domain
        spec = QuerySpec(query=raw, mode="search", epsilon=1e-9,
                         domain="raw")
        result = execute(plane, spec)
        assert 44 in result.positions

    def test_cache_never_mixes_domains(self):
        # The same bytes mean different queries in different domains;
        # a warm index-domain cache entry must not serve a raw-domain
        # call (and vice versa).
        with QueryEngine(cache_capacity=32) as serving:
            serving.build(
                "global", SERIES, LENGTH, method="tsindex",
                normalization="global",
            )
            raw = np.array(SERIES[44 : 44 + LENGTH])
            as_index = serving.query("global", raw, 1e-9)
            as_raw = serving.query("global", raw, 1e-9, domain="raw")
            assert 44 in as_raw.positions
            assert not np.array_equal(as_raw.positions, as_index.positions)
            # Repeat in the other order against a fresh cache.
            serving.build(
                "global2", SERIES, LENGTH, method="tsindex",
                normalization="global",
            )
            first = serving.query("global2", raw, 1e-9, domain="raw")
            second = serving.query("global2", raw, 1e-9)
            assert np.array_equal(first.positions, as_raw.positions)
            assert np.array_equal(second.positions, as_index.positions)

    def test_raw_is_identity_without_global_norm(self, planes):
        raw = np.array(SERIES[44 : 44 + LENGTH])
        via_raw = execute(planes["tsindex"], QuerySpec(
            query=raw, mode="search", epsilon=0.25, domain="raw"))
        via_index = planes["tsindex"].search(raw, 0.25)
        assert_results_equal(via_raw, via_index, "raw==index w/o global")


class TestSinglePreparationImplementation:
    def test_no_prepare_query_call_sites_outside_repro_query(self):
        """AST-enforced acceptance criterion: the only ``prepare_query``
        call sites in the library are :func:`repro.query.spec.prepare_values`
        and the definition module ``core/windows.py`` — checked by the
        project's own ``single-call-site`` linter (immune to the string
        tricks and comments a grep would trip over)."""
        from repro.lint import run_lint

        report = run_lint(checks=["single-call-site"])
        assert report.ok, report.format_text()
