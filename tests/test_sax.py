"""Tests for SAX alphabets and words (Section 4.2 substrate)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.indices.sax import SAXAlphabet, sax_word


@pytest.fixture(scope="module")
def gaussian():
    return SAXAlphabet.gaussian(16)


@pytest.fixture(scope="module")
def empirical():
    rng = np.random.default_rng(0)
    return SAXAlphabet.empirical(rng.exponential(size=5000), 16)


class TestConstruction:
    def test_gaussian_breakpoints_symmetric(self, gaussian):
        bp = gaussian.breakpoints(16)
        assert np.allclose(bp, -bp[::-1])

    def test_gaussian_median_zero(self, gaussian):
        assert np.isclose(gaussian.breakpoints(2)[0], 0.0)

    def test_max_bits(self, gaussian):
        assert gaussian.max_bits == 4
        assert gaussian.max_cardinality == 16

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidParameterError, match="power of two"):
            SAXAlphabet.gaussian(12)

    def test_rejects_wrong_breakpoint_count(self):
        with pytest.raises(InvalidParameterError):
            SAXAlphabet([0.0, 1.0], 4)

    def test_rejects_decreasing(self):
        with pytest.raises(InvalidParameterError, match="non-decreasing"):
            SAXAlphabet([1.0, 0.0, 2.0], 4)

    def test_empirical_quantiles(self, empirical):
        # Median breakpoint should be near the distribution's median.
        median = empirical.breakpoints(2)[0]
        assert 0.5 < median < 0.9  # exponential(1) median = ln 2 ~ 0.693


class TestNesting:
    def test_breakpoints_nest(self, gaussian):
        fine = gaussian.breakpoints(16)
        for cardinality in (2, 4, 8):
            coarse = gaussian.breakpoints(cardinality)
            assert set(np.round(coarse, 12)) <= set(np.round(fine, 12))

    def test_cardinality_above_max_rejected(self, gaussian):
        with pytest.raises(InvalidParameterError):
            gaussian.breakpoints(32)

    def test_symbol_prefix_property(self, gaussian):
        # Symbol at cardinality 2^b is the top b bits of the max-card
        # symbol — the core iSAX invariant.
        rng = np.random.default_rng(1)
        values = rng.normal(size=1000)
        fine = gaussian.symbols(values, 16)
        for bits in (1, 2, 3):
            coarse = gaussian.symbols(values, 1 << bits)
            assert np.array_equal(coarse, fine >> (4 - bits))

    def test_coarsen_matches_direct(self, gaussian):
        rng = np.random.default_rng(2)
        values = rng.normal(size=500)
        fine = gaussian.symbols(values, 16)
        assert np.array_equal(
            gaussian.coarsen(fine, 4, 2), gaussian.symbols(values, 4)
        )

    def test_coarsen_rejects_refinement(self, gaussian):
        with pytest.raises(InvalidParameterError):
            gaussian.coarsen([1], 2, 3)


class TestSymbols:
    def test_symbols_in_range(self, gaussian):
        rng = np.random.default_rng(3)
        for cardinality in (2, 4, 16):
            symbols = gaussian.symbols(rng.normal(size=300), cardinality)
            assert symbols.min() >= 0
            assert symbols.max() < cardinality

    def test_symbols_monotone_in_value(self, gaussian):
        values = np.linspace(-3, 3, 100)
        symbols = gaussian.symbols(values, 8)
        assert np.all(np.diff(symbols) >= 0)

    def test_symbol_range_contains_its_values(self, gaussian):
        rng = np.random.default_rng(4)
        values = rng.normal(size=1000)
        for cardinality in (2, 8, 16):
            symbols = gaussian.symbols(values, cardinality)
            for symbol in np.unique(symbols):
                low, high = gaussian.symbol_range(int(symbol), cardinality)
                members = values[symbols == symbol]
                assert np.all(members >= low)
                assert np.all(members <= high)

    def test_outer_ranges_unbounded(self, gaussian):
        low, _ = gaussian.symbol_range(0, 8)
        _, high = gaussian.symbol_range(7, 8)
        assert low == -np.inf
        assert high == np.inf

    def test_symbol_range_validation(self, gaussian):
        with pytest.raises(InvalidParameterError):
            gaussian.symbol_range(8, 8)

    def test_boundary_value_goes_to_upper_bin(self, gaussian):
        boundary = gaussian.breakpoints(2)[0]
        assert gaussian.symbols([boundary], 2)[0] == 1


class TestWordRanges:
    def test_mixed_cardinality(self, gaussian):
        word = np.array([1, 3, 0])
        bits = np.array([1, 2, 2])
        low, high = gaussian.word_ranges(word, bits)
        assert low.shape == (3,)
        # Segment 0 at cardinality 2, symbol 1 -> [bp, inf).
        assert np.isclose(low[0], gaussian.breakpoints(2)[0])
        assert high[0] == np.inf
        # Segment 2 at cardinality 4, symbol 0 -> (-inf, bp0].
        assert low[2] == -np.inf

    def test_zero_bits_unbounded(self, gaussian):
        low, high = gaussian.word_ranges(np.array([0]), np.array([0]))
        assert low[0] == -np.inf
        assert high[0] == np.inf

    def test_shape_mismatch(self, gaussian):
        with pytest.raises(InvalidParameterError):
            gaussian.word_ranges(np.array([0, 1]), np.array([1]))


class TestSaxWord:
    def test_sax_word_pipeline(self, gaussian):
        rng = np.random.default_rng(5)
        sequence = rng.normal(size=64)
        word = sax_word(sequence, 8, gaussian, 16)
        assert word.shape == (8,)
        assert word.min() >= 0
        assert word.max() < 16

    def test_word_tracks_segment_levels(self, gaussian):
        sequence = np.concatenate([np.full(32, -2.0), np.full(32, 2.0)])
        word = sax_word(sequence, 2, gaussian, 4)
        assert word[0] < word[1]
