"""Tests for the batch query API."""

import numpy as np
import pytest

from repro.core.batch import BatchResult, search_batch
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def queries(query_of):
    return [query_of(p) for p in (10, 200, 900)]


class TestSearchBatch:
    def test_results_align_with_queries(self, tsindex_global, queries):
        batch = search_batch(tsindex_global, queries, 0.5)
        assert len(batch) == 3
        for query, result in zip(queries, batch):
            single = tsindex_global.search(query, 0.5)
            assert np.array_equal(result.positions, single.positions)

    def test_total_matches(self, tsindex_global, queries):
        batch = search_batch(tsindex_global, queries, 0.5)
        assert batch.total_matches == sum(batch.match_counts())
        assert batch.total_matches >= 3  # each query matches itself

    def test_stats_aggregated(self, tsindex_global, queries):
        batch = search_batch(tsindex_global, queries, 0.5)
        per_query = [tsindex_global.search(q, 0.5).stats for q in queries]
        assert batch.stats.candidates == sum(s.candidates for s in per_query)
        assert batch.stats.matches == batch.total_matches

    def test_selectivity(self, tsindex_global, queries):
        batch = search_batch(tsindex_global, queries, 0.5)
        windows = tsindex_global.source.count
        expected = batch.total_matches / (windows * 3)
        assert batch.selectivity(windows) == pytest.approx(expected)
        assert batch.selectivity(0) == 0.0

    def test_works_with_every_method(
        self, sweepline_global, kvindex_global, isax_global, queries
    ):
        counts = None
        for method in (sweepline_global, kvindex_global, isax_global):
            batch = search_batch(method, queries, 0.5)
            if counts is None:
                counts = batch.match_counts()
            assert batch.match_counts() == counts

    def test_search_options_forwarded(self, tsindex_global, queries):
        bulk = search_batch(tsindex_global, queries, 0.5, verification="bulk")
        slow = search_batch(
            tsindex_global, queries, 0.5, verification="per_candidate"
        )
        assert bulk.match_counts() == slow.match_counts()

    def test_empty_batch(self, tsindex_global):
        batch = search_batch(tsindex_global, [], 0.5)
        assert len(batch) == 0
        assert batch.total_matches == 0

    def test_indexing(self, tsindex_global, queries):
        batch = search_batch(tsindex_global, queries, 0.5)
        assert isinstance(batch, BatchResult)
        assert np.array_equal(batch[0].positions, batch.results[0].positions)

    def test_negative_epsilon(self, tsindex_global, queries):
        with pytest.raises(InvalidParameterError):
            search_batch(tsindex_global, queries, -1.0)
