"""FrozenTSIndex: structure, exact frozen/pointer equivalence, wiring.

The contract under test is *exactness*: freezing a TS-Index must change
nothing observable about its answers — positions, distances, k-NN
``(distance, position)`` tie-breaks, and (for ``search`` / ``exists``)
the structural counters — across every normalization regime. A seeded
randomized suite drives both implementations with identical workloads
and compares bit-for-bit; further classes cover thaw, serializer
round-trips of the flat arrays, and the frozen sharded engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frozen import ARRAY_FIELDS, FrozenTSIndex, _concat_ranges
from repro.core.normalization import Normalization
from repro.core.stats import QueryStats
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.engine import ShardedTSIndex
from repro.indices import create_method
from repro.persistence import load_index, save_index

#: Small capacities force deep trees so traversal logic is exercised.
PARAMS = TSIndexParams(min_children=4, max_children=10)

LENGTH = 30

REGIMES = (Normalization.NONE, Normalization.GLOBAL, Normalization.PER_WINDOW)

EPSILONS = (0.0, 0.05, 0.3, 1.0, 4.0)


@pytest.fixture(scope="module")
def values() -> np.ndarray:
    return synthetic.noisy_sines(900, seed=42, noise_std=0.3)


@pytest.fixture(
    scope="module", params=REGIMES, ids=[regime.value for regime in REGIMES]
)
def pair(request, values):
    """(dynamic, frozen) built over the same source, per regime."""
    source = WindowSource(values, LENGTH, request.param)
    dynamic = TSIndex.from_source(source, params=PARAMS)
    return dynamic, dynamic.freeze()


def _queries(source: WindowSource, rng: np.random.Generator, count: int = 12):
    """A workload mixing exact windows, perturbed windows and noise."""
    queries = []
    for position in rng.integers(0, source.count, size=count // 3):
        queries.append(np.array(source.window_block(int(position), int(position) + 1)[0]))
    for position in rng.integers(0, source.count, size=count // 3):
        window = np.array(source.window_block(int(position), int(position) + 1)[0])
        queries.append(window + rng.normal(scale=0.1, size=window.size))
    for _ in range(count - len(queries)):
        queries.append(rng.normal(size=source.length))
    return queries


def _assert_result_equal(a, b, *, stats: bool = True):
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.distances, b.distances)
    if stats:
        assert a.stats.as_dict() == b.stats.as_dict()


class TestStructure:
    def test_flat_arrays_mirror_tree(self, pair):
        dynamic, frozen = pair
        assert frozen.node_count == dynamic.node_count
        assert frozen.height == dynamic.height
        assert frozen.size == dynamic.size
        assert frozen.length == dynamic.length
        assert frozen.leaf_count == sum(
            1 for node, _ in dynamic.iter_nodes() if node.is_leaf
        )
        arrays = frozen.arrays()
        assert set(arrays) == set(ARRAY_FIELDS)
        n = frozen.node_count
        assert arrays["uppers"].shape == (n, LENGTH)
        assert arrays["lowers"].shape == (n, LENGTH)
        # CSR adjacency covers every non-root node exactly once.
        assert arrays["children_offsets"].shape == (n + 1,)
        assert sorted(arrays["children"].tolist()) == list(range(1, n))
        # Every indexed window position appears exactly once in a leaf.
        assert sorted(arrays["positions"].tolist()) == list(range(frozen.size))

    def test_arrays_are_read_only(self, pair):
        _, frozen = pair
        for array in frozen.arrays().values():
            with pytest.raises(ValueError):
                array[..., 0] = 0

    def test_envelope_rows_match_node_mbts(self, pair):
        dynamic, frozen = pair
        arrays = frozen.arrays()
        root = dynamic._root
        assert np.array_equal(arrays["uppers"][0], root.mbts.upper)
        assert np.array_equal(arrays["lowers"][0], root.mbts.lower)

    def test_empty_index_freezes(self, values):
        source = WindowSource(values, LENGTH, Normalization.NONE)
        empty = TSIndex(source, PARAMS)  # no insertions
        frozen = empty.freeze()
        assert frozen.node_count == 0
        assert frozen.height == 0
        query = np.array(source.window_block(0, 1)[0])
        assert len(frozen.search(query, 1.0)) == 0
        assert not frozen.exists(query, 1.0)
        assert len(frozen.knn(query, 3)) == 0

    def test_repr(self, pair):
        _, frozen = pair
        assert "FrozenTSIndex" in repr(frozen)

    def test_corrupted_arrays_rejected(self, pair):
        from repro.core.stats import BuildStats
        from repro.exceptions import InvalidParameterError

        dynamic, frozen = pair

        def corrupt(field, mutate):
            arrays = {
                key: np.array(value)
                for key, value in frozen.arrays().items()
            }
            mutate(arrays[field])
            with pytest.raises(InvalidParameterError):
                FrozenTSIndex.from_arrays(
                    dynamic.source, dynamic.params, BuildStats(), arrays
                )

        corrupt("children", lambda a: a.__setitem__(3, -1))
        corrupt("children", lambda a: a.__setitem__(3, frozen.node_count))
        corrupt("children_offsets", lambda a: a.__setitem__(0, 2))
        corrupt("leaf_offsets", lambda a: a.__setitem__(1, -1))
        corrupt("positions", lambda a: a.__setitem__(0, frozen.size))

    def test_truncated_empty_arrays_rejected(self, pair):
        from repro.core.stats import BuildStats
        from repro.exceptions import InvalidParameterError

        dynamic, _ = pair
        # A truncated archive: node arrays lost, orphan positions left.
        arrays = {
            "uppers": np.empty((0, LENGTH)),
            "lowers": np.empty((0, LENGTH)),
            "kinds": np.empty(0, dtype=np.int8),
            "children_offsets": np.zeros(1, dtype=np.int64),
            "children": np.empty(0, dtype=np.int64),
            "leaf_offsets": np.zeros(1, dtype=np.int64),
            "positions": np.arange(20, dtype=np.int64),
        }
        with pytest.raises(InvalidParameterError):
            FrozenTSIndex.from_arrays(
                dynamic.source, dynamic.params, BuildStats(), arrays
            )

    def test_concat_ranges(self):
        starts = np.array([5, 0, 9], dtype=np.int64)
        counts = np.array([3, 0, 2], dtype=np.int64)
        assert _concat_ranges(starts, counts).tolist() == [5, 6, 7, 9, 10]
        assert _concat_ranges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ).size == 0


class TestEquivalence:
    """Seeded randomized frozen == pointer, across regimes."""

    def test_search_exact(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(7)
        for query in _queries(dynamic.source, rng):
            for epsilon in EPSILONS:
                _assert_result_equal(
                    dynamic.search(query, epsilon),
                    frozen.search(query, epsilon),
                )

    def test_search_all_verification_modes(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(8)
        (query,) = _queries(dynamic.source, rng, count=3)[:1]
        for mode in ("bulk", "blocked", "per_candidate"):
            _assert_result_equal(
                dynamic.search(query, 0.4, verification=mode),
                frozen.search(query, 0.4, verification=mode),
            )

    def test_exists_exact_with_stats(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(9)
        for query in _queries(dynamic.source, rng):
            for epsilon in EPSILONS:
                dynamic_stats, frozen_stats = QueryStats(), QueryStats()
                assert dynamic.exists(
                    query, epsilon, stats=dynamic_stats
                ) == frozen.exists(query, epsilon, stats=frozen_stats)
                assert dynamic_stats.as_dict() == frozen_stats.as_dict()

    def test_exists_agrees_with_search(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(10)
        for query in _queries(dynamic.source, rng, count=6):
            for epsilon in EPSILONS:
                expected = len(dynamic.search(query, epsilon)) > 0
                assert frozen.exists(query, epsilon) == expected

    def test_knn_exact(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(11)
        for query in _queries(dynamic.source, rng, count=6):
            for k in (1, 5, 23):
                _assert_result_equal(
                    dynamic.knn(query, k), frozen.knn(query, k), stats=False
                )

    def test_knn_exclude_exact(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(12)
        for position in rng.integers(0, dynamic.size, size=4):
            position = int(position)
            query = np.array(
                dynamic.source.window_block(position, position + 1)[0]
            )
            zone = (max(0, position - LENGTH), position + LENGTH)
            a = dynamic.knn(query, 7, exclude=zone)
            b = frozen.knn(query, 7, exclude=zone)
            _assert_result_equal(a, b, stats=False)
            assert not np.any((a.positions >= zone[0]) & (a.positions < zone[1]))

    def test_knn_k_exceeds_size(self, pair):
        dynamic, frozen = pair
        query = np.array(dynamic.source.window_block(0, 1)[0])
        _assert_result_equal(
            dynamic.knn(query, dynamic.size + 5),
            frozen.knn(query, frozen.size + 5),
            stats=False,
        )

    def test_search_batch_matches_single(self, pair):
        dynamic, frozen = pair
        rng = np.random.default_rng(13)
        queries = _queries(dynamic.source, rng, count=9)
        for epsilon in (0.0, 0.3, 1.0):
            batch = frozen.search_batch(queries, epsilon)
            assert len(batch) == len(queries)
            for query, result in zip(queries, batch.results):
                _assert_result_equal(result, frozen.search(query, epsilon))
                _assert_result_equal(result, dynamic.search(query, epsilon))

    def test_search_batch_empty_workload(self, pair):
        _, frozen = pair
        batch = frozen.search_batch([], 0.5)
        assert len(batch) == 0
        assert batch.stats.candidates == 0

    def test_invalid_inputs_rejected(self, pair):
        from repro.exceptions import (
            IncompatibleQueryError,
            InvalidParameterError,
        )

        _, frozen = pair
        query = np.zeros(LENGTH)
        with pytest.raises(InvalidParameterError):
            frozen.search(query, -1.0)
        with pytest.raises(IncompatibleQueryError):
            frozen.search(np.zeros(LENGTH + 1), 0.5)
        with pytest.raises(InvalidParameterError):
            frozen.knn(query, 0)
        with pytest.raises(InvalidParameterError):
            frozen.knn(query, 3, exclude=(10, 5))


class TestThaw:
    def test_thaw_round_trip(self, pair):
        dynamic, frozen = pair
        thawed = frozen.thaw()
        assert isinstance(thawed, TSIndex)
        assert thawed.node_count == dynamic.node_count
        assert thawed.height == dynamic.height
        rng = np.random.default_rng(21)
        for query in _queries(dynamic.source, rng, count=6):
            _assert_result_equal(
                thawed.search(query, 0.4), dynamic.search(query, 0.4)
            )

    def test_thawed_tree_accepts_inserts(self, values):
        source = WindowSource(values, LENGTH, Normalization.NONE)
        partial = TSIndex(source, PARAMS)
        for position in range(200):
            partial.insert(position)
        thawed = partial.freeze().thaw()
        thawed.insert(200)
        query = np.array(source.window_block(200, 201)[0])
        assert 200 in thawed.search(query, 0.0).positions


class TestPersistence:
    def test_frozen_round_trip(self, tmp_path, pair):
        dynamic, frozen = pair
        path = tmp_path / "frozen.npz"
        save_index(frozen, path)
        restored = load_index(path)
        assert isinstance(restored, FrozenTSIndex)
        assert restored.node_count == frozen.node_count
        assert restored.params == frozen.params
        for field in ARRAY_FIELDS:
            assert np.array_equal(
                restored.arrays()[field], frozen.arrays()[field]
            )
        rng = np.random.default_rng(31)
        for query in _queries(dynamic.source, rng, count=6):
            _assert_result_equal(
                restored.search(query, 0.4), dynamic.search(query, 0.4)
            )

    def test_pointer_archives_still_load_as_trees(self, tmp_path, pair):
        dynamic, _ = pair
        path = tmp_path / "pointer.npz"
        save_index(dynamic, path)
        assert isinstance(load_index(path), TSIndex)

    def test_sharded_frozen_round_trip(self, tmp_path, values):
        engine = ShardedTSIndex.build(
            values, LENGTH, normalization="global", shards=3, params=PARAMS
        )
        assert engine.frozen
        path = tmp_path / "engine.npz"
        save_index(engine, path)
        restored = load_index(path)
        assert isinstance(restored, ShardedTSIndex)
        assert restored.frozen
        assert all(
            isinstance(tree, FrozenTSIndex) for tree in restored.shards
        )
        query = np.array(engine.source.window_block(123, 124)[0])
        for epsilon in (0.0, 0.4):
            _assert_result_equal(
                restored.search(query, epsilon), engine.search(query, epsilon)
            )

    def test_sharded_dynamic_round_trip_stays_dynamic(self, tmp_path, values):
        engine = ShardedTSIndex.build(
            values, LENGTH, normalization="global", shards=2,
            params=PARAMS, frozen=False,
        )
        assert not engine.frozen
        path = tmp_path / "engine.npz"
        save_index(engine, path)
        restored = load_index(path)
        assert not restored.frozen
        assert all(isinstance(tree, TSIndex) for tree in restored.shards)


class TestShardedFrozen:
    @pytest.fixture(scope="class")
    def trio(self, values):
        """(monolithic dynamic, frozen sharded, dynamic sharded)."""
        source = WindowSource(values, LENGTH, Normalization.GLOBAL)
        mono = TSIndex.from_source(source, params=PARAMS)
        frozen_engine = ShardedTSIndex.from_source(
            source, shards=4, params=PARAMS
        )
        dynamic_engine = ShardedTSIndex.from_source(
            source, shards=4, params=PARAMS, frozen=False
        )
        return mono, frozen_engine, dynamic_engine

    def test_default_build_is_frozen(self, trio):
        _, frozen_engine, dynamic_engine = trio
        assert frozen_engine.frozen
        assert not dynamic_engine.frozen
        assert all(row["frozen"] for row in frozen_engine.shard_stats())

    def test_search_matches_monolithic(self, trio):
        mono, frozen_engine, _ = trio
        rng = np.random.default_rng(41)
        for query in _queries(mono.source, rng, count=9):
            for epsilon in (0.0, 0.3, 1.0):
                _assert_result_equal(
                    frozen_engine.search(query, epsilon),
                    mono.search(query, epsilon),
                    stats=False,
                )

    def test_knn_matches_monolithic(self, trio):
        mono, frozen_engine, _ = trio
        rng = np.random.default_rng(42)
        for query in _queries(mono.source, rng, count=6):
            for k in (1, 9):
                _assert_result_equal(
                    frozen_engine.knn(query, k),
                    mono.knn(query, k),
                    stats=False,
                )

    def test_batched_path_matches_per_query(self, trio):
        _, frozen_engine, dynamic_engine = trio
        rng = np.random.default_rng(43)
        queries = _queries(frozen_engine.source, rng, count=8)
        # batched=True forces the shared-traversal path (the auto gate
        # only engages it on large indexes).
        batched = frozen_engine.search_batch(queries, 0.4, batched=True)
        looped = dynamic_engine.search_batch(queries, 0.4)
        assert len(batched) == len(looped)
        for fast, slow in zip(batched.results, looped.results):
            _assert_result_equal(fast, slow)
        assert batched.stats.as_dict() == looped.stats.as_dict()

    def test_batched_true_fails_loudly_when_unusable(self, trio):
        import concurrent.futures

        from repro.exceptions import InvalidParameterError

        _, frozen_engine, dynamic_engine = trio
        queries = [np.array(frozen_engine.source.window_block(5, 6)[0])]
        with pytest.raises(InvalidParameterError):
            dynamic_engine.search_batch(queries, 0.4, batched=True)
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            with pytest.raises(InvalidParameterError):
                frozen_engine.search_batch(
                    queries, 0.4, batched=True, executor=pool
                )

    def test_freeze_method(self, trio):
        _, frozen_engine, dynamic_engine = trio
        assert frozen_engine.freeze() is frozen_engine
        refrozen = dynamic_engine.freeze()
        assert refrozen.frozen
        query = np.array(dynamic_engine.source.window_block(55, 56)[0])
        _assert_result_equal(
            refrozen.search(query, 0.4),
            dynamic_engine.search(query, 0.4),
            stats=False,
        )


class TestFactoryAndCLI:
    def test_factory_builds_frozen(self, values):
        method = create_method(
            "frozen", values, LENGTH, normalization="none"
        )
        assert isinstance(method, FrozenTSIndex)

    def test_engine_build_frozen_flag(self, tmp_path, capsys):
        from repro import cli

        for flag, expect in (("--frozen", True), ("--no-frozen", False)):
            path = tmp_path / f"{expect}.npz"
            code = cli.main([
                "engine", "build", "--output", str(path),
                "--dataset", "insect", "--scale", "0.02",
                "--length", "50", "--shards", "2", flag,
            ])
            assert code == 0
            assert load_index(path).frozen is expect
        capsys.readouterr()
