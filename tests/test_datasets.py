"""Tests for the dataset registry (Table 1)."""

import numpy as np
import pytest

from repro.data.datasets import DATASET_NAMES, dataset_spec, load_dataset
from repro.exceptions import InvalidParameterError


class TestSpecs:
    def test_names(self):
        assert DATASET_NAMES == ("insect", "eeg")

    def test_insect_table1(self):
        spec = dataset_spec("insect")
        assert spec.full_length == 64_436
        assert spec.normalized_epsilons == (0.5, 0.75, 1.0, 1.25, 1.5)
        assert spec.default_normalized_epsilon == 0.75
        assert spec.raw_epsilons == (50.0, 100.0, 150.0, 200.0, 250.0)
        assert spec.default_raw_epsilon == 100.0

    def test_eeg_table1(self):
        spec = dataset_spec("eeg")
        assert spec.full_length == 1_801_999
        assert spec.normalized_epsilons == (0.1, 0.2, 0.3, 0.4, 0.5)
        assert spec.default_normalized_epsilon == 0.2
        assert spec.raw_epsilons == (20.0, 40.0, 60.0, 80.0, 100.0)
        assert spec.default_raw_epsilon == 40.0

    def test_case_insensitive(self):
        assert dataset_spec("EEG").name == "eeg"

    def test_unknown_dataset(self):
        with pytest.raises(InvalidParameterError, match="unknown dataset"):
            dataset_spec("stocks")


class TestLoadDataset:
    def test_scaled_length(self):
        series = load_dataset("insect", scale=0.05)
        assert len(series) == round(64_436 * 0.05)

    def test_minimum_length_guard(self):
        series = load_dataset("insect", scale=0.0001)
        assert len(series) >= 1000

    def test_deterministic(self):
        a = load_dataset("insect", scale=0.02)
        b = load_dataset("insect", scale=0.02)
        assert np.array_equal(np.asarray(a), np.asarray(b))

    def test_seed_override_changes_values(self):
        a = load_dataset("insect", scale=0.02)
        b = load_dataset("insect", scale=0.02, seed=99)
        assert not np.array_equal(np.asarray(a), np.asarray(b))

    def test_name_labels_scale(self):
        assert load_dataset("eeg", scale=0.01).name == "eeg@0.01"
        assert load_dataset("insect", scale=0.02).name.startswith("insect")

    def test_invalid_scale(self):
        with pytest.raises(InvalidParameterError):
            load_dataset("insect", scale=0.0)
        with pytest.raises(InvalidParameterError):
            load_dataset("insect", scale=1.5)


class TestRawEpsilonScaling:
    def test_scaled_epsilons_preserve_fractions(self):
        spec = dataset_spec("insect")
        series = load_dataset("insect", scale=0.05)
        scaled = spec.scaled_raw_epsilons(series)
        assert len(scaled) == len(spec.raw_epsilons)
        value_range = series.maximum() - series.minimum()
        for original, rescaled in zip(spec.raw_epsilons, scaled):
            assert np.isclose(
                rescaled / value_range,
                original / spec.paper_value_range,
                atol=1e-6,
            )

    def test_scaled_default(self):
        spec = dataset_spec("eeg")
        series = load_dataset("eeg", scale=0.01)
        default = spec.scaled_default_raw_epsilon(series)
        grid = spec.scaled_raw_epsilons(series)
        assert grid[1] == pytest.approx(default, rel=1e-6)
