"""Tests for the appendable streaming TS-Index extension."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.data import synthetic
from repro.exceptions import InvalidParameterError
from repro.extensions.streaming import StreamingTwinIndex
from repro.indices.sweepline import SweeplineSearch


@pytest.fixture()
def stream():
    values = synthetic.random_walk(300, seed=1)
    return StreamingTwinIndex(
        values, length=40,
        params=TSIndexParams(min_children=4, max_children=10),
    )


class TestConstruction:
    def test_initial_window_count(self, stream):
        assert stream.series_length == 300
        assert stream.window_count == 261

    def test_needs_enough_initial_values(self):
        with pytest.raises(InvalidParameterError, match="at least"):
            StreamingTwinIndex(np.arange(10.0), length=20)

    def test_repr(self, stream):
        assert "StreamingTwinIndex" in repr(stream)


class TestAppend:
    def test_single_reading(self, stream):
        added = stream.append(1.5)
        assert added == 1
        assert stream.series_length == 301
        assert stream.window_count == 262

    def test_batch(self, stream):
        added = stream.append(np.arange(25.0))
        assert added == 25

    def test_values_preserved(self, stream):
        before = np.array(stream.values)
        stream.append(np.arange(5.0))
        assert np.array_equal(stream.values[:300], before)
        assert np.array_equal(stream.values[300:], np.arange(5.0))

    def test_growth_beyond_capacity(self):
        stream = StreamingTwinIndex(np.zeros(64), length=16)
        stream.append(np.random.default_rng(0).normal(size=5000))
        assert stream.series_length == 5064
        assert stream.window_count == 5049

    def test_rejects_nan(self, stream):
        with pytest.raises(InvalidParameterError, match="NaN"):
            stream.append([1.0, float("nan")])

    def test_rejects_empty(self, stream):
        with pytest.raises(InvalidParameterError):
            stream.append(np.array([]))


class TestQueriesTrackTheStream:
    def test_matches_batch_built_index(self):
        rng = np.random.default_rng(3)
        initial = rng.normal(size=200)
        extra = rng.normal(size=150)
        stream = StreamingTwinIndex(initial, length=30)
        stream.append(extra)

        full = np.concatenate([initial, extra])
        reference = SweeplineSearch.build(full, 30, normalization="none")
        query = full[310:340]
        for epsilon in (0.0, 0.5, 1.5):
            expected = reference.search(query, epsilon)
            actual = stream.search(query, epsilon)
            assert np.array_equal(actual.positions, expected.positions)

    def test_new_pattern_becomes_findable(self, stream):
        pattern = np.sin(np.linspace(0, 3, 40)) * 10.0
        assert not stream.exists(pattern, epsilon=0.5)
        stream.append(pattern)
        assert stream.exists(pattern, epsilon=1e-9)
        result = stream.search(pattern, epsilon=1e-9)
        assert result.positions[-1] == stream.window_count - 1

    def test_knn_sees_appended_windows(self, stream):
        pattern = np.cos(np.linspace(0, 5, 40)) * 7.0
        stream.append(pattern)
        nearest = stream.knn(pattern, 1)
        assert nearest.distances[0] < 1e-9

    def test_incremental_equals_insert_order_tree(self):
        # Appending one-by-one must yield the same answers as building
        # a TSIndex over the final series by sequential insertion.
        values = synthetic.noisy_sines(260, seed=9)
        stream = StreamingTwinIndex(values[:100], length=25)
        for value in values[100:]:
            stream.append(float(value))
        batch = TSIndex.build(values, 25, normalization="none")
        query = values[200:225]
        for epsilon in (0.0, 0.3):
            assert np.array_equal(
                stream.search(query, epsilon).positions,
                batch.search(query, epsilon).positions,
            )

    def test_tree_invariants_after_appends(self, stream):
        stream.append(synthetic.random_walk(500, seed=7))
        index = stream.index
        positions = []
        for node, _depth in index.iter_nodes():
            if node.is_leaf:
                positions.extend(node.positions)
        assert sorted(positions) == list(range(stream.window_count))


class TestLiveShim:
    def test_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="LiveTwinIndex"):
            StreamingTwinIndex(np.zeros(32), length=16)

    def test_backed_by_never_sealing_live_plane(self, stream):
        from repro.live import LiveTwinIndex

        assert isinstance(stream.live, LiveTwinIndex)
        stream.append(synthetic.random_walk(600, seed=8))
        # seal_threshold=None: everything stays in one delta tree, so
        # the historical `.index` surface remains a single TSIndex.
        assert stream.live.segment_count == 0
        assert isinstance(stream.index, TSIndex)
        assert stream.index.size == stream.window_count

    def test_per_window_regime_now_supported(self):
        # The znorm-per-window restriction is lifted: per-window
        # scaling depends only on each window's own values, so it is
        # append-safe; answers must match a from-scratch index.
        rng = np.random.default_rng(21)
        initial, extra = rng.normal(size=120), rng.normal(size=90)
        stream = StreamingTwinIndex(
            initial, length=20, normalization="per_window"
        )
        stream.append(extra)
        full = np.concatenate([initial, extra])
        reference = TSIndex.build(full, 20, normalization="per_window")
        query = np.array(reference.source.window_block(150, 151)[0])
        for epsilon in (0.0, 0.4):
            expected = reference.search(query, epsilon)
            actual = stream.search(query, epsilon)
            assert np.array_equal(actual.positions, expected.positions)
            assert np.array_equal(actual.distances, expected.distances)

    def test_global_regime_still_rejected(self):
        from repro.exceptions import UnsupportedNormalizationError

        with pytest.raises(UnsupportedNormalizationError):
            StreamingTwinIndex(
                np.arange(64.0), length=16, normalization="global"
            )
