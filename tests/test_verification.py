"""Tests for the verification strategies (Section 3.2).

The central property: all strategies return identical results for any
candidate set, threshold and regime.
"""

import numpy as np
import pytest

from repro.core.stats import QueryStats
from repro.core.verification import (
    VERIFICATION_MODES,
    verify,
    verify_intervals,
    verify_positions,
    verify_positions_blocked,
    verify_positions_per_candidate,
)
from repro.exceptions import InvalidParameterError

from conftest import LENGTH


@pytest.fixture()
def ground_truth(source_global, query_of):
    """Naive twin positions for a fixed query/epsilon."""
    query = query_of(100)
    epsilon = 0.6
    expected = []
    for p in range(source_global.count):
        if np.max(np.abs(source_global.window(p) - query)) <= epsilon:
            expected.append(p)
    return query, epsilon, expected


ALL_POSITIONS = "all"


def _run(strategy, source, query, positions, epsilon):
    if strategy == "intervals":
        return verify_intervals(source, query, [(0, source.count)], epsilon)
    if positions is ALL_POSITIONS:
        positions = np.arange(source.count)
    if strategy == "bulk":
        return verify_positions(source, query, positions, epsilon)
    if strategy == "blocked":
        return verify_positions_blocked(source, query, positions, epsilon)
    return verify_positions_per_candidate(source, query, positions, epsilon)


class TestStrategiesAgree:
    @pytest.mark.parametrize(
        "strategy", ["bulk", "blocked", "per_candidate", "intervals"]
    )
    def test_full_scan_matches_naive(self, source_global, ground_truth, strategy):
        query, epsilon, expected = ground_truth
        result = _run(strategy, source_global, query, ALL_POSITIONS, epsilon)
        assert result.positions.tolist() == expected

    @pytest.mark.parametrize("strategy", ["bulk", "blocked", "per_candidate"])
    def test_subset_of_positions(self, source_global, ground_truth, strategy):
        query, epsilon, expected = ground_truth
        subset = np.arange(0, source_global.count, 3)
        result = _run(strategy, source_global, query, subset, epsilon)
        assert result.positions.tolist() == [p for p in expected if p % 3 == 0]

    @pytest.mark.parametrize("strategy", ["bulk", "blocked", "per_candidate"])
    def test_empty_candidates(self, source_global, ground_truth, strategy):
        query, epsilon, _ = ground_truth
        result = _run(strategy, source_global, query, np.array([], dtype=int), epsilon)
        assert len(result) == 0

    def test_all_regimes_agree_across_strategies(self, source_of):
        for regime in ("none", "global", "per_window"):
            source = source_of(regime)
            query = np.array(source.window_block(42, 43)[0])
            epsilon = 0.5 if regime != "none" else 0.5 * source.series.std()
            reference = verify_positions(
                source, query, np.arange(source.count), epsilon
            )
            for strategy in ("blocked", "per_candidate"):
                other = _run(strategy, source, query, ALL_POSITIONS, epsilon)
                assert np.array_equal(other.positions, reference.positions)
                assert np.allclose(other.distances, reference.distances)


class TestDistances:
    def test_reported_distances_are_exact(self, source_global, ground_truth):
        query, epsilon, _ = ground_truth
        result = verify_positions(
            source_global, query, np.arange(source_global.count), epsilon
        )
        for position, distance in result:
            window = source_global.window(int(position))
            assert np.isclose(distance, np.max(np.abs(window - query)))

    def test_all_distances_within_epsilon(self, source_global, ground_truth):
        query, epsilon, _ = ground_truth
        result = verify_positions(
            source_global, query, np.arange(source_global.count), epsilon
        )
        assert np.all(result.distances <= epsilon)

    def test_positions_sorted(self, source_global, ground_truth):
        query, epsilon, _ = ground_truth
        shuffled = np.random.default_rng(0).permutation(source_global.count)
        result = verify_positions(source_global, query, shuffled, epsilon)
        assert np.all(np.diff(result.positions) > 0)


class TestStats:
    def test_candidate_counting(self, source_global, ground_truth):
        query, epsilon, expected = ground_truth
        stats = QueryStats()
        result = verify_positions(
            source_global,
            query,
            np.arange(source_global.count),
            epsilon,
            stats=stats,
        )
        assert stats.candidates == source_global.count
        assert stats.verified == source_global.count
        assert stats.matches == len(expected)
        assert result.stats is stats

    def test_interval_stats(self, source_global, ground_truth):
        query, epsilon, expected = ground_truth
        stats = QueryStats()
        verify_intervals(
            source_global, query, [(0, 10), (20, 30)], epsilon, stats=stats
        )
        assert stats.candidates == 20

    def test_filter_ratio(self):
        stats = QueryStats(candidates=25)
        assert stats.filter_ratio(100) == 0.25
        assert stats.filter_ratio(0) == 0.0

    def test_merge(self):
        merged = QueryStats(candidates=1, matches=1).merge(
            QueryStats(candidates=2, nodes_pruned=3)
        )
        assert merged.candidates == 3
        assert merged.matches == 1
        assert merged.nodes_pruned == 3


class TestDispatch:
    def test_verify_dispatch_modes(self, source_global, ground_truth):
        query, epsilon, expected = ground_truth
        for mode in VERIFICATION_MODES:
            result = verify(
                source_global,
                query,
                np.arange(source_global.count),
                epsilon,
                mode=mode,
            )
            assert result.positions.tolist() == expected

    def test_unknown_mode(self, source_global, ground_truth):
        query, epsilon, _ = ground_truth
        with pytest.raises(InvalidParameterError, match="verification mode"):
            verify(source_global, query, [0], epsilon, mode="turbo")

    def test_negative_epsilon_rejected(self, source_global, ground_truth):
        query, _, _ = ground_truth
        with pytest.raises(InvalidParameterError):
            verify_positions(source_global, query, [0], -1.0)

    def test_blocked_various_block_sizes(self, source_global, ground_truth):
        query, epsilon, expected = ground_truth
        for block_size in (1, 3, LENGTH, 2 * LENGTH):
            result = verify_positions_blocked(
                source_global,
                query,
                np.arange(source_global.count),
                epsilon,
                block_size=block_size,
            )
            assert result.positions.tolist() == expected

    def test_small_chunks(self, source_global, ground_truth):
        query, epsilon, expected = ground_truth
        result = verify_positions(
            source_global,
            query,
            np.arange(source_global.count),
            epsilon,
            chunk_size=7,
        )
        assert result.positions.tolist() == expected
