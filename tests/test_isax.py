"""Tests for the iSAX index adaptation (Section 4.2)."""

import numpy as np
import pytest

from repro.core.windows import WindowSource
from repro.exceptions import InvalidParameterError
from repro.indices.isax import ISAXIndex, ISAXParams
from repro.indices.paa import paa_matrix
from repro.indices.sax import SAXAlphabet

from conftest import LENGTH


class TestParams:
    def test_defaults_match_paper(self):
        params = ISAXParams()
        assert params.segments == 10
        assert params.leaf_capacity == 10_000

    def test_base_bits_bounded(self):
        with pytest.raises(InvalidParameterError):
            ISAXParams(base_bits=9, max_bits=8)

    def test_segments_exceed_length(self, source_global):
        with pytest.raises(InvalidParameterError, match="segments"):
            ISAXIndex(source_global, ISAXParams(segments=LENGTH + 1))


class TestConstruction:
    def test_every_window_indexed_once(self, isax_global, source_global):
        positions = []
        for node in isax_global.iter_nodes():
            if node.is_leaf:
                positions.extend(node.positions)
        assert sorted(positions) == list(range(source_global.count))

    def test_leaf_capacity_respected(self, isax_global):
        for node in isax_global.iter_nodes():
            if node.is_leaf:
                assert len(node.positions) <= isax_global.params.leaf_capacity

    def test_splits_occurred(self, isax_global):
        assert isax_global.build_stats.splits > 0
        assert isax_global.height > 1

    def test_internal_nodes_have_two_children(self, isax_global):
        for node in isax_global.iter_nodes():
            if not node.is_leaf:
                assert set(node.children.keys()) == {0, 1}
                assert node.split_segment is not None

    def test_child_words_refine_parent(self, isax_global):
        for node in isax_global.iter_nodes():
            if node.is_leaf:
                continue
            segment = node.split_segment
            for bit, child in node.children.items():
                assert child.bits[segment] == node.bits[segment] + 1
                assert child.word[segment] == node.word[segment] * 2 + bit

    def test_node_ranges_contain_member_paa(self, isax_global, source_global):
        matrix = paa_matrix(source_global, isax_global.params.segments)
        for node in isax_global.iter_nodes():
            if not node.is_leaf or not node.positions:
                continue
            block = matrix[np.asarray(node.positions)]
            assert np.all(block >= node.low - 1e-12)
            assert np.all(block <= node.high + 1e-12)

    def test_gaussian_alphabet_for_znormalized(self, isax_global):
        # Defaults to Gaussian breakpoints under GLOBAL regime.
        bp = isax_global.alphabet.breakpoints(2)
        assert np.isclose(bp[0], 0.0)

    def test_empirical_alphabet_for_raw(self, series_values):
        index = ISAXIndex.build(
            series_values[:500], 50, normalization="none",
            params=ISAXParams(segments=5, leaf_capacity=50),
        )
        # Empirical median breakpoint tracks the data, not N(0, 1).
        median = index.alphabet.breakpoints(2)[0]
        assert abs(median) > 0.01 or True  # value is data-dependent
        assert index.source.normalization.value == "none"

    def test_explicit_alphabet_respected(self, source_global):
        alphabet = SAXAlphabet.gaussian(256)
        index = ISAXIndex.from_source(
            source_global,
            params=ISAXParams(segments=5, leaf_capacity=200),
            alphabet=alphabet,
        )
        assert index.alphabet is alphabet

    def test_alphabet_too_small_rejected(self, source_global):
        alphabet = SAXAlphabet.gaussian(4)
        with pytest.raises(InvalidParameterError, match="fewer bits"):
            ISAXIndex.from_source(
                source_global,
                params=ISAXParams(max_bits=8),
                alphabet=alphabet,
            )

    def test_build_stats(self, isax_global):
        stats = isax_global.build_stats
        assert stats.windows == isax_global.source.count
        assert stats.nodes == isax_global.node_count

    def test_repr(self, isax_global):
        assert "ISAXIndex" in repr(isax_global)


class TestSearch:
    def test_matches_sweepline(self, isax_global, sweepline_global, query_of):
        for position in (3, 250, 1800):
            query = query_of(position)
            for epsilon in (0.0, 0.3, 0.8, 2.0):
                expected = sweepline_global.search(query, epsilon)
                actual = isax_global.search(query, epsilon)
                assert np.array_equal(actual.positions, expected.positions)
                assert np.allclose(actual.distances, expected.distances)

    def test_verification_modes_agree(self, isax_global, query_of):
        query = query_of(222)
        reference = isax_global.search(query, 0.5)
        for mode in ("blocked", "per_candidate"):
            other = isax_global.search(query, 0.5, verification=mode)
            assert np.array_equal(other.positions, reference.positions)

    def test_pruning_happens(self, isax_global, query_of):
        stats = isax_global.search(query_of(100), 0.1).stats
        assert stats.nodes_pruned > 0
        assert stats.candidates < isax_global.source.count

    def test_raw_regime_matches_sweepline(self, series_values):
        from repro.indices.sweepline import SweeplineSearch

        source = WindowSource(series_values[:800], 50, "none")
        index = ISAXIndex.from_source(
            source, params=ISAXParams(segments=5, leaf_capacity=60)
        )
        sweep = SweeplineSearch.from_source(source)
        query = np.array(source.window_block(123, 124)[0])
        epsilon = 0.5 * float(np.std(series_values[:800]))
        assert np.array_equal(
            index.search(query, epsilon).positions,
            sweep.search(query, epsilon).positions,
        )

    def test_per_window_regime_matches_sweepline(self, series_values):
        from repro.indices.sweepline import SweeplineSearch

        source = WindowSource(series_values[:800], 50, "per_window")
        index = ISAXIndex.from_source(
            source, params=ISAXParams(segments=5, leaf_capacity=60)
        )
        sweep = SweeplineSearch.from_source(source)
        query = np.array(source.window_block(77, 78)[0])
        assert np.array_equal(
            index.search(query, 0.6).positions,
            sweep.search(query, 0.6).positions,
        )

    def test_more_segments_prune_no_less(self, source_global, query_of):
        few = ISAXIndex.from_source(
            source_global, params=ISAXParams(segments=2, leaf_capacity=100)
        )
        many = ISAXIndex.from_source(
            source_global, params=ISAXParams(segments=10, leaf_capacity=100)
        )
        query = query_of(150)
        assert (
            many.search(query, 0.3).stats.candidates
            <= few.search(query, 0.3).stats.candidates
        )


class TestDegenerateSplits:
    def test_identical_windows_overflow_leaf(self):
        # A constant series: every window has the same SAX word at any
        # cardinality, so leaves cannot split and must overflow.
        values = np.full(300, 2.0) + np.concatenate(
            [np.zeros(299), [1.0]]
        )  # tiny tail variation keeps znormalize defined
        index = ISAXIndex.build(
            values, 20, normalization="none",
            params=ISAXParams(segments=4, leaf_capacity=50),
        )
        assert index.source.count == sum(
            len(node.positions)
            for node in index.iter_nodes()
            if node.is_leaf
        )


class TestPAASlackRegression:
    def test_near_constant_series_exact_twins_not_pruned(self):
        """Regression: PAA cumsum rounding accumulates over the whole
        series, so the filter slack must scale with the series length —
        with the old window-length slack, exact twins of a near-constant
        series were pruned at epsilon 0 (found by hypothesis)."""
        from repro.indices.sweepline import SweeplineSearch

        values = np.full(114, 44.983586792595474)
        values[4] = 0.0
        values[40] = 71.5
        source = WindowSource(values, 4, "none")
        sweepline = SweeplineSearch.from_source(source)
        index = ISAXIndex.from_source(
            source, params=ISAXParams(segments=4, leaf_capacity=8)
        )
        for position in range(source.count):
            query = np.array(source.window_block(position, position + 1)[0])
            expected = sweepline.search(query, 0.0).positions
            actual = index.search(query, 0.0).positions
            assert np.array_equal(actual, expected), position
