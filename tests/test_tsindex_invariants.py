"""Structural invariants of the TS-Index tree (Section 5.2).

These validate the R-tree style guarantees the query algorithm relies
on: every node's MBTS covers its subtree, capacities are respected, and
all leaves sit at the same level.
"""

import numpy as np
import pytest

from repro.core.bulkload import bulk_load_source
from repro.core.mbts import MBTS
from repro.core.tsindex import TSIndex, TSIndexParams


def _check_tree(index: TSIndex, *, check_min: bool = True):
    """Assert all structural invariants; returns the leaf count."""
    source = index.source
    params = index.params
    root = index._root
    assert root is not None

    leaf_depths = set()
    seen_positions = []
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        if node.is_leaf:
            leaf_depths.add(depth)
            assert len(node.positions) <= params.max_children
            if check_min and node is not root:
                assert len(node.positions) >= params.min_children
            windows = source.windows(np.asarray(node.positions))
            cover = MBTS.from_sequences(windows)
            assert node.mbts.contains_mbts(cover)
            seen_positions.extend(node.positions)
        else:
            assert len(node.children) <= params.max_children
            if check_min and node is not root:
                assert len(node.children) >= params.min_children
            if node is root:
                assert len(node.children) >= 2
            for child in node.children:
                assert node.mbts.contains_mbts(child.mbts)
                stack.append((child, depth + 1))

    # All leaves on the same level (the paper's balanced-tree property).
    assert len(leaf_depths) == 1
    # Every window indexed exactly once.
    assert sorted(seen_positions) == list(range(source.count))
    return len(seen_positions)


@pytest.mark.parametrize("split_metric", ["area", "max"])
def test_inserted_tree_invariants(source_global, split_metric):
    index = TSIndex.from_source(
        source_global,
        params=TSIndexParams(
            min_children=4, max_children=10, split_metric=split_metric
        ),
    )
    _check_tree(index)


def test_default_capacity_tree_invariants(series_values):
    index = TSIndex.build(series_values[:1200], 25, normalization="global")
    _check_tree(index)


@pytest.mark.parametrize("ordering", ["position", "mean", "paa"])
def test_bulk_loaded_tree_invariants(source_global, ordering):
    index = bulk_load_source(
        source_global,
        params=TSIndexParams(min_children=4, max_children=10),
        ordering=ordering,
    )
    # Bulk loading packs leaves at a fill factor; one tail leaf and the
    # top levels may be under the minimum, which is fine for queries.
    _check_tree(index, check_min=False)


def test_per_window_tree_invariants(source_per_window):
    index = TSIndex.from_source(
        source_per_window, params=TSIndexParams(min_children=4, max_children=10)
    )
    _check_tree(index)


def test_envelope_matrices_match_children(tsindex_global):
    """The persistent vectorization matrices must mirror child MBTS."""
    for node, _depth in tsindex_global.iter_nodes():
        if node.is_leaf:
            continue
        upper, lower = node.child_envelopes()
        assert upper.shape[0] == len(node.children)
        for row, child in enumerate(node.children):
            assert np.array_equal(upper[row], child.mbts.upper)
            assert np.array_equal(lower[row], child.mbts.lower)


def test_mbts_tightness_at_leaves(tsindex_global, source_global):
    """Leaf MBTS must be exactly the envelope of their windows (no
    slack): construction only ever expands to covered sequences."""
    for node, _depth in tsindex_global.iter_nodes():
        if not node.is_leaf:
            continue
        windows = source_global.windows(np.asarray(node.positions))
        cover = MBTS.from_sequences(windows)
        assert node.mbts == cover
