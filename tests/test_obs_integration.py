"""End-to-end observability tests: instrumentation wired through the
engine, the live plane, the planner and the CLI, and exact under
concurrency."""

import json
import threading

import numpy as np
import pytest

from repro import LiveTwinIndex, QueryEngine, cli
from repro.obs import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
    to_prometheus,
)


@pytest.fixture
def series():
    rng = np.random.default_rng(7)
    return np.cumsum(rng.normal(size=4000))


@pytest.fixture
def fresh_default_registry():
    """Swap in an isolated process-default registry for the test."""
    original = default_registry()
    replacement = MetricsRegistry("repro")
    set_default_registry(replacement)
    try:
        yield replacement
    finally:
        set_default_registry(original)


class TestEngineInstrumentation:
    def test_query_counters_and_latency(self, series):
        with QueryEngine(metrics=MetricsRegistry("engine")) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            for _ in range(3):
                engine.query(
                    "demo", series[100:150], epsilon=0.4, use_cache=False
                )
            engine.knn("demo", series[100:150], k=3)
            registry = engine.metrics()
        queries = registry.get("repro_engine_queries_total")
        assert queries.labels(mode="search").value == 3
        assert queries.labels(mode="knn").value == 1
        latency = registry.get("repro_engine_query_seconds")
        _, total, count = latency.labels(mode="search").snapshot()
        assert count == 3 and total > 0.0
        per_index = registry.get("repro_engine_index_queries_total")
        assert per_index.labels(index="demo").value == 4

    def test_cache_gauges_reflect_cache_stats(self, series):
        with QueryEngine(metrics=MetricsRegistry("engine")) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4)
            engine.query("demo", series[100:150], epsilon=0.4)
            registry = engine.metrics()
            stats = engine.cache.stats()
            assert (
                registry.get("repro_engine_cache_hits").value == stats.hits
            )
            assert (
                registry.get("repro_engine_cache_hit_rate").value
                == pytest.approx(stats.hit_rate)
            )

    def test_stats_reports_per_mode_counts(self, series):
        with QueryEngine(metrics=False) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4)
            engine.knn("demo", series[100:150], k=2)
            engine.exists("demo", series[100:150], epsilon=0.4)
            engine.count("demo", series[100:150], epsilon=0.4)
            snapshot = engine.stats().as_dict()
        by_mode = snapshot["queries_by_mode"]
        assert by_mode["search"] == 1
        assert by_mode["knn"] == 1
        assert by_mode["exists"] == 1
        assert by_mode["count"] == 1

    def test_traces_record_pipeline_stages(self, series):
        with QueryEngine(metrics=False) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4, use_cache=False)
            (trace,) = engine.traces()
        names = [span.name for span in trace.spans]
        assert "plan" in names
        assert names.count("execute") >= 2 + 1  # 2 shard spans + envelope
        assert "merge" in names
        shard_spans = [
            span for span in trace.spans
            if span.meta and "shard" in span.meta
        ]
        assert {span.meta["shard"] for span in shard_spans} == {0, 1}

    def test_trace_ring_is_bounded_and_sampling_applies(self, series):
        with QueryEngine(
            metrics=False, trace_capacity=4, trace_sample=1.0
        ) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            for _ in range(10):
                engine.query(
                    "demo", series[100:150], epsilon=0.4, use_cache=False
                )
            assert len(engine.traces()) == 4
        with QueryEngine(metrics=False, trace_sample=0.0) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4, use_cache=False)
            assert engine.traces() == []

    def test_metrics_false_leaves_registry_empty(
        self, series, fresh_default_registry
    ):
        with QueryEngine(metrics=False) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4)
        engine_metrics = [
            m for m in fresh_default_registry.collect()
            if m.name.startswith("repro_engine_")
        ]
        assert engine_metrics == []

    def test_planner_counters_in_default_registry(
        self, series, fresh_default_registry
    ):
        with QueryEngine(metrics=False) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4, use_cache=False)
            engine.query(
                "demo", series[100:130], epsilon=0.4, use_cache=False
            )  # varlength (m < l)
        plans = fresh_default_registry.get("repro_planner_plans_total")
        assert sum(leaf.value for _, leaf in plans.samples()) == 2
        varlength = fresh_default_registry.get(
            "repro_planner_varlength_plans_total"
        )
        assert varlength.value == 1


class TestConcurrentInstrumentation:
    def test_exact_counts_under_thread_hammer(self, series, tmp_path):
        """Queries and live appends from many threads: every counter
        exact, histograms monotone, trace ring bounded."""
        per_thread, threads_n = 25, 4
        with QueryEngine(
            metrics=MetricsRegistry("hammer"), trace_capacity=8
        ) as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            live = LiveTwinIndex.create(
                tmp_path / "live",
                series[:200],
                length=50,
                normalization="none",
                seal_threshold=64,
            )
            engine.add_live("stream", live)
            errors = []

            def query_worker(offset):
                try:
                    for i in range(per_thread):
                        start = 100 + (offset * per_thread + i) % 500
                        engine.query(
                            "demo",
                            series[start : start + 50],
                            epsilon=0.4,
                            use_cache=False,
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def append_worker():
                try:
                    for i in range(per_thread):
                        engine.append(
                            "stream", series[200 + i * 5 : 205 + i * 5]
                        )
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            workers = [
                threading.Thread(target=query_worker, args=(n,))
                for n in range(threads_n)
            ] + [threading.Thread(target=append_worker)]
            for t in workers:
                t.start()
            for t in workers:
                t.join()
            assert errors == []

            registry = engine.metrics()
            queries = registry.get("repro_engine_queries_total")
            expected = threads_n * per_thread
            assert queries.labels(mode="search").value == expected
            latency = registry.get("repro_engine_query_seconds")
            counts, total, count = latency.labels(
                mode="search"
            ).snapshot()
            assert count == expected
            assert sum(counts) == expected
            assert total >= 0.0
            assert engine.stats().queries == expected
            assert len(engine.traces()) <= 8
            live.close()

    def test_live_counters_in_default_registry(
        self, series, tmp_path, fresh_default_registry
    ):
        with LiveTwinIndex.create(
            tmp_path / "live",
            series[:300],
            length=50,
            normalization="none",
            seal_threshold=64,
        ) as live:
            live.append(series[300:400])
            readings = fresh_default_registry.get(
                "repro_live_readings_total"
            )
            assert readings.value == 100
            lag = fresh_default_registry.get(
                "repro_live_ingest_lag_readings"
            )
            assert lag.value == live.stats()["delta_windows"] + 49
        with LiveTwinIndex.recover(tmp_path / "live") as live:
            assert (
                fresh_default_registry.get(
                    "repro_live_recoveries_total"
                ).value
                == 1
            )

    def test_seal_and_wal_metrics(
        self, series, tmp_path, fresh_default_registry
    ):
        with LiveTwinIndex.create(
            tmp_path / "live",
            None,
            length=10,
            normalization="none",
            seal_threshold=32,
        ) as live:
            for start in range(0, 400, 50):
                live.append(series[start : start + 50])
        seals = fresh_default_registry.get("repro_live_seals_total")
        assert seals.value >= 1
        seal_seconds = fresh_default_registry.get(
            "repro_live_seal_seconds"
        )
        _, _, seal_count = seal_seconds.snapshot()
        assert seal_count == seals.value
        appends = fresh_default_registry.get(
            "repro_live_wal_append_seconds"
        )
        _, _, append_count = appends.snapshot()
        assert append_count == 8


class TestWarningOnTornWAL:
    def test_recovery_warns_and_drops_tail(self, series, tmp_path, caplog):
        path = tmp_path / "live"
        with LiveTwinIndex.create(
            path, series[:100], length=20, normalization="none"
        ) as live:
            live.append(series[100:140])
        wal_path = path / "wal.log"
        blob = wal_path.read_bytes()
        wal_path.write_bytes(blob[:-4])  # tear the final record
        with caplog.at_level("WARNING", logger="repro.live.wal"):
            with LiveTwinIndex.recover(path) as live:
                assert live is not None
        assert any(
            "torn or corrupted" in record.message
            for record in caplog.records
        )


class TestCLISurface:
    def test_obs_command_accepted_by_parser(self):
        assert "obs" in cli.COMMANDS
        args = cli.build_parser().parse_args(["obs"])
        assert args.command == "obs"

    def test_obs_export_prometheus(
        self, series, fresh_default_registry, capsys
    ):
        with QueryEngine() as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4)
        assert cli.main(["obs", "export", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_engine_queries_total counter" in out
        assert 'repro_engine_queries_total{mode="search"} 1' in out

    def test_obs_export_json(self, fresh_default_registry, capsys):
        fresh_default_registry.counter("x_total", "X.").inc(3)
        assert cli.main(["obs", "export", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["metrics"][0]["name"] == "x_total"

    def test_live_stats_json(self, series, tmp_path, capsys):
        path = str(tmp_path / "live")
        cli.main(["live", "init", "--path", path, "--length", "50"])
        capsys.readouterr()
        assert cli.main(["live", "stats", "--path", path, "--json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["length"] == 50
        assert "segment_stats" in snapshot


class TestExportersOnLiveWorkload:
    def test_prometheus_covers_required_signals(
        self, series, tmp_path, fresh_default_registry
    ):
        """The issue's minimum catalog: QPS, per-mode latency, cache
        hit rate, ingest lag, WAL fsync latency, seal/compaction
        counts all expose through one scrape."""
        with QueryEngine() as engine:
            engine.build(
                "demo", series, length=50, shards=2, normalization="none"
            )
            engine.query("demo", series[100:150], epsilon=0.4)
            with LiveTwinIndex.create(
                tmp_path / "live",
                series[:300],
                length=50,
                normalization="none",
                fsync=True,
                seal_threshold=64,
            ) as live:
                live.append(series[300:420])
            text = to_prometheus(fresh_default_registry)
        for required in (
            "repro_engine_qps",
            "repro_engine_query_seconds_bucket",
            "repro_engine_cache_hit_rate",
            "repro_live_ingest_lag_readings",
            "repro_live_wal_fsync_seconds_bucket",
            "repro_live_seals_total",
            "repro_live_compactions_total",
        ):
            assert required in text, required
