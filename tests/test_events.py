"""Tests for collapsing twin matches into events."""

import numpy as np
import pytest

from repro.core.events import MatchGroup, event_positions, group_matches
from repro.core.stats import SearchResult
from repro.exceptions import InvalidParameterError


def _result(positions, distances=None):
    positions = np.asarray(positions, dtype=np.int64)
    if distances is None:
        distances = np.zeros(positions.size)
    return SearchResult(
        positions=positions, distances=np.asarray(distances, dtype=float)
    )


class TestGroupMatches:
    def test_single_run(self):
        groups = group_matches(_result([10, 11, 12, 13]), min_gap=5)
        assert len(groups) == 1
        assert groups[0].first_position == 10
        assert groups[0].last_position == 13
        assert groups[0].size == 4
        assert groups[0].span == 4

    def test_two_events(self):
        groups = group_matches(_result([10, 11, 50, 51, 52]), min_gap=20)
        assert len(groups) == 2
        assert groups[0].last_position == 11
        assert groups[1].first_position == 50

    def test_gap_exactly_min_gap_splits(self):
        groups = group_matches(_result([10, 30]), min_gap=20)
        assert len(groups) == 2

    def test_gap_below_min_gap_merges(self):
        groups = group_matches(_result([10, 29]), min_gap=20)
        assert len(groups) == 1

    def test_best_member_selected(self):
        groups = group_matches(
            _result([10, 11, 12], distances=[0.5, 0.1, 0.3]), min_gap=5
        )
        assert groups[0].best_position == 11
        assert groups[0].best_distance == 0.1

    def test_best_tie_prefers_earliest(self):
        groups = group_matches(
            _result([10, 11], distances=[0.2, 0.2]), min_gap=5
        )
        assert groups[0].best_position == 10

    def test_empty_result(self):
        assert group_matches(_result([]), min_gap=5) == []

    def test_singleton_matches(self):
        groups = group_matches(_result([3, 100, 200]), min_gap=10)
        assert [g.size for g in groups] == [1, 1, 1]

    def test_invalid_gap(self):
        with pytest.raises(InvalidParameterError):
            group_matches(_result([1]), min_gap=0)

    def test_groups_are_frozen(self):
        group = group_matches(_result([1]), min_gap=5)[0]
        assert isinstance(group, MatchGroup)
        with pytest.raises(Exception):
            group.size = 99


class TestEventPositions:
    def test_positions_only(self):
        result = _result([10, 11, 50], distances=[0.3, 0.1, 0.0])
        assert event_positions(result, min_gap=20) == [11, 50]


class TestEndToEnd:
    def test_recurring_pattern_collapses_to_events(self, tsindex_global, query_of):
        from conftest import LENGTH

        query = query_of(700)
        result = tsindex_global.search(query, 0.8)
        groups = group_matches(result, min_gap=LENGTH)
        # The query's own event must be among the groups, best-aligned
        # at distance 0.
        own = [g for g in groups if g.first_position <= 700 <= g.last_position]
        assert len(own) == 1
        assert own[0].best_distance == 0.0
        # Groups are disjoint and ordered.
        for a, b in zip(groups, groups[1:]):
            assert a.last_position + LENGTH <= b.first_position
