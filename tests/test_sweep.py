"""Sweep subsystem: spec expansion determinism, workload apportionment,
runner determinism, stage attribution, artifact envelopes and the
baseline comparison gate."""

import copy
import json

import pytest

from repro.bench.record import (
    ARTIFACT_SCHEMA,
    LEGACY_SCHEMA,
    make_artifact,
    read_artifact,
    write_artifact,
)
from repro.bench.timing import paired_best, sample_seconds
from repro.exceptions import InvalidParameterError, SerializationError
from repro.sweep import (
    MIXED,
    QueryMix,
    SweepSpec,
    attribute_traces,
    bucket_quantile,
    build_workload,
    compare_artifacts,
    flatten,
    full_spec,
    gated_threshold,
    run_sweep,
    smoke_spec,
    summarize,
)
from repro.sweep.report import load_report, render_compare, render_markdown, write_report


def tiny_spec(**overrides):
    """A sweep small enough for unit tests (sub-second per scenario)."""
    options = dict(
        planes=("sharded",),
        windows=(600,),
        lengths=(40,),
        shards=(2,),
        mixes=(MIXED,),
        operations=6,
        batch_size=2,
        repetitions=2,
        warmup=0,
        seed=11,
    )
    options.update(overrides)
    return SweepSpec(**options)


def strip_timings(result):
    """A sweep result with every wall-clock-dependent field removed —
    what determinism can honestly be asserted on."""
    stripped = copy.deepcopy(result)
    for record in stripped["scenarios"]:
        record.pop("repetition_seconds")
        record.pop("query_ms")
        record.pop("stages")
        record["signals"].pop("cache_hit_rate")
    return stripped


class TestQueryMix:
    def test_counts_sum_exactly(self):
        for operations in (1, 7, 12, 100):
            counts = MIXED.counts(operations)
            assert sum(counts.values()) == operations

    def test_pure_default_is_all_search(self):
        assert QueryMix().counts(10) == {
            "search": 10, "varlength": 0, "batch": 0, "knn": 0,
        }

    def test_fractions_normalized(self):
        assert QueryMix(search=2.0, knn=2.0).counts(10) == {
            "search": 5, "varlength": 0, "batch": 0, "knn": 5,
        }

    def test_label(self):
        assert QueryMix().label() == "search"
        assert MIXED.label() == "mix-s50-v20-b20-k10"

    def test_rejects_negative_and_all_zero(self):
        with pytest.raises(InvalidParameterError):
            QueryMix(search=-0.1)
        with pytest.raises(InvalidParameterError):
            QueryMix(search=0.0)


class TestSpecExpansion:
    def test_same_spec_same_ids_twice(self):
        first = [s.scenario_id for s in smoke_spec().expand()]
        second = [s.scenario_id for s in smoke_spec().expand()]
        assert first == second

    def test_seed_changes_every_id(self):
        base = {s.scenario_id for s in smoke_spec(seed=1).expand()}
        other = {s.scenario_id for s in smoke_spec(seed=2).expand()}
        assert not base & other

    def test_irrelevant_axes_collapse(self):
        spec = tiny_spec(
            planes=("frozen",), shards=(2, 4, 8), seal_thresholds=(64, 128)
        )
        scenarios = spec.expand()
        assert len(scenarios) == 1
        assert scenarios[0].shards is None
        assert scenarios[0].seal_threshold is None

    def test_chaos_skipped_on_planes_without_a_site(self):
        spec = tiny_spec(planes=("frozen",), chaos=(None, "search"))
        assert [s.chaos for s in spec.expand()] == [None]

    def test_unknown_chaos_arm_rejected(self):
        with pytest.raises(InvalidParameterError):
            tiny_spec(chaos=("meteor",))

    def test_full_spec_meets_the_committed_artifact_floor(self):
        spec = full_spec()
        assert len(spec.expand()) >= 8
        assert spec.repetitions >= 5

    def test_scenario_params_json_round_trip(self):
        scenario = smoke_spec().expand()[0]
        assert json.loads(json.dumps(scenario.params())) == scenario.params()


class TestWorkload:
    def test_deterministic(self):
        scenario = tiny_spec().expand()[0]
        assert build_workload(scenario) == build_workload(scenario)

    def test_respects_mix_counts(self):
        scenario = tiny_spec(operations=20).expand()[0]
        ops = build_workload(scenario)
        counts = scenario.mix.counts(20)
        for kind, count in counts.items():
            assert sum(1 for k, _ in ops if k == kind) == count

    def test_batch_ops_draw_batch_size_positions(self):
        scenario = tiny_spec(operations=20, batch_size=3).expand()[0]
        for kind, positions in build_workload(scenario):
            assert len(positions) == (3 if kind == "batch" else 1)
            assert all(0 <= p < scenario.windows for p in positions)


class TestStats:
    def test_summarize_basics(self):
        block = summarize([1.0, 2.0, 3.0, 4.0])
        assert block["n"] == 4
        assert block["mean"] == pytest.approx(2.5)
        assert block["median"] == pytest.approx(2.5)
        assert block["min"] == 1.0 and block["max"] == 4.0
        assert block["p50"] == pytest.approx(2.5)
        assert block["stdev"] > 0 and block["ci95"] > 0

    def test_summarize_single_sample_has_zero_spread(self):
        block = summarize([2.0])
        assert block["stdev"] == 0.0 and block["ci95"] == 0.0
        assert block["p99"] == 2.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            summarize([])

    def test_bucket_quantile_interpolates(self):
        bounds = [1.0, 2.0, 4.0]
        counts = [0, 10, 0, 0]  # all mass in (1, 2]
        assert bucket_quantile(bounds, counts, 0.5) == pytest.approx(1.5)
        assert bucket_quantile(bounds, counts, 0.0) == pytest.approx(1.0)

    def test_bucket_quantile_clamps_infinite_bucket(self):
        bounds = [1.0, 2.0]
        counts = [0, 0, 5]  # all mass beyond the largest finite bound
        assert bucket_quantile(bounds, counts, 0.9) == 2.0

    def test_bucket_quantile_empty_is_zero(self):
        assert bucket_quantile([1.0], [0, 0], 0.5) == 0.0


class TestAttribution:
    def trace(self, spans, duration):
        return {
            "mode": "search",
            "duration_s": duration,
            "spans": [
                {"name": name, "duration_s": d, "meta": meta}
                for name, d, meta in spans
            ],
        }

    def test_execute_excludes_nested_merge_and_verify(self):
        traces = [self.trace(
            [("plan", 0.1, None), ("execute", 0.8, None),
             ("merge", 0.2, None), ("verify", 0.1, None)],
            duration=1.0,
        )]
        stages = attribute_traces(traces)["stages"]
        assert stages["execute"]["total_s"] == pytest.approx(0.5)
        assert stages["merge"]["total_s"] == pytest.approx(0.2)
        shares = sum(s["share"] for s in stages.values())
        assert shares == pytest.approx(1.0)

    def test_fanout_spans_reported_as_parts_not_wall(self):
        traces = [self.trace(
            [("execute", 0.4, None),
             ("execute", 0.3, {"shard": 0}),
             ("execute", 0.3, {"shard": 1})],
            duration=0.5,
        )]
        out = attribute_traces(traces)
        assert out["stages"]["execute"]["total_s"] == pytest.approx(0.4)
        assert out["parts"]["execute"]["total_s"] == pytest.approx(0.6)

    def test_empty_input_is_structurally_stable(self):
        out = attribute_traces([])
        assert out["traces"] == 0
        assert set(out["stages"]) == {
            "prepare", "plan", "execute", "merge", "verify", "other",
        }


class TestTiming:
    def test_sample_seconds_counts(self):
        calls = []
        samples = sample_seconds(
            lambda: calls.append(1), repetitions=3, warmup=2
        )
        assert len(samples) == 3
        assert len(calls) == 5
        assert all(s >= 0 for s in samples)

    def test_paired_best_interleaves(self):
        order = []
        best_a, best_b = paired_best(
            2,
            lambda: order.append("sa"), lambda: order.append("a"),
            lambda: order.append("sb"), lambda: order.append("b"),
        )
        assert order == ["sa", "a", "sb", "b", "sa", "a", "sb", "b"]
        assert best_a >= 0 and best_b >= 0

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            sample_seconds(lambda: None, repetitions=0)
        with pytest.raises(InvalidParameterError):
            paired_best(0, *([lambda: None] * 4))


class TestArtifactEnvelope:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        payload = write_artifact(
            path, {"section": {"ms": 1.5}}, kind="demo", seed=3
        )
        loaded = read_artifact(path)
        assert loaded == payload
        assert loaded["schema"] == ARTIFACT_SCHEMA
        assert loaded["kind"] == "demo"
        assert loaded["meta"]["seed"] == 3
        assert "cpu_count" in loaded["meta"]

    def test_legacy_artifact_normalized(self, tmp_path):
        path = tmp_path / "BENCH_obs.json"
        path.write_text(json.dumps({"gate": {"overhead_pct": 1.0}}))
        loaded = read_artifact(path)
        assert loaded["schema"] == LEGACY_SCHEMA
        assert loaded["kind"] == "obs"
        assert loaded["meta"] == {}
        assert loaded["gate"]["overhead_pct"] == 1.0

    def test_scaling_artifact_kind_and_compare(self, tmp_path):
        """The fan-out scaling artifact reads through the shared
        envelope: filename-inferred kind for legacy files, and its
        curve rows gate as compare metrics like any other artifact."""
        legacy = tmp_path / "BENCH_scaling.json"
        legacy.write_text(json.dumps(
            {"curve": [{"executor": "process", "workers": 2,
                        "seconds": 0.5, "ms_per_query": 10.0}]}
        ))
        loaded = read_artifact(legacy)
        assert loaded["schema"] == LEGACY_SCHEMA
        assert loaded["kind"] == "scaling"
        current = make_artifact(
            {"curve": [{"executor": "process", "workers": 2,
                        "seconds": 0.52, "ms_per_query": 10.4}]},
            kind="scaling",
        )
        comparison = compare_artifacts(current, loaded)
        assert comparison["compared"] == 2  # the time leaves gate
        assert comparison["passed"]  # 4% slower: within tolerance

    def test_reserved_keys_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_artifact({"meta": {}}, kind="demo")

    def test_unreadable_artifact_raises(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            read_artifact(path)

    def test_every_committed_baseline_reads(self):
        import glob
        import os
        root = os.path.join(os.path.dirname(__file__), "..")
        committed = glob.glob(os.path.join(root, "BENCH_*.json"))
        for path in committed:
            loaded = read_artifact(path)
            assert loaded["schema"] in (ARTIFACT_SCHEMA, LEGACY_SCHEMA)
            assert loaded["kind"] != "unknown"


class TestCompare:
    def test_self_compare_passes_with_zero_regressions(self):
        artifact = make_artifact(
            {"scenarios": [{"repetition_seconds": {"mean": 0.5, "p99": 0.9}}]},
            kind="sweep",
        )
        comparison = compare_artifacts(artifact, artifact)
        assert comparison["passed"]
        assert comparison["regressions"] == 0
        assert comparison["compared"] > 0

    def test_inflated_metric_flagged(self):
        baseline = make_artifact(
            {"scenarios": [{"repetition_seconds": {"mean": 0.5}}]},
            kind="sweep",
        )
        current = copy.deepcopy(baseline)
        current["scenarios"][0]["repetition_seconds"]["mean"] = 1.0
        comparison = compare_artifacts(current, baseline)
        assert not comparison["passed"]
        assert comparison["regressions"] == 1

    def test_tail_metrics_get_wider_threshold(self):
        assert gated_threshold("scenarios.0.repetition_seconds.p99") > \
            gated_threshold("scenarios.0.repetition_seconds.mean")

    def test_metadata_and_signals_not_gated(self):
        for path in (
            "meta.generated_unix",
            "scenarios.0.params.windows",
            "scenarios.0.signals.chaos_failures",
            "spec.operations",
            "scenarios.0.repetition_seconds.stdev",
        ):
            assert gated_threshold(path) is None

    def test_disjoint_scenario_sets_compare_empty_but_pass(self):
        one = make_artifact(
            {"scenarios": [{"a": {"mean": 1.0}}]}, kind="sweep"
        )
        other = make_artifact(
            {"scenarios": [{"b": {"mean": 1.0}}]}, kind="sweep"
        )
        comparison = compare_artifacts(one, other)
        assert comparison["passed"]
        assert comparison["compared"] == 0
        assert comparison["missing"] and comparison["added"]

    def test_flatten_skips_bools_and_strings(self):
        flat = flatten({"a": True, "b": "x", "c": {"d": 2}, "e": [3.0]})
        assert flat == {"c.d": 2.0, "e.0": 3.0}

    def test_legacy_baseline_comparable(self, tmp_path):
        legacy = tmp_path / "BENCH_obs.json"
        legacy.write_text(json.dumps(
            {"single_query": {"enabled_ms_per_query": 2.0}}
        ))
        current = make_artifact(
            {"single_query": {"enabled_ms_per_query": 4.0}}, kind="obs"
        )
        comparison = compare_artifacts(current, read_artifact(legacy))
        assert comparison["compared"] == 1
        assert not comparison["passed"]


class TestRunSweep:
    @pytest.fixture(scope="class")
    def runs(self):
        spec = tiny_spec()
        return run_sweep(spec), run_sweep(spec)

    def test_two_runs_identical_modulo_timings(self, runs):
        first, second = runs
        assert strip_timings(first) == strip_timings(second)

    def test_report_ordered_by_scenario_id(self, runs):
        ids = [record["id"] for record in runs[0]["scenarios"]]
        assert ids == sorted(ids)

    def test_statistics_cover_all_repetitions(self, runs):
        for record in runs[0]["scenarios"]:
            assert record["repetition_seconds"]["n"] == record["repetitions"]

    def test_self_compare_of_a_real_run(self, runs, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_report(path, runs[0], seed=11)
        artifact = load_report(path)
        comparison = compare_artifacts(artifact, artifact)
        assert comparison["passed"] and comparison["regressions"] == 0
        assert comparison["compared"] > 0

    def test_chaos_scenario_counts_failures(self):
        result = run_sweep(tiny_spec(chaos=("search",), operations=16))
        record = result["scenarios"][0]
        assert record["params"]["chaos"] == "search"
        assert record["signals"]["chaos_failures"] > 0

    def test_live_scenario_reports_ingest_signals(self):
        result = run_sweep(
            tiny_spec(planes=("live",), seal_thresholds=(128,))
        )
        signals = result["scenarios"][0]["signals"]
        assert signals["seals_total"] > 0

    def test_traces_attributed(self, runs):
        record = runs[0]["scenarios"][0]
        assert record["stages"]["traces"] > 0
        assert record["stages"]["stages"]["execute"]["total_s"] > 0

    def test_render_markdown(self, runs, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        write_report(path, runs[0], seed=11)
        report = render_markdown(load_report(path))
        assert "## Scenarios" in report
        assert runs[0]["scenarios"][0]["id"] in report

    def test_render_compare_mentions_verdict(self, runs):
        comparison = compare_artifacts(
            make_artifact(runs[0], kind="sweep"),
            make_artifact(runs[0], kind="sweep"),
        )
        text = render_compare(comparison)
        assert "PASS" in text
