"""Fan-out failure semantics: cancellation, attribution, per-part
deadlines, and the opt-in degraded mode across both fan-out planes."""

import concurrent.futures
import threading
import time

import numpy as np
import pytest

from repro._util import FanOutResult, fan_out, map_with_executor
from repro.core.tsindex import TSIndex
from repro.engine import QueryEngine, ShardedTSIndex
from repro.exceptions import ShardTimeoutError
from repro.faults import failpoints
from repro.live import LiveTwinIndex
from repro.query import QuerySpec, plan
from repro.query.capabilities import CAP_FANOUT_TIMEOUT


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.reset()
    yield
    failpoints.reset()


@pytest.fixture(scope="module")
def pool():
    with concurrent.futures.ThreadPoolExecutor(4) as executor:
        yield executor


class TestFanOut:
    def test_results_in_input_order(self, pool):
        out = fan_out(pool, lambda x: x * 2, [3, 1, 2])
        assert out.results == [6, 2, 4]
        assert out.answered == (0, 1, 2)
        assert not out.degraded

    def test_serial_path_annotates_failures(self):
        def boom(x):
            raise ValueError("bad item")

        with pytest.raises(ValueError) as info:
            fan_out(None, boom, [7], labels=["seg-7"], part="segment")
        assert any(
            "segment 'seg-7'" in note
            for note in getattr(info.value, "__notes__", [])
        )

    def test_first_failure_cancels_pending(self, pool):
        release = threading.Event()
        started = []

        def worker(x):
            started.append(x)
            if x == 0:
                raise RuntimeError("first fails")
            release.wait(5.0)
            return x

        # A 1-thread pool: item 0 fails while 1 and 2 are still queued;
        # both must be cancelled, not leaked.
        with concurrent.futures.ThreadPoolExecutor(1) as narrow:
            with pytest.raises(RuntimeError) as info:
                fan_out(narrow, worker, [0, 1, 2], part="shard")
            release.set()
        assert started == [0]
        assert any(
            "shard 0" in note
            for note in getattr(info.value, "__notes__", [])
        )

    def test_timeout_fail_fast_names_parts(self, pool):
        def maybe_slow(x):
            if x == "slow":
                time.sleep(5.0)
            return x

        with pytest.raises(ShardTimeoutError) as info:
            fan_out(
                pool, maybe_slow, ["fast", "slow"],
                labels=["fast", "slow"], part="shard", timeout=0.2,
            )
        assert tuple(info.value.answered) == ("fast",)
        assert tuple(info.value.missing) == ("slow",)
        assert isinstance(info.value, TimeoutError)

    def test_degraded_returns_partial_with_holes(self, pool):
        def maybe_slow(x):
            if x == 1:
                time.sleep(5.0)
            return x * 10

        out = fan_out(
            pool, maybe_slow, [0, 1, 2], part="shard",
            timeout=0.3, degraded=True,
        )
        assert isinstance(out, FanOutResult)
        assert out.degraded
        assert out.results[0] == 0 and out.results[2] == 20
        assert out.results[1] is None
        assert 1 in out.missing

    def test_map_with_executor_unwraps_results(self, pool):
        assert map_with_executor(pool, lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_fanout_task_failpoint_fires_in_workers(self, pool):
        failpoints.arm("fanout.task", error=RuntimeError("injected"))
        with pytest.raises(RuntimeError, match="injected"):
            fan_out(pool, lambda x: x, [1, 2], part="shard")


@pytest.fixture(scope="module")
def sharded():
    series = np.cumsum(np.random.default_rng(5).normal(size=2000))
    return ShardedTSIndex.build(series, 50, shards=2, normalization="none")


class TestShardedPlane:
    def test_declares_fanout_timeout_capability(self, sharded):
        assert CAP_FANOUT_TIMEOUT in sharded.capabilities

    def test_shard_search_failpoint_attributed(self, sharded, pool):
        failpoints.arm("shard.search", error="io", on_hit=2)
        query = np.array(sharded.source.window_block(100, 101)[0])
        with pytest.raises(OSError) as info:
            sharded.search(query, 0.3, executor=pool)
        assert any(
            "shard" in note
            for note in getattr(info.value, "__notes__", [])
        )

    def test_degraded_search_reports_missing_shards(self, sharded, pool):
        query = np.array(sharded.source.window_block(100, 101)[0])
        slow = sharded._shards[1]

        class SlowShard:
            def search(self, *args, **kwargs):
                time.sleep(5.0)
                return slow.search(*args, **kwargs)

        original = sharded._shards
        sharded._shards = [original[0], SlowShard()]
        try:
            with pytest.raises(ShardTimeoutError):
                sharded.search(query, 0.3, executor=pool, timeout=0.3)
            result = sharded.search(
                query, 0.3, executor=pool, timeout=0.3, degraded=True
            )
        finally:
            sharded._shards = original
        assert result.degraded is not None
        assert result.degraded["missing"] == [1]
        assert result.degraded["answered"] == [0]
        # The degraded answer is exact over the answering shard.
        full = sharded.search(query, 0.3)
        span = sharded._starts[1]
        want = full.positions[full.positions < span]
        assert np.array_equal(result.positions, want)

    def test_complete_search_has_no_degraded_record(self, sharded, pool):
        query = np.array(sharded.source.window_block(100, 101)[0])
        result = sharded.search(query, 0.3, executor=pool, timeout=30.0)
        assert result.degraded is None


class TestLivePlane:
    def test_live_declares_capability_and_serves_timeout(self, tmp_path, pool):
        series = np.cumsum(np.random.default_rng(6).normal(size=600))
        live = LiveTwinIndex(series, length=32, seal_threshold=128)
        assert CAP_FANOUT_TIMEOUT in live.capabilities
        query = np.array(series[50:82])
        result = live.search(query, 0.3, executor=pool, timeout=30.0)
        assert result.degraded is None
        want = live.search(query, 0.3)
        assert np.array_equal(result.positions, want.positions)
        live.close()

    def test_segment_search_failpoint_attributed(self, tmp_path, pool):
        series = np.cumsum(np.random.default_rng(7).normal(size=600))
        live = LiveTwinIndex(series, length=32, seal_threshold=128)
        assert len(live.segments) >= 2
        failpoints.arm("segment.search", error="io")
        with pytest.raises(OSError) as info:
            live.search(series[50:82], 0.3, executor=pool)
        assert any(
            "segment" in note
            for note in getattr(info.value, "__notes__", [])
        )
        live.close()


class TestPlannerFiltering:
    def test_non_fanout_plane_drops_timeout_options(self):
        series = np.cumsum(np.random.default_rng(8).normal(size=500))
        index = TSIndex.build(series, 50, normalization="none")
        spec = QuerySpec(
            query=series[100:150], mode="search", epsilon=0.3,
            options={"timeout": 0.5, "degraded": True},
        )
        planned = plan(index, spec)
        assert "timeout" not in planned.options
        assert "degraded" not in planned.options
        planned.execute()  # must not crash on unexpected kwargs

    def test_fanout_plane_keeps_timeout_options(self, sharded):
        query = np.array(sharded.source.window_block(100, 101)[0])
        spec = QuerySpec(
            query=query, mode="search", epsilon=0.3,
            options={"timeout": 30.0, "degraded": True},
        )
        planned = plan(sharded, spec)
        assert planned.options["timeout"] == 30.0
        assert planned.options["degraded"] is True
        result = planned.execute()
        assert result.degraded is None  # nothing actually timed out

    def test_varlength_path_drops_timeout_options(self, sharded):
        short = np.array(sharded.source.window_block(100, 101)[0][:20])
        spec = QuerySpec(
            query=short, mode="search", epsilon=0.3,
            options={"timeout": 30.0, "degraded": True},
        )
        planned = plan(sharded, spec)
        assert planned.varlength
        assert "timeout" not in planned.options
        planned.execute()


class TestEngineWiring:
    def test_query_accepts_timeout(self, sharded):
        query = np.array(sharded.source.window_block(100, 101)[0])
        with QueryEngine() as engine:
            engine.add("plane", sharded)
            result = engine.query("plane", query, 0.3, timeout=30.0)
            assert result.degraded is None

    def test_degraded_queries_never_cached(self, sharded):
        query = np.array(sharded.source.window_block(100, 101)[0])
        with QueryEngine() as engine:
            engine.add("plane", sharded)
            first = engine.query("plane", query, 0.3, degraded=True,
                                 timeout=30.0)
            second = engine.query("plane", query, 0.3, degraded=True,
                                  timeout=30.0)
            assert engine.cache.stats().size == 0
            assert first is not second
            # The same query without degraded mode is cached as usual.
            third = engine.query("plane", query, 0.3)
            fourth = engine.query("plane", query, 0.3)
            assert fourth is third
