"""Tests for the synthetic generators (determinism + structure)."""

import numpy as np
import pytest

from repro.data import synthetic
from repro.exceptions import InvalidParameterError


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: synthetic.random_walk(500, seed=seed),
            lambda seed: synthetic.ar1(500, seed=seed),
            lambda seed: synthetic.noisy_sines(500, seed=seed),
            lambda seed: synthetic.regime_switching(500, seed=seed),
            lambda seed: synthetic.insect_like(2000, seed=seed),
            lambda seed: synthetic.eeg_like(2000, seed=seed),
        ],
        ids=["walk", "ar1", "sines", "regime", "insect", "eeg"],
    )
    def test_same_seed_same_series(self, factory):
        assert np.array_equal(factory(7), factory(7))

    def test_different_seed_different_series(self):
        a = synthetic.insect_like(1000, seed=1)
        b = synthetic.insect_like(1000, seed=2)
        assert not np.array_equal(a, b)


class TestShapes:
    def test_lengths(self):
        for n in (1, 10, 999):
            assert synthetic.random_walk(n, seed=0).size == n
            assert synthetic.insect_like(n, seed=0).size == n
            assert synthetic.eeg_like(n, seed=0).size == n

    def test_default_lengths_match_paper(self):
        # Only check the advertised defaults, not generate them fully.
        import inspect

        assert inspect.signature(synthetic.insect_like).parameters["n"].default == 64_436
        assert inspect.signature(synthetic.eeg_like).parameters["n"].default == 1_801_999

    def test_all_finite(self):
        for values in (
            synthetic.insect_like(3000, seed=3),
            synthetic.eeg_like(3000, seed=3),
            synthetic.regime_switching(3000, seed=3),
        ):
            assert np.all(np.isfinite(values))

    def test_rejects_zero_length(self):
        with pytest.raises(InvalidParameterError):
            synthetic.random_walk(0)


class TestStatisticalStructure:
    def test_ar1_autocorrelation(self):
        values = synthetic.ar1(20_000, seed=5, phi=0.9)
        lag1 = np.corrcoef(values[:-1], values[1:])[0, 1]
        assert 0.85 < lag1 < 0.95

    def test_ar1_rejects_nonstationary(self):
        with pytest.raises(InvalidParameterError):
            synthetic.ar1(100, phi=1.0)

    def test_noisy_sines_mismatched_params(self):
        with pytest.raises(InvalidParameterError):
            synthetic.noisy_sines(100, frequencies=(0.1,), amplitudes=(1.0, 2.0))

    def test_noisy_sines_periodicity(self):
        values = synthetic.noisy_sines(
            4000, seed=0, frequencies=(0.01,), amplitudes=(1.0,), noise_std=0.01
        )
        period = 100
        shifted_corr = np.corrcoef(values[:-period], values[period:])[0, 1]
        assert shifted_corr > 0.9

    def test_regime_switching_has_level_changes(self):
        values = synthetic.regime_switching(5000, seed=9, mean_regime_length=200)
        # Block means should vary far more than white noise would allow.
        blocks = values[: 5000 // 10 * 10].reshape(10, -1).mean(axis=1)
        assert blocks.std() > 0.1

    def test_insect_selectivity_calibration(self):
        # The generator is calibrated so z-normalized twin queries at
        # eps = 0.5 are highly selective (DESIGN.md §4).
        from repro.core.windows import WindowSource
        from repro.indices.sweepline import SweeplineSearch

        values = synthetic.insect_like(8000, seed=42)
        source = WindowSource(values, 100, "global")
        sweep = SweeplineSearch.from_source(source)
        query = np.array(source.window_block(1234, 1235)[0])
        matches = len(sweep.search(query, 0.5))
        assert matches < source.count * 0.01

    def test_eeg_has_spikes(self):
        values = synthetic.eeg_like(50_000, seed=7)
        z = (values - values.mean()) / values.std()
        assert np.max(np.abs(z)) > 3.5
