"""Raw (mmap-able) archive directories: format equivalence, zero-copy
adoption, atomic commit, and legacy ``.npz`` compatibility.

The contract under test: an index restored from a raw archive answers
every query byte-identically to the in-memory original *and* to an
``.npz`` restore — positions, distances, and the structural
:class:`~repro.core.stats.QueryStats` counters alike — while the load
itself adopts the on-disk arrays as read-only memory maps instead of
copying them.
"""

import mmap
import os

import numpy as np
import pytest

from repro.core.frozen import FrozenTSIndex
from repro.core.tsindex import TSIndex
from repro.engine import ShardedTSIndex
from repro.exceptions import SerializationError
from repro.persistence import load_index, save_index

LENGTH = 50


def _frozen(series_values, normalization) -> FrozenTSIndex:
    return TSIndex.build(
        series_values, LENGTH, normalization=normalization
    ).freeze()


def _assert_identical(a, b, query, epsilon=0.5, k=5):
    ra, rb = a.search(query, epsilon), b.search(query, epsilon)
    assert np.array_equal(ra.positions, rb.positions)
    assert np.array_equal(ra.distances, rb.distances)
    assert ra.stats == rb.stats
    ka, kb = a.knn(query, k), b.knn(query, k)
    assert np.array_equal(ka.positions, kb.positions)
    assert np.array_equal(ka.distances, kb.distances)
    assert a.count(query, epsilon) == b.count(query, epsilon)


def _ultimate_base(array):
    """Walk ``.base`` to the buffer an ndarray's memory lives in."""
    base = array
    while isinstance(getattr(base, "base", None), (np.ndarray, mmap.mmap)):
        base = base.base
    return base


class TestFrozenRawRoundTrip:
    def test_byte_identical_across_formats(
        self, tmp_path, series_values, any_normalization, query_of
    ):
        original = _frozen(series_values, any_normalization)
        npz_path = tmp_path / "frozen.npz"
        raw_path = tmp_path / "frozen.raw"
        save_index(original, npz_path)
        save_index(original, raw_path, format="raw")
        from_npz = load_index(npz_path)
        from_raw = load_index(raw_path)
        query = query_of(123)
        _assert_identical(original, from_raw, query)
        _assert_identical(from_npz, from_raw, query)

    def test_mmap_load_is_zero_copy(self, tmp_path, series_values, query_of):
        original = _frozen(series_values, "global")
        path = tmp_path / "frozen.raw"
        save_index(original, path, format="raw")
        loaded = load_index(path)
        # The envelope planes must live in the OS page cache, not in
        # private copies: their memory bottoms out at an mmap buffer.
        assert isinstance(_ultimate_base(loaded._uppers_t), mmap.mmap)
        assert isinstance(_ultimate_base(loaded._lowers_t), mmap.mmap)
        # mmap=False opts out: plain private arrays.
        in_memory = load_index(path, mmap=False)
        assert not isinstance(_ultimate_base(in_memory._uppers_t), mmap.mmap)
        _assert_identical(loaded, in_memory, query_of(50))

    def test_raw_views_are_read_only(self, tmp_path, series_values):
        original = _frozen(series_values, "none")
        path = tmp_path / "frozen.raw"
        save_index(original, path, format="raw")
        loaded = load_index(path)
        with pytest.raises(ValueError):
            loaded._uppers_t[0, 0] = 0.0

    def test_overwrite_in_place(self, tmp_path, series_values, query_of):
        path = tmp_path / "frozen.raw"
        save_index(_frozen(series_values[:1000], "global"), path, format="raw")
        replacement = _frozen(series_values, "global")
        save_index(replacement, path, format="raw")
        _assert_identical(replacement, load_index(path), query_of(99))


class TestShardedRawRoundTrip:
    def test_byte_identical_across_formats(
        self, tmp_path, series_values, any_normalization, query_of
    ):
        engine = ShardedTSIndex.build(
            series_values, LENGTH, normalization=any_normalization, shards=3
        )
        raw_path = tmp_path / "engine.raw"
        npz_path = tmp_path / "engine.npz"
        save_index(engine, raw_path, format="raw")
        save_index(engine, npz_path)
        from_raw = load_index(raw_path)
        assert isinstance(from_raw, ShardedTSIndex)
        assert from_raw.shard_count == engine.shard_count
        query = query_of(222)
        _assert_identical(engine, from_raw, query)
        _assert_identical(load_index(npz_path), from_raw, query)

    def test_load_attaches_archive_path(self, tmp_path, series_values):
        engine = ShardedTSIndex.build(series_values, LENGTH, shards=2)
        assert engine.archive_path is None
        raw_path = tmp_path / "engine.raw"
        save_index(engine, raw_path, format="raw")
        loaded = load_index(raw_path)
        assert loaded.archive_path == os.fspath(raw_path)
        npz_path = tmp_path / "engine.npz"
        save_index(engine, npz_path)
        assert load_index(npz_path).archive_path == os.fspath(npz_path)

    def test_shard_planes_are_mmapped(self, tmp_path, series_values):
        engine = ShardedTSIndex.build(series_values, LENGTH, shards=2)
        path = tmp_path / "engine.raw"
        save_index(engine, path, format="raw")
        loaded = load_index(path)
        for shard in loaded.shards:
            assert isinstance(_ultimate_base(shard._uppers_t), mmap.mmap)


class TestAtomicCommit:
    def test_missing_meta_fails_loudly(self, tmp_path, series_values):
        path = tmp_path / "frozen.raw"
        save_index(_frozen(series_values, "global"), path, format="raw")
        os.unlink(path / "meta.json")
        with pytest.raises(SerializationError, match="uncommitted or torn"):
            load_index(path)

    def test_corrupt_meta_fails_loudly(self, tmp_path, series_values):
        path = tmp_path / "frozen.raw"
        save_index(_frozen(series_values, "global"), path, format="raw")
        (path / "meta.json").write_text("{not json")
        with pytest.raises(SerializationError, match="uncommitted or torn"):
            load_index(path)

    def test_torn_array_fails_loudly(self, tmp_path, series_values):
        path = tmp_path / "frozen.raw"
        save_index(_frozen(series_values, "global"), path, format="raw")
        (path / "uppers_t.npy").write_bytes(b"\x93NUMPY")
        with pytest.raises(SerializationError):
            load_index(path).search(series_values[:LENGTH], 0.5)

    def test_no_tmp_files_survive_commit(self, tmp_path, series_values):
        path = tmp_path / "frozen.raw"
        save_index(_frozen(series_values, "global"), path, format="raw")
        leftovers = [n for n in os.listdir(path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_stale_arrays_removed_on_rewrite(self, tmp_path, series_values):
        path = tmp_path / "frozen.raw"
        save_index(_frozen(series_values, "global"), path, format="raw")
        stale = path / "ghost_field.npy"
        stale.write_bytes(b"stale")
        save_index(_frozen(series_values, "global"), path, format="raw")
        assert not stale.exists()


class TestLegacyCompatibility:
    def test_legacy_field_layout_still_loads(
        self, tmp_path, series_values, query_of
    ):
        """Archives in the pre-raw layout carry ``uppers``/``lowers``
        (window-major, no ``uppers_t``); the compressed container still
        writes exactly that layout, and it must keep loading."""
        original = _frozen(series_values, "global")
        path = tmp_path / "legacy.npz"
        save_index(original, path)
        with np.load(path, allow_pickle=False) as archive:
            fields = set(archive.files)
        assert "uppers" in fields and "uppers_t" not in fields
        restored = load_index(path)
        _assert_identical(original, restored, query_of(42))

    def test_raw_other_plane_kinds_round_trip(
        self, tmp_path, series_values, query_of
    ):
        """The raw container is not frozen-specific: a dynamic
        pointer-tree TS-Index round-trips through it too."""
        original = TSIndex.build(series_values, LENGTH, normalization="global")
        path = tmp_path / "dynamic.raw"
        save_index(original, path, format="raw")
        restored = load_index(path)
        query = query_of(77)
        a, b = original.search(query, 0.5), restored.search(query, 0.5)
        assert np.array_equal(a.positions, b.positions)
        assert np.array_equal(a.distances, b.distances)


class TestLoadMetric:
    def test_archive_load_histogram_observes(self, tmp_path, series_values):
        from repro.obs import (
            MetricsRegistry,
            default_registry,
            set_default_registry,
        )

        npz_path = tmp_path / "frozen.npz"
        raw_path = tmp_path / "frozen.raw"
        original = _frozen(series_values, "global")
        save_index(original, npz_path)
        save_index(original, raw_path, format="raw")
        previous = default_registry()
        registry = MetricsRegistry()
        set_default_registry(registry)
        try:
            load_index(raw_path)
            load_index(npz_path)
        finally:
            set_default_registry(previous)
        histogram = registry.get("repro_archive_load_seconds")
        assert histogram is not None
        for container in ("raw", "npz"):
            _, _, count = histogram.labels(format=container).snapshot()
            assert count == 1
