"""Surface tests: the documented public API imports and stays coherent."""

import importlib

import numpy as np
import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.tsindex",
            "repro.core.bulkload",
            "repro.indices",
            "repro.indices.isax",
            "repro.euclidean",
            "repro.euclidean.mass",
            "repro.extensions",
            "repro.extensions.profile",
            "repro.extensions.streaming",
            "repro.extensions.varlength",
            "repro.data",
            "repro.bench",
            "repro.bench.experiments",
            "repro.bench.record",
            "repro.engine",
            "repro.engine.sharding",
            "repro.engine.cache",
            "repro.engine.registry",
            "repro.engine.executor",
            "repro.query",
            "repro.query.spec",
            "repro.query.planner",
            "repro.query.merge",
            "repro.query.capabilities",
            "repro.query.registration",
            "repro.query.varlength",
            "repro.live",
            "repro.live.index",
            "repro.live.segments",
            "repro.live.compaction",
            "repro.live.wal",
            "repro.faults",
            "repro.faults.failpoints",
            "repro.faults.chaos",
            "repro.obs",
            "repro.obs.metrics",
            "repro.obs.trace",
            "repro.obs.export",
            "repro.obs.logsetup",
            "repro.persistence",
            "repro.cli",
        ],
    )
    def test_submodules_importable(self, module):
        assert importlib.import_module(module) is not None

    def test_subpackage_all_resolve(self):
        for module_name in ("repro.core", "repro.indices", "repro.data",
                            "repro.bench", "repro.extensions", "repro.engine",
                            "repro.query", "repro.obs", "repro.faults"):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert hasattr(module, name), f"{module_name}.{name}"

    def test_fault_exceptions_exported(self):
        # The fault-tolerance taxonomy is part of the public surface.
        assert issubclass(repro.StorageError, repro.ReproError)
        assert issubclass(repro.SerializationError, repro.StorageError)
        assert issubclass(repro.ShardTimeoutError, repro.ReproError)
        assert issubclass(repro.ShardTimeoutError, TimeoutError)
        assert issubclass(repro.SimulatedCrashError, BaseException)
        assert not issubclass(repro.SimulatedCrashError, Exception)


class TestDocstrings:
    @pytest.mark.parametrize(
        "obj_name",
        [
            "TSIndex", "KVIndex", "ISAXIndex", "SweeplineSearch",
            "TimeSeries", "WindowSource", "MBTS", "SearchResult",
            "twin_search", "create_method", "load_dataset",
        ],
    )
    def test_public_objects_documented(self, obj_name):
        obj = getattr(repro, obj_name)
        assert obj.__doc__ and len(obj.__doc__.strip()) > 20, obj_name

    def test_public_methods_documented(self):
        for cls in (repro.TSIndex, repro.KVIndex, repro.ISAXIndex,
                    repro.SweeplineSearch):
            for name in ("search", "from_source"):
                method = getattr(cls, name)
                assert method.__doc__, f"{cls.__name__}.{name}"


class TestDoctestsInDocstrings:
    def test_quickstart_docstring_example_runs(self):
        # The module docstring example, executed literally.
        series = np.cumsum(np.random.default_rng(0).normal(size=5000))
        index = repro.TSIndex.build(series, length=100, normalization="none")
        result = index.search(series[250:350], epsilon=0.4)
        assert 250 in result.positions
        result = repro.twin_search(series, series[250:350], epsilon=0.4)
        assert 250 in result.positions

    def test_engine_docstring_example_runs(self):
        # The engine quickstart from the module docstring.
        series = np.cumsum(np.random.default_rng(0).normal(size=5000))
        with repro.QueryEngine() as serving:
            serving.build("demo", series, length=100, shards=2,
                          normalization="none")
            result = serving.query("demo", series[250:350], epsilon=0.4)
        assert 250 in result.positions
