"""Tests for series file IO."""

import numpy as np
import pytest

from repro.data.loaders import load_series, save_series
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def values():
    return np.linspace(0.0, 5.0, 37)


class TestRoundTrips:
    @pytest.mark.parametrize("extension", ["npy", "csv", "txt"])
    def test_round_trip(self, tmp_path, values, extension):
        path = tmp_path / f"series.{extension}"
        save_series(values, path)
        loaded = load_series(path)
        assert np.allclose(np.asarray(loaded), values)

    def test_name_defaults_to_basename(self, tmp_path, values):
        path = tmp_path / "mydata.npy"
        save_series(values, path)
        assert load_series(path).name == "mydata.npy"

    def test_explicit_name(self, tmp_path, values):
        path = tmp_path / "x.npy"
        save_series(values, path)
        assert load_series(path, name="custom").name == "custom"


class TestColumns:
    def test_csv_column_selection(self, tmp_path):
        path = tmp_path / "table.csv"
        matrix = np.column_stack([np.arange(10.0), np.arange(10.0) * 2])
        np.savetxt(path, matrix, delimiter=",")
        assert np.allclose(np.asarray(load_series(path, column=1)), np.arange(10.0) * 2)

    def test_bad_column(self, tmp_path):
        path = tmp_path / "table.csv"
        np.savetxt(path, np.zeros((5, 2)), delimiter=",")
        with pytest.raises(InvalidParameterError, match="column"):
            load_series(path, column=5)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError, match="no such file"):
            load_series(tmp_path / "nope.npy")

    def test_3d_npy_rejected(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros((2, 2, 2)))
        with pytest.raises(InvalidParameterError):
            load_series(path)
