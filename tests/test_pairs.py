"""Tests for the twin pair discovery extension."""

import numpy as np
import pytest

from repro.core.distance import chebyshev_distance
from repro.exceptions import InvalidParameterError
from repro.extensions.pairs import (
    PairResult,
    discover_twin_pairs,
    self_twin_pairs,
    sliding_max,
)


class TestSlidingMax:
    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=200)
        for length in (1, 5, 13, 200):
            expected = np.array(
                [values[i : i + length].max() for i in range(values.size - length + 1)]
            )
            assert np.allclose(sliding_max(values, length), expected)

    def test_window_one_is_identity(self):
        values = np.array([3.0, 1.0, 2.0])
        assert np.allclose(sliding_max(values, 1), values)

    def test_too_long(self):
        with pytest.raises(InvalidParameterError):
            sliding_max(np.zeros(5), 6)


class TestDiscoverTwinPairs:
    def test_identical_series_all_positions(self):
        series = np.sin(np.linspace(0, 10, 100))
        pairs = discover_twin_pairs([series, series.copy()], 20, 0.0)
        assert len(pairs) == 81
        assert all(p.first == 0 and p.second == 1 for p in pairs)

    def test_shifted_series_no_pairs(self):
        series = np.zeros(50)
        shifted = series + 10.0
        assert discover_twin_pairs([series, shifted], 10, 1.0) == []

    def test_distance_reported(self):
        a = np.zeros(30)
        b = np.concatenate([np.full(15, 0.2), np.full(15, 0.9)])
        pairs = discover_twin_pairs([a, b], 10, 0.5)
        for pair in pairs:
            assert pair.distance <= 0.5
            window_a = a[pair.position : pair.position + 10]
            window_b = b[pair.position : pair.position + 10]
            assert np.isclose(
                pair.distance, chebyshev_distance(window_a, window_b)
            )

    def test_three_series_pair_indices(self):
        base = np.linspace(0, 1, 40)
        collection = [base, base + 0.05, base + 10.0]
        pairs = discover_twin_pairs(collection, 10, 0.1)
        pair_ids = {(p.first, p.second) for p in pairs}
        assert pair_ids == {(0, 1)}

    def test_requires_two_series(self):
        with pytest.raises(InvalidParameterError, match="two series"):
            discover_twin_pairs([np.zeros(20)], 5, 0.1)

    def test_requires_equal_lengths(self):
        with pytest.raises(InvalidParameterError, match="equal length"):
            discover_twin_pairs([np.zeros(20), np.zeros(21)], 5, 0.1)

    def test_length_exceeds_series(self):
        with pytest.raises(InvalidParameterError):
            discover_twin_pairs([np.zeros(5), np.zeros(5)], 6, 0.1)


class TestSelfTwinPairs:
    def test_finds_planted_motif(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=300) * 3.0
        motif = np.sin(np.linspace(0, 4 * np.pi, 40)) * 5.0
        series[20:60] = motif
        series[200:240] = motif + rng.normal(0, 0.01, size=40)
        pairs = self_twin_pairs(series, 40, 0.1, normalization="none")
        found = {(p.first, p.second) for p in pairs}
        assert (20, 200) in found

    def test_excludes_trivial_overlaps(self):
        series = np.sin(np.linspace(0, 20, 200))
        pairs = self_twin_pairs(series, 30, 0.05, normalization="none")
        for pair in pairs:
            assert pair.second >= pair.first + 30

    def test_limit(self):
        series = np.sin(np.linspace(0, 40, 400))
        pairs = self_twin_pairs(series, 20, 0.5, normalization="none", limit=7)
        assert len(pairs) == 7

    def test_reuses_supplied_index(self, source_global, tsindex_global):
        pairs = self_twin_pairs(
            None, source_global.length, 0.05, index=tsindex_global, limit=3
        )
        assert all(isinstance(p, PairResult) for p in pairs)

    def test_index_length_mismatch(self, tsindex_global):
        with pytest.raises(InvalidParameterError, match="length"):
            self_twin_pairs(None, 10, 0.1, index=tsindex_global)
