"""Tests for the CLI experiment driver."""

import pytest

from repro import cli


class TestParser:
    def test_all_commands_accepted(self):
        parser = cli.build_parser()
        for command in cli.COMMANDS:
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["fig4"])
        assert args.dataset == "both"
        assert args.queries == 100
        assert args.scale is None

    def test_scale_override(self):
        args = cli.build_parser().parse_args(["fig4", "--scale", "0.5"])
        contexts = cli._contexts(args)
        assert all(ctx.scale == 0.5 for ctx in contexts)

    def test_per_dataset_scales(self):
        args = cli.build_parser().parse_args(
            ["fig4", "--scale-insect", "0.3", "--scale-eeg", "0.02"]
        )
        contexts = cli._contexts(args)
        scales = {ctx.dataset: ctx.scale for ctx in contexts}
        assert scales == {"insect": 0.3, "eeg": 0.02}

    def test_single_dataset(self):
        args = cli.build_parser().parse_args(["fig4", "--dataset", "insect"])
        contexts = cli._contexts(args)
        assert [ctx.dataset for ctx in contexts] == ["insect"]


class TestExecution:
    def test_table1_output(self, capsys):
        assert cli.main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "insect" in output
        assert "1801999" in output

    def test_table2_output(self, capsys):
        assert cli.main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "segments" in output

    def test_fig4_small_run(self, capsys):
        code = cli.main(
            [
                "fig4",
                "--dataset",
                "insect",
                "--scale",
                "0.02",
                "--queries",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "tsindex (ms)" in output
        assert "shape checks" in output

    def test_fig8_small_run(self, capsys):
        code = cli.main(
            ["fig8", "--dataset", "insect", "--scale", "0.02", "--queries", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "memory" in output

    def test_intro_small_run(self, capsys):
        code = cli.main(
            ["intro", "--dataset", "insect", "--scale", "0.02", "--queries", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "euclidean results" in output
