"""Tests for the CLI experiment driver and engine subcommands."""

import numpy as np
import pytest

from repro import cli


class TestParser:
    def test_all_commands_accepted(self):
        parser = cli.build_parser()
        for command in cli.COMMANDS:
            args = parser.parse_args([command])
            assert args.command == command

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args(["fig99"])

    def test_defaults(self):
        args = cli.build_parser().parse_args(["fig4"])
        assert args.dataset == "both"
        assert args.queries == 100
        assert args.scale is None

    def test_scale_override(self):
        args = cli.build_parser().parse_args(["fig4", "--scale", "0.5"])
        contexts = cli._contexts(args)
        assert all(ctx.scale == 0.5 for ctx in contexts)

    def test_per_dataset_scales(self):
        args = cli.build_parser().parse_args(
            ["fig4", "--scale-insect", "0.3", "--scale-eeg", "0.02"]
        )
        contexts = cli._contexts(args)
        scales = {ctx.dataset: ctx.scale for ctx in contexts}
        assert scales == {"insect": 0.3, "eeg": 0.02}

    def test_single_dataset(self):
        args = cli.build_parser().parse_args(["fig4", "--dataset", "insect"])
        contexts = cli._contexts(args)
        assert [ctx.dataset for ctx in contexts] == ["insect"]


class TestExecution:
    def test_table1_output(self, capsys):
        assert cli.main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "insect" in output
        assert "1801999" in output

    def test_table2_output(self, capsys):
        assert cli.main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "segments" in output

    def test_fig4_small_run(self, capsys):
        code = cli.main(
            [
                "fig4",
                "--dataset",
                "insect",
                "--scale",
                "0.02",
                "--queries",
                "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "tsindex (ms)" in output
        assert "shape checks" in output

    def test_fig8_small_run(self, capsys):
        code = cli.main(
            ["fig8", "--dataset", "insect", "--scale", "0.02", "--queries", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "memory" in output

    def test_intro_small_run(self, capsys):
        code = cli.main(
            ["intro", "--dataset", "insect", "--scale", "0.02", "--queries", "2"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "euclidean results" in output


class TestEngineCLI:
    def test_engine_parser_subcommands(self):
        parser = cli.build_engine_parser()
        args = parser.parse_args(
            ["build", "--output", "x.npz", "--shards", "4"]
        )
        assert args.engine_command == "build"
        assert args.shards == 4
        args = parser.parse_args(
            ["query", "--index", "x.npz", "--position", "5", "--epsilon", "0.5"]
        )
        assert args.engine_command == "query"
        with pytest.raises(SystemExit):
            parser.parse_args(["frobnicate"])

    def test_engine_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            cli.build_engine_parser().parse_args([])

    @pytest.fixture(scope="class")
    def built_archive(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("engine") / "idx.npz"
        code = cli.main(
            [
                "engine", "build", "--output", str(path),
                "--dataset", "insect", "--scale", "0.02",
                "--length", "50", "--shards", "3",
            ]
        )
        assert code == 0
        return path

    def test_engine_build_output(self, built_archive, capsys):
        assert built_archive.exists()

    def test_engine_query_epsilon(self, built_archive, capsys):
        code = cli.main(
            [
                "engine", "query", "--index", str(built_archive),
                "--position", "250", "--epsilon", "0.5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "twins within epsilon" in output
        assert "250" in output
        assert "candidates=" in output

    def test_engine_query_knn(self, built_archive, capsys):
        code = cli.main(
            [
                "engine", "query", "--index", str(built_archive),
                "--position", "250", "--knn", "3",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "3 nearest windows" in output

    def test_engine_query_requires_exactly_one_mode(self, built_archive):
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "engine", "query", "--index", str(built_archive),
                    "--position", "250",
                ]
            )
        with pytest.raises(SystemExit):
            cli.main(
                [
                    "engine", "query", "--index", str(built_archive),
                    "--position", "250", "--epsilon", "0.5", "--knn", "3",
                ]
            )

    def test_engine_query_from_file_raw_domain(self, built_archive, tmp_path, capsys):
        """File queries are raw values even against a GLOBAL index."""
        from repro.persistence import load_index

        engine = load_index(built_archive)
        assert engine.source.normalization.value == "global"
        raw_window = engine.source.series.values[100:150]
        query_path = tmp_path / "query.csv"
        np.savetxt(query_path, np.asarray(raw_window))
        code = cli.main(
            [
                "engine", "query", "--index", str(built_archive),
                "--query-file", str(query_path), "--epsilon", "0.25",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "0 twins" not in output
        assert "100" in output

    def test_engine_query_variable_length(self, built_archive, capsys):
        """Any m <= l serves: --query-length truncates the query to a
        prefix and the pipeline dispatches it to the varlength kernels."""
        code = cli.main(
            [
                "engine", "query", "--index", str(built_archive),
                "--position", "250", "--epsilon", "0.0",
                "--query-length", "20",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "twins within epsilon" in output
        assert "250" in output

    def test_engine_query_length_bounds_checked(self, built_archive):
        with pytest.raises(SystemExit, match="query-length"):
            cli.main(
                [
                    "engine", "query", "--index", str(built_archive),
                    "--position", "250", "--epsilon", "0.5",
                    "--query-length", "0",
                ]
            )
        with pytest.raises(SystemExit, match="query-length"):
            cli.main(
                [
                    "engine", "query", "--index", str(built_archive),
                    "--position", "250", "--epsilon", "0.5",
                    "--query-length", "51",
                ]
            )

    def test_engine_stats(self, built_archive, capsys):
        code = cli.main(["engine", "stats", "--index", str(built_archive)])
        assert code == 0
        output = capsys.readouterr().out
        assert "ShardedTSIndex" in output
        assert "span" in output

    def test_engine_stats_rejects_monolithic_archive(self, tmp_path, capsys):
        from repro.core.tsindex import TSIndex
        from repro.persistence import save_index

        series = np.cumsum(np.random.default_rng(0).normal(size=500))
        save_index(
            TSIndex.build(series, 50, normalization="none"),
            tmp_path / "mono.npz",
        )
        with pytest.raises(SystemExit, match="not a sharded engine"):
            cli.main(["engine", "stats", "--index", str(tmp_path / "mono.npz")])
