"""Tests for the approximate (single-leaf) search mode."""

import numpy as np


class TestISAXApproximate:
    def test_subset_of_exact(self, isax_global, query_of):
        for position in (10, 400, 1500):
            query = query_of(position)
            exact = set(isax_global.search(query, 0.5).positions.tolist())
            approx = set(
                isax_global.search_approximate(query, 0.5).positions.tolist()
            )
            assert approx <= exact

    def test_indexed_query_finds_itself(self, isax_global, query_of):
        # Identical values quantize to the identical SAX word.
        for position in (0, 123, 2000):
            query = query_of(position)
            result = isax_global.search_approximate(query, 0.0)
            assert position in result.positions

    def test_cheaper_than_exact(self, isax_global, query_of):
        query = query_of(321)
        exact = isax_global.search(query, 0.8)
        approx = isax_global.search_approximate(query, 0.8)
        assert approx.stats.candidates <= exact.stats.candidates
        assert approx.stats.leaves_accessed == 1

    def test_unseen_word_returns_empty(self, isax_global):
        from conftest import LENGTH

        # A wildly out-of-range query maps to a root word with no child.
        query = np.full(LENGTH, 1e6)
        result = isax_global.search_approximate(query, 0.1)
        assert len(result) == 0

    def test_distances_valid(self, isax_global, query_of):
        query = query_of(77)
        result = isax_global.search_approximate(query, 0.6)
        assert np.all(result.distances <= 0.6)


class TestTSIndexApproximate:
    def test_subset_of_exact(self, tsindex_global, query_of):
        for position in (10, 400, 1500):
            query = query_of(position)
            exact = set(tsindex_global.search(query, 0.5).positions.tolist())
            approx = set(
                tsindex_global.search_approximate(query, 0.5).positions.tolist()
            )
            assert approx <= exact

    def test_leaf_budget_respected(self, tsindex_global, query_of):
        for budget in (1, 3, 8):
            result = tsindex_global.search_approximate(
                query_of(55), 0.5, max_leaves=budget
            )
            assert result.stats.leaves_accessed <= budget

    def test_usually_finds_self_within_budget(self, tsindex_global, query_of):
        # Best-first by the Eq. 2 bound reaches the query's own leaf in
        # the first handful of pops for indexed queries.
        hits = 0
        for position in range(0, 1000, 50):
            result = tsindex_global.search_approximate(query_of(position), 0.0)
            hits += position in result.positions
        assert hits >= 18  # of 20

    def test_budget_monotone(self, tsindex_global, query_of):
        query = query_of(444)
        small = set(
            tsindex_global.search_approximate(
                query, 0.5, max_leaves=1
            ).positions.tolist()
        )
        large = set(
            tsindex_global.search_approximate(
                query, 0.5, max_leaves=16
            ).positions.tolist()
        )
        assert small <= large

    def test_respects_epsilon(self, tsindex_global, query_of):
        result = tsindex_global.search_approximate(query_of(9), 0.25)
        assert np.all(result.distances <= 0.25)
