"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.charts import render_chart, render_figure
from repro.bench.experiments import FigureData
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def simple_series():
    return [0.5, 1.0, 1.5], {"tsindex": [1.0, 2.0, 4.0], "sweepline": [30.0, 31.0, 30.5]}


class TestRenderChart:
    def test_contains_markers_and_legend(self, simple_series):
        x, series = simple_series
        chart = render_chart(x, series)
        assert "o=tsindex" in chart
        assert "x=sweepline" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_x_labels_present(self, simple_series):
        x, series = simple_series
        chart = render_chart(x, series)
        assert "0.5" in chart
        assert "1.5" in chart

    def test_log_axis_note(self, simple_series):
        x, series = simple_series
        assert "(log scale)" in render_chart(x, series)
        assert "(log scale)" not in render_chart(x, series, log_y=False)

    def test_higher_series_drawn_above(self, simple_series):
        x, series = simple_series
        lines = render_chart(x, series, height=12).splitlines()
        first_x = next(i for i, line in enumerate(lines) if "x" in line.split("|")[-1])
        first_o = next(i for i, line in enumerate(lines) if "o" in line.split("|")[-1])
        assert first_x < first_o  # sweepline (slower) plots higher

    def test_height_respected(self, simple_series):
        x, series = simple_series
        lines = render_chart(x, series, height=10).splitlines()
        plot_rows = [line for line in lines if "|" in line]
        assert len(plot_rows) == 10

    def test_constant_series_ok(self):
        chart = render_chart([1, 2], {"flat": [5.0, 5.0]})
        assert "flat" in chart

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            render_chart([1, 2], {})

    def test_rejects_misaligned(self):
        with pytest.raises(InvalidParameterError):
            render_chart([1, 2], {"a": [1.0]})

    def test_rejects_nonpositive_on_log(self):
        with pytest.raises(InvalidParameterError, match="non-positive"):
            render_chart([1, 2], {"a": [0.0, 1.0]})
        render_chart([1, 2], {"a": [0.0, 1.0]}, log_y=False)  # fine linear

    def test_rejects_tiny_height(self, simple_series):
        x, series = simple_series
        with pytest.raises(InvalidParameterError):
            render_chart(x, series, height=2)


class TestRenderFigure:
    def test_from_figure_data(self):
        data = FigureData(
            figure="fig4",
            dataset="insect",
            sweep_name="epsilon",
            sweep_values=(0.5, 0.75, 1.0),
            series_ms={"tsindex": [10.0, 20.0, 30.0], "isax": [40.0, 50.0, 60.0]},
            results=[],
        )
        chart = render_figure(data)
        assert "epsilon" in chart
        assert "o=tsindex" in chart
