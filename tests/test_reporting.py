"""Tests for table rendering."""

import pytest

from repro.bench.reporting import format_series_table, format_table, to_markdown
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def rows():
    return [
        {"method": "tsindex", "ms": 1.5},
        {"method": "sweepline", "ms": 30.25},
    ]


class TestFormatTable:
    def test_contains_all_cells(self, rows):
        text = format_table(rows)
        assert "tsindex" in text
        assert "30.250" in text

    def test_header_and_rule(self, rows):
        lines = format_table(rows).splitlines()
        assert "method" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 2 + len(rows)

    def test_column_selection(self, rows):
        text = format_table(rows, columns=["ms"])
        assert "tsindex" not in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_missing_cell_blank(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text


class TestSeriesTable:
    def test_figure_shape(self):
        text = format_series_table(
            "epsilon", (0.1, 0.2), {"tsindex": [1.0, 2.0], "isax": [3.0, 4.0]}
        )
        lines = text.splitlines()
        assert "epsilon" in lines[0]
        assert "tsindex (ms)" in lines[0]
        assert len(lines) == 4

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            format_series_table("epsilon", (0.1, 0.2), {"ts": [1.0]})


class TestMarkdown:
    def test_pipe_table(self, rows):
        text = to_markdown(rows)
        lines = text.splitlines()
        assert lines[0].startswith("| method")
        assert lines[1].startswith("| ---")
        assert len(lines) == 4

    def test_empty(self):
        assert to_markdown([]) == "(no rows)"
