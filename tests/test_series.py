"""Tests for the TimeSeries container."""

import numpy as np
import pytest

from repro.core.series import TimeSeries
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def series():
    return TimeSeries([1.0, 2.0, 3.0, 4.0, 5.0], name="demo")


class TestConstruction:
    def test_length(self, series):
        assert len(series) == 5

    def test_name(self, series):
        assert series.name == "demo"

    def test_values_read_only(self, series):
        with pytest.raises(ValueError):
            series.values[0] = 99.0

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            TimeSeries([])

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            TimeSeries([1.0, float("nan")])

    def test_repr_contains_name_and_length(self, series):
        assert "demo" in repr(series)
        assert "5" in repr(series)

    def test_asarray(self, series):
        assert np.asarray(series).tolist() == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_asarray_dtype(self, series):
        assert np.asarray(series, dtype=np.float32).dtype == np.float32


class TestEquality:
    def test_equal_values(self):
        assert TimeSeries([1.0, 2.0]) == TimeSeries([1.0, 2.0])

    def test_unequal_values(self):
        assert TimeSeries([1.0, 2.0]) != TimeSeries([1.0, 3.0])

    def test_other_type(self, series):
        assert series.__eq__(42) is NotImplemented

    def test_hashable(self, series):
        assert isinstance(hash(series), int)


class TestSubsequence:
    def test_basic(self, series):
        assert series.subsequence(1, 3).tolist() == [2.0, 3.0, 4.0]

    def test_full(self, series):
        assert series.subsequence(0, 5).tolist() == list(series)

    def test_out_of_range(self, series):
        with pytest.raises(InvalidParameterError):
            series.subsequence(3, 3)

    def test_negative_position(self, series):
        with pytest.raises(InvalidParameterError):
            series.subsequence(-1, 2)

    def test_window_count(self, series):
        assert series.window_count(2) == 4
        assert series.window_count(5) == 1

    def test_window_count_too_long(self, series):
        with pytest.raises(InvalidParameterError):
            series.window_count(6)


class TestDerived:
    def test_znormalized(self, series):
        z = series.znormalized()
        assert abs(z.mean()) < 1e-12
        assert abs(z.std() - 1.0) < 1e-12

    def test_znormalized_keeps_base_name(self, series):
        assert "demo" in series.znormalized().name

    def test_slice(self, series):
        part = series.slice(1, 4)
        assert list(part) == [2.0, 3.0, 4.0]

    def test_slice_invalid(self, series):
        with pytest.raises(InvalidParameterError):
            series.slice(3, 3)

    def test_describe_keys(self, series):
        info = series.describe()
        assert info["length"] == 5
        assert info["min"] == 1.0
        assert info["max"] == 5.0
        assert np.isclose(info["mean"], 3.0)
