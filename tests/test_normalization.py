"""Tests for normalization regimes and rolling statistics."""

import numpy as np
import pytest

from repro.core.normalization import (
    Normalization,
    apply_global,
    prepare_series,
    rolling_mean,
    rolling_std,
    znormalize,
)
from repro.exceptions import InvalidParameterError


class TestNormalizationEnum:
    def test_coerce_member(self):
        assert Normalization.coerce(Normalization.NONE) is Normalization.NONE

    @pytest.mark.parametrize("name", ["none", "global", "per_window"])
    def test_coerce_string(self, name):
        assert Normalization.coerce(name).value == name

    def test_coerce_unknown(self):
        with pytest.raises(InvalidParameterError, match="unknown normalization"):
            Normalization.coerce("zscore")

    def test_is_str_enum(self):
        assert Normalization.GLOBAL == "global"


class TestZnormalize:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        z = znormalize(rng.normal(3.0, 2.5, size=500))
        assert abs(z.mean()) < 1e-12
        assert abs(z.std() - 1.0) < 1e-12

    def test_constant_maps_to_zeros(self):
        assert np.array_equal(znormalize([5.0] * 10), np.zeros(10))

    def test_idempotent(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=100)
        once = znormalize(values)
        assert np.allclose(znormalize(once), once)

    def test_affine_invariance(self):
        rng = np.random.default_rng(2)
        values = rng.normal(size=200)
        assert np.allclose(znormalize(values), znormalize(3.0 * values + 7.0))


class TestRollingStats:
    def test_rolling_mean_matches_naive(self):
        rng = np.random.default_rng(3)
        values = rng.normal(size=120)
        length = 7
        expected = np.array(
            [values[i : i + length].mean() for i in range(values.size - length + 1)]
        )
        assert np.allclose(rolling_mean(values, length), expected)

    def test_rolling_std_matches_naive(self):
        rng = np.random.default_rng(4)
        values = rng.normal(size=120)
        length = 9
        expected = np.array(
            [values[i : i + length].std() for i in range(values.size - length + 1)]
        )
        assert np.allclose(rolling_std(values, length), expected)

    def test_rolling_mean_window_one(self):
        values = np.array([3.0, 1.0, 4.0])
        assert np.allclose(rolling_mean(values, 1), values)

    def test_rolling_std_constant_window_floored(self):
        values = np.concatenate([np.full(20, 2.0), np.random.default_rng(5).normal(size=20)])
        stds = rolling_std(values, 10)
        assert stds[0] == 1.0  # constant window uses the floor convention

    def test_rolling_mean_full_window(self):
        values = np.arange(10.0)
        result = rolling_mean(values, 10)
        assert result.shape == (1,)
        assert np.isclose(result[0], 4.5)

    def test_length_too_long_raises(self):
        with pytest.raises(InvalidParameterError):
            rolling_mean(np.arange(5.0), 6)

    def test_no_catastrophic_cancellation(self):
        # Large offsets stress the sum-of-squares identity.
        rng = np.random.default_rng(6)
        values = rng.normal(size=200) + 1e6
        length = 11
        expected = np.array(
            [values[i : i + length].std() for i in range(values.size - length + 1)]
        )
        assert np.allclose(rolling_std(values, length), expected, atol=1e-4)


class TestPrepareSeries:
    def test_none_keeps_raw(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.array_equal(prepare_series(values, "none"), values)

    def test_per_window_keeps_raw(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.array_equal(prepare_series(values, "per_window"), values)

    def test_global_znormalizes(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.allclose(prepare_series(values, "global"), znormalize(values))

    def test_apply_global_alias(self):
        values = np.array([1.0, 5.0, 3.0])
        assert np.allclose(apply_global(values), znormalize(values))
