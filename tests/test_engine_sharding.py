"""Shard-boundary correctness: sharded == monolithic, exactly.

The load-bearing property of :mod:`repro.engine`: a ShardedTSIndex must
return *byte-identical* positions and distances to a monolithic TSIndex
for every query, shard count, epsilon and normalization regime — shard
window sources are zero-copy views of the monolithic source, so there
is no float tolerance anywhere in these assertions.
"""

import concurrent.futures

import numpy as np
import pytest

from repro.core.normalization import Normalization
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.engine import ShardedTSIndex, default_shard_count, shard_spans
from repro.exceptions import InvalidParameterError

#: Small capacities force deep trees and many shard-internal splits.
PARAMS = TSIndexParams(min_children=4, max_children=10)

REGIMES = [Normalization.NONE, Normalization.GLOBAL, Normalization.PER_WINDOW]


def _series(seed: int, n: int = 1500) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(size=n))
    return base + 0.3 * synthetic.noisy_sines(n, seed=seed, noise_std=0.1)


class TestShardSpans:
    def test_partition_covers_every_position(self):
        for count in (1, 7, 100, 1001):
            for shards in {1, min(2, count), min(3, count), min(7, count)}:
                spans = shard_spans(count, shards)
                assert spans[0][0] == 0
                assert spans[-1][1] == count
                for (_, stop), (start, _) in zip(spans, spans[1:]):
                    assert stop == start
                sizes = [stop - start for start, stop in spans]
                assert max(sizes) - min(sizes) <= 1

    def test_more_shards_than_windows_rejected(self):
        with pytest.raises(InvalidParameterError):
            shard_spans(3, 4)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(InvalidParameterError):
            shard_spans(10, 0)

    def test_default_shard_count_bounds(self):
        assert default_shard_count(1) == 1
        assert default_shard_count(10**7) >= 1


class TestWindowSourceShard:
    @pytest.mark.parametrize("regime", REGIMES, ids=[r.value for r in REGIMES])
    def test_shard_windows_bitwise_identical(self, regime):
        source = WindowSource(_series(3), 40, regime)
        for start, stop in shard_spans(source.count, 4):
            shard = source.shard(start, stop)
            assert shard.count == stop - start
            assert shard.length == source.length
            assert shard.normalization is regime
            block = shard.windows(np.arange(shard.count))
            expected = source.windows(np.arange(start, stop))
            assert np.array_equal(block, expected)  # bitwise, no tolerance

    def test_shard_bounds_validated(self):
        source = WindowSource(_series(3), 40, "none")
        for bad in [(-1, 5), (5, 5), (0, source.count + 1), (7, 3)]:
            with pytest.raises(InvalidParameterError):
                source.shard(*bad)

    def test_shard_is_zero_copy(self):
        source = WindowSource(_series(3), 40, "none")
        shard = source.shard(100, 300)
        assert np.shares_memory(shard.values, source.values)


class TestSearchEquivalence:
    """The acceptance property: sharded search == monolithic search."""

    @pytest.mark.parametrize("regime", REGIMES, ids=[r.value for r in REGIMES])
    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("seed", [11, 29])
    def test_search_byte_identical(self, regime, shards, seed):
        series = _series(seed)
        length = 40
        mono = TSIndex.build(series, length, normalization=regime, params=PARAMS)
        sharded = ShardedTSIndex.build(
            series, length, normalization=regime, shards=shards, params=PARAMS
        )
        rng = np.random.default_rng(seed)
        positions = rng.integers(0, mono.size, size=6)
        # Deliberately include windows straddling every shard boundary.
        boundary = [stop for _, stop in sharded.spans[:-1]]
        for position in [*positions.tolist(), *boundary]:
            position = min(position, mono.size - 1)
            query = mono.source.window(position)
            for epsilon in (0.0, 0.05, 0.4, 1.5):
                expected = mono.search(query, epsilon)
                actual = sharded.search(query, epsilon)
                assert np.array_equal(expected.positions, actual.positions)
                assert np.array_equal(expected.distances, actual.distances)
                assert actual.stats.matches == expected.stats.matches

    @pytest.mark.parametrize("verification", ["bulk", "blocked", "per_candidate"])
    def test_search_equivalent_under_every_verification_mode(self, verification):
        series = _series(5)
        mono = TSIndex.build(series, 40, normalization="global", params=PARAMS)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="global", shards=3, params=PARAMS
        )
        query = mono.source.window(777)
        expected = mono.search(query, 0.4, verification=verification)
        actual = sharded.search(query, 0.4, verification=verification)
        assert np.array_equal(expected.positions, actual.positions)
        assert np.array_equal(expected.distances, actual.distances)

    def test_parallel_execution_equals_serial(self):
        series = _series(7)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="global", shards=4, params=PARAMS
        )
        query = sharded.source.window(321)
        serial = sharded.search(query, 0.5)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            parallel = sharded.search(query, 0.5, executor=pool)
        assert np.array_equal(serial.positions, parallel.positions)
        assert np.array_equal(serial.distances, parallel.distances)
        assert serial.stats.as_dict() == parallel.stats.as_dict()

    def test_every_window_findable_at_epsilon_zero(self):
        """No window is lost at a shard boundary (overlap length-1)."""
        series = _series(13, n=400)
        sharded = ShardedTSIndex.build(
            series, 25, normalization="none", shards=5, params=PARAMS
        )
        for position in range(0, sharded.size, 37):
            query = sharded.source.window(position)
            result = sharded.search(query, 0.0)
            assert position in result.positions

    def test_raw_query_per_window_prepared_once(self):
        """A raw (unnormalized) query is normalized identically."""
        series = _series(17)
        mono = TSIndex.build(series, 40, normalization="per_window", params=PARAMS)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="per_window", shards=3, params=PARAMS
        )
        raw_query = np.array(series[200:240]) * 3.0 + 11.0
        expected = mono.search(raw_query, 0.3)
        actual = sharded.search(raw_query, 0.3)
        assert np.array_equal(expected.positions, actual.positions)
        assert np.array_equal(expected.distances, actual.distances)


class TestKnnEquivalence:
    @pytest.mark.parametrize("shards", [1, 3, 6])
    def test_knn_matches_monolithic(self, shards):
        series = _series(23)
        mono = TSIndex.build(series, 40, normalization="global", params=PARAMS)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="global", shards=shards, params=PARAMS
        )
        query = mono.source.window(500)
        for k in (1, 5, 20):
            expected = mono.knn(query, k)
            actual = sharded.knn(query, k)
            assert np.array_equal(expected.distances, actual.distances)
            assert np.array_equal(expected.positions, actual.positions)

    def test_knn_ties_resolve_identically(self):
        """Exact repeats force distance ties across shard boundaries;
        both sides must pick the same (distance, position) ranking."""
        chunk = np.sin(np.linspace(0.0, 6.0, 100))
        series = np.tile(chunk, 10)  # identical windows every 100 positions
        mono = TSIndex.build(series, 50, normalization="none", params=PARAMS)
        sharded = ShardedTSIndex.build(
            series, 50, normalization="none", shards=4, params=PARAMS
        )
        query = mono.source.window(100)
        for k in (1, 3, 7):
            expected = mono.knn(query, k)
            actual = sharded.knn(query, k)
            assert np.array_equal(expected.positions, actual.positions)
            assert np.array_equal(expected.distances, actual.distances)

    def test_knn_exclusion_zone_translated(self):
        series = _series(31)
        mono = TSIndex.build(series, 40, normalization="global", params=PARAMS)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="global", shards=4, params=PARAMS
        )
        query = mono.source.window(700)
        exclude = (680, 721)  # straddles shard frames
        expected = mono.knn(query, 10, exclude=exclude)
        actual = sharded.knn(query, 10, exclude=exclude)
        assert np.array_equal(expected.distances, actual.distances)
        assert not np.any(
            (actual.positions >= exclude[0]) & (actual.positions < exclude[1])
        )

    def test_k_larger_than_size(self):
        series = _series(37, n=300)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="none", shards=3, params=PARAMS
        )
        result = sharded.knn(sharded.source.window(0), sharded.size + 10)
        assert len(result) == sharded.size


class TestBatchEquivalence:
    def test_search_batch_matches_per_query_search(self):
        series = _series(41)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="global", shards=3, params=PARAMS
        )
        queries = [sharded.source.window(p) for p in (5, 250, 900, 1200)]
        batch = sharded.search_batch(queries, 0.4)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch):
            single = sharded.search(query, 0.4)
            assert np.array_equal(single.positions, result.positions)
            assert np.array_equal(single.distances, result.distances)
        assert batch.stats.matches == batch.total_matches

    def test_search_batch_parallel_preserves_order(self):
        series = _series(43)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="global", shards=2, params=PARAMS
        )
        queries = [sharded.source.window(p) for p in range(0, 1000, 97)]
        serial = sharded.search_batch(queries, 0.3)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            parallel = sharded.search_batch(queries, 0.3, executor=pool)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.positions, b.positions)


class TestMetadata:
    def test_build_stats_aggregation(self):
        series = _series(47)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="none", shards=4, params=PARAMS
        )
        build = sharded.build_stats
        assert build.windows == sharded.size
        assert build.nodes == sum(t.node_count for t in sharded.shards)
        assert build.seconds == max(t.build_stats.seconds for t in sharded.shards)

    def test_spans_partition_positions(self):
        series = _series(47)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="none", shards=5, params=PARAMS
        )
        spans = sharded.spans
        assert spans[0][0] == 0 and spans[-1][1] == sharded.size
        assert len(sharded.shard_stats()) == 5

    def test_single_shard_is_monolithic(self):
        series = _series(53, n=500)
        sharded = ShardedTSIndex.build(
            series, 40, normalization="none", shards=1, params=PARAMS
        )
        assert sharded.shard_count == 1
        assert sharded.shards[0].size == sharded.size

    def test_factory_builds_sharded_by_name(self):
        from repro import create_method

        series = _series(59, n=600)
        engine = create_method(
            "sharded", series, 40, normalization="none", shards=2, params=PARAMS
        )
        assert isinstance(engine, ShardedTSIndex)
        assert engine.shard_count == 2
        assert 123 in engine.search(series[123:163], 0.0).positions
