"""Engine integration for live planes: registry, cache staleness,
serving, CLI.

The load-bearing regression here is cache staleness: a result cached
before an append must never be served after it. The engine keys cache
entries on ``(name, generation)`` where a live plane's generation
incorporates its mutation counter, so invalidation is scoped to the
appended index — other indexes' entries stay warm.
"""

import numpy as np
import pytest

from repro.core.tsindex import TSIndexParams
from repro.data import synthetic
from repro.engine import IndexRegistry, QueryEngine
from repro.exceptions import InvalidParameterError
from repro.live import LiveTwinIndex

PARAMS = TSIndexParams(min_children=4, max_children=10)


def make_live(seed=0, n=400, length=32, **overrides):
    options = dict(
        params=PARAMS,
        seal_threshold=64,
        max_segments=2,
        background_compaction=False,
    )
    options.update(overrides)
    return LiveTwinIndex(
        synthetic.random_walk(n, seed=seed), length, **options
    )


class TestRegistry:
    def test_add_live_and_get(self):
        registry = IndexRegistry()
        live = make_live()
        registry.add_live("stream", live)
        assert registry.get("stream") is live
        assert "stream" in registry
        with pytest.raises(InvalidParameterError, match="already exists"):
            registry.add_live("stream", make_live(seed=1))

    def test_add_live_type_checked(self):
        registry = IndexRegistry()
        with pytest.raises(InvalidParameterError, match="LiveTwinIndex"):
            registry.add_live("stream", object())

    def test_add_accepts_live(self):
        # The generalized registry takes any SubsequenceIndex; a live
        # plane registered through plain add() still gets its mutation
        # counter folded into the cache generation.
        registry = IndexRegistry()
        live = make_live()
        registry.add("stream", live)
        assert registry.get("stream") is live
        _, before = registry.get_with_generation("stream")
        live.append(np.ones(4))
        _, after = registry.get_with_generation("stream")
        assert before != after

    def test_generation_tracks_mutations(self):
        registry = IndexRegistry()
        live = make_live()
        registry.add_live("stream", live)
        _, first = registry.get_with_generation("stream")
        _, again = registry.get_with_generation("stream")
        assert first == again
        live.append([1.0, 2.0])
        _, moved = registry.get_with_generation("stream")
        assert moved != first

    def test_stats_live_row(self):
        registry = IndexRegistry()
        registry.add_live("stream", make_live())
        row = registry.stats("stream")
        assert row["kind"] == "live"
        assert row["name"] == "stream"
        assert row["segments"] >= 1
        assert row["windows"] == registry.get("stream").window_count
        assert row["built_at"] > 0

    def test_stats_sharded_row_has_kind(self):
        registry = IndexRegistry()
        registry.build(
            "static",
            synthetic.random_walk(2000, seed=3),
            50,
            shards=2,
            normalization="none",
        )
        assert registry.stats("static")["kind"] == "sharded"

    def test_save_live_rejected(self, tmp_path):
        registry = IndexRegistry()
        registry.add_live("stream", make_live())
        with pytest.raises(InvalidParameterError, match="write-ahead"):
            registry.save("stream", tmp_path / "x.npz")

    def test_evict_live(self):
        registry = IndexRegistry()
        live = make_live()
        registry.add_live("stream", live)
        assert registry.evict("stream") is live
        assert "stream" not in registry


class TestEngineServing:
    def test_append_never_serves_stale_cached_result(self):
        # The satellite regression: a cached pre-append result must be
        # unreachable after the append.
        live = make_live(seed=4)
        with QueryEngine(cache_capacity=32) as engine:
            engine.add_live("stream", live)
            query = np.array(live.values[10:42])
            first = engine.query("stream", query, epsilon=0.1)
            assert engine.query("stream", query, epsilon=0.1) is first
            engine.append("stream", query)  # plant an exact twin
            fresh = engine.query("stream", query, epsilon=0.1)
            assert fresh is not first
            assert len(fresh) == len(first) + 1
            # and the fresh result is itself cached under the new key
            assert engine.query("stream", query, epsilon=0.1) is fresh

    def test_append_does_not_invalidate_other_indexes(self):
        with QueryEngine(cache_capacity=32) as engine:
            series = synthetic.random_walk(2000, seed=5)
            engine.build(
                "static", series, 50, shards=2, normalization="none"
            )
            engine.add_live("stream", make_live(seed=6))
            static_query = np.array(series[100:150])
            cached = engine.query("static", static_query, epsilon=0.2)
            engine.append("stream", [1.0, 2.0, 3.0])
            assert engine.query("static", static_query, epsilon=0.2) is cached

    def test_append_on_non_appendable_rejected(self):
        with QueryEngine() as engine:
            engine.build(
                "static",
                synthetic.random_walk(2000, seed=7),
                50,
                shards=2,
                normalization="none",
            )
            with pytest.raises(InvalidParameterError, match="not appendable"):
                engine.append("static", [1.0])

    def test_knn_and_batch_through_engine(self):
        live = make_live(seed=8)
        with QueryEngine() as engine:
            engine.add_live("stream", live)
            query = np.array(live.values[60:92])
            ranked = engine.knn("stream", query, 4)
            assert ranked.distances[0] == 0.0
            batch = engine.batch("stream", [query, query], epsilon=0.3)
            assert len(batch) == 2
            assert np.array_equal(
                batch[0].positions, batch[1].positions
            )

    def test_live_rows_in_engine_stats(self):
        with QueryEngine() as engine:
            engine.add_live("stream", make_live(seed=9))
            engine.query(
                "stream", np.zeros(32), epsilon=0.5, use_cache=False
            )
            stats = engine.stats()
            rows = {row["name"]: row for row in stats.indexes}
            assert rows["stream"]["kind"] == "live"
            assert stats.queries == 1

    def test_add_live_overwrite_clears_cache(self):
        with QueryEngine() as engine:
            live = make_live(seed=10)
            engine.add_live("stream", live)
            query = np.array(live.values[10:42])
            engine.query("stream", query, epsilon=0.1)
            engine.add_live("stream", make_live(seed=11), overwrite=True)
            assert len(engine.cache) == 0

    def test_concurrent_ingest_and_queries(self):
        # Smoke the thread-safety contract: appends from one thread,
        # queries from others; nothing crashes and every answer is
        # internally consistent (positions sorted, distances <= eps).
        import threading

        live = make_live(seed=12, background_compaction=True)
        stop = threading.Event()
        errors = []

        def feeder():
            rng = np.random.default_rng(13)
            while not stop.is_set():
                live.append(rng.normal(size=5))

        def prober():
            rng = np.random.default_rng(14)
            try:
                for _ in range(60):
                    query = rng.normal(size=32)
                    result = live.search(query, 1.0)
                    assert np.all(np.diff(result.positions) > 0)
                    assert np.all(result.distances <= 1.0)
                    live.exists(query, 0.5)
                    live.knn(query, 3)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        feed = threading.Thread(target=feeder)
        probes = [threading.Thread(target=prober) for _ in range(2)]
        feed.start()
        for thread in probes:
            thread.start()
        for thread in probes:
            thread.join()
        stop.set()
        feed.join()
        live.close()
        assert not errors


class TestCLI:
    def test_live_cli_lifecycle(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "plane")
        assert main(
            [
                "live", "init", "--path", path, "--length", "16",
                "--seal-threshold", "32",
            ]
        ) == 0
        assert main(
            ["live", "append", "--path", path, "--values",
             ",".join(str(float(v)) for v in range(40))]
        ) == 0
        assert main(
            ["live", "append", "--path", path, "--values",
             ",".join(str(float(v)) for v in range(40))]
        ) == 0
        assert main(
            ["live", "query", "--path", path, "--position", "3",
             "--epsilon", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "twins within epsilon" in out
        assert main(["live", "query", "--path", path, "--position", "3",
                     "--knn", "2"]) == 0
        assert main(
            ["live", "query", "--path", path, "--position", "3",
             "--epsilon", "0.0", "--query-length", "6"]
        ) == 0
        out = capsys.readouterr().out
        assert "twins within epsilon" in out
        assert main(["live", "stats", "--path", path]) == 0
        out = capsys.readouterr().out
        assert "LiveTwinIndex" in out

    def test_live_cli_must_be_first_argument(self, monkeypatch):
        import sys

        from repro.cli import main

        monkeypatch.setattr(sys, "argv", ["repro-twin", "live"])
        with pytest.raises(SystemExit, match="first argument"):
            # argv[1] is "live" but main() receives a list where it is
            # not first — the parser's guidance must fire.
            main(["--dataset", "insect", "live"])

    def test_live_cli_query_validation(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "plane")
        main(["live", "init", "--path", path, "--length", "8"])
        main(["live", "append", "--path", path, "--values",
              ",".join(["1.0"] * 20)])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["live", "query", "--path", path, "--position", "0"])
