"""Durability and crash-recovery tests for the live ingestion plane.

The contract under test: a reading is durable once its WAL record is
fully on disk (or once a sealed segment's archive holds its values);
``recover()`` replays exactly to the last durable reading, answers
byte-identically to a from-scratch index over the recovered series, and
fails **loudly** on corrupted manifests or segment archives instead of
serving silently wrong answers.
"""

import json
import os

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.exceptions import (
    InvalidParameterError,
    ReproError,
    SerializationError,
)
from repro.live import LiveTwinIndex, WriteAheadLog
from repro.live.wal import (
    MANIFEST_NAME,
    load_manifest,
    manifest_path,
    save_manifest,
)

PARAMS = TSIndexParams(min_children=2, max_children=4)
SMALL = dict(
    params=PARAMS,
    seal_threshold=12,
    max_segments=2,
    background_compaction=False,
)


def make_durable(path, *, seed=0, normalization="none", appends=12):
    rng = np.random.default_rng(seed)
    live = LiveTwinIndex.create(
        path,
        rng.normal(size=60),
        length=16,
        normalization=normalization,
        **SMALL,
    )
    for _ in range(appends):
        live.append(rng.normal(size=int(rng.integers(1, 11))))
    return live, rng


def assert_matches_reference(live):
    ref = TSIndex.build(
        np.array(live.values),
        length=live.length,
        normalization=live.normalization,
        params=live.params,
    )
    rng = np.random.default_rng(99)
    for _ in range(4):
        position = int(rng.integers(ref.source.count))
        query = np.array(ref.source.window_block(position, position + 1)[0])
        for epsilon in (0.0, 0.8):
            actual = live.search(query, epsilon)
            expected = ref.search(query, epsilon)
            assert np.array_equal(actual.positions, expected.positions)
            assert np.array_equal(actual.distances, expected.distances)
        knn_actual, knn_expected = live.knn(query, 5), ref.knn(query, 5)
        assert np.array_equal(knn_actual.positions, knn_expected.positions)
        assert np.array_equal(knn_actual.distances, knn_expected.distances)


class TestWriteAheadLog:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, start=7)
        wal.append([1.0, 2.0])
        wal.append([3.0])
        wal.close()
        start, values, clean = WriteAheadLog.replay(path)
        assert (start, clean) == (7, True)
        assert np.array_equal(values, [1.0, 2.0, 3.0])

    def test_rewrite_reanchors(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, start=0)
        wal.append(np.arange(10.0))
        wal.rewrite(start=6, values=np.arange(6.0, 10.0))
        wal.append([99.0])
        wal.close()
        start, values, clean = WriteAheadLog.replay(path)
        assert start == 6 and clean
        assert np.array_equal(values, [6.0, 7.0, 8.0, 9.0, 99.0])

    def test_truncated_tail_drops_torn_record(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, start=0)
        wal.append(np.arange(8.0))
        wal.append(np.arange(5.0))
        wal.close()
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        start, values, clean = WriteAheadLog.replay(path)
        assert not clean
        assert np.array_equal(values, np.arange(8.0))

    def test_corrupted_payload_stops_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog.create(path, start=0)
        wal.append(np.arange(8.0))
        wal.append(np.arange(4.0))
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 8)  # inside the last record's payload
            handle.write(b"\xff" * 4)
        start, values, clean = WriteAheadLog.replay(path)
        assert not clean
        assert np.array_equal(values, np.arange(8.0))

    def test_corrupted_header_fails_loudly(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL....")
        with pytest.raises(SerializationError, match="header"):
            WriteAheadLog.replay(path)

    def test_missing_file_fails_loudly(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            WriteAheadLog.replay(tmp_path / "absent.log")

    def test_append_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog.create(tmp_path / "wal.log")
        wal.close()
        with pytest.raises(SerializationError, match="closed"):
            wal.append([1.0])


class TestManifest:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(SerializationError, match="cannot read"):
            load_manifest(tmp_path)

    def test_invalid_json(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(SerializationError, match="not valid JSON"):
            load_manifest(tmp_path)

    def test_wrong_format(self, tmp_path):
        save_manifest(tmp_path, {"format": 99})
        with pytest.raises(SerializationError, match="unsupported"):
            load_manifest(tmp_path)

    def test_missing_keys(self, tmp_path):
        save_manifest(tmp_path, {"format": 1, "length": 16})
        with pytest.raises(SerializationError, match="missing"):
            load_manifest(tmp_path)

    def test_malformed_segment_entry(self, tmp_path):
        save_manifest(
            tmp_path,
            {
                "format": 1,
                "length": 16,
                "normalization": "none",
                "params": {},
                "segments": [{"start": 0}],
            },
        )
        with pytest.raises(SerializationError, match="malformed segment"):
            load_manifest(tmp_path)


class TestRecovery:
    @pytest.mark.parametrize("normalization", ["none", "per_window"])
    def test_clean_round_trip(self, tmp_path, normalization):
        live, rng = make_durable(
            tmp_path / "live", seed=1, normalization=normalization
        )
        assert live.seal_count >= 1 and live.compaction_count >= 1
        query = np.array(live.values[20:36])
        before = live.search(query, 0.9)
        live.close()

        recovered = LiveTwinIndex.recover(
            tmp_path / "live", background_compaction=False
        )
        after = recovered.search(query, 0.9)
        assert np.array_equal(before.positions, after.positions)
        assert np.array_equal(before.distances, after.distances)
        assert_matches_reference(recovered)
        # the plane keeps working after recovery
        recovered.append(rng.normal(size=25))
        assert_matches_reference(recovered)
        recovered.close()

    def test_truncated_tail_replays_to_last_durable(self, tmp_path):
        path = tmp_path / "live"
        rng = np.random.default_rng(2)
        live = LiveTwinIndex.create(
            path,
            rng.normal(size=60),
            length=16,
            params=PARAMS,
            seal_threshold=500,  # the torn append must not seal
            max_segments=2,
            background_compaction=False,
        )
        live.append(rng.normal(size=20))
        durable_readings = live.series_length
        live.append(rng.normal(size=7))  # the append a crash tears
        live.close()
        wal = path / "wal.log"
        with open(wal, "r+b") as handle:
            handle.truncate(os.path.getsize(wal) - 11)

        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert recovered.series_length == durable_readings
        assert_matches_reference(recovered)
        recovered.close()

    def test_sealed_values_survive_wal_loss(self, tmp_path):
        # After a seal the WAL only holds the un-sealed suffix; readings
        # inside sealed segments must survive even a heavily truncated
        # journal (they are durable in the segment archives).
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=3)
        frontier = live.segments[-1].stop
        live.close()
        wal = path / "wal.log"
        # Chop the journal down to its bare header: every un-sealed
        # reading is lost, sealed ones must remain.
        with open(wal, "r+b") as handle:
            handle.truncate(14)
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert recovered.series_length == frontier + recovered.length - 1
        assert_matches_reference(recovered)
        recovered.close()

    def test_corrupted_manifest_fails_loudly(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=4)
        live.close()
        (path / MANIFEST_NAME).write_text("{definitely not json")
        with pytest.raises(SerializationError):
            LiveTwinIndex.recover(path)

    def test_corrupted_segment_archive_fails_loudly(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=5)
        segment_file = live.segments[0].file
        live.close()
        archive_path = path / segment_file
        with np.load(archive_path, allow_pickle=False) as archive:
            data = {key: archive[key] for key in archive.files}
        # Out-of-range child ids: from_arrays' structural validation
        # (PR 2) must reject the archive instead of wrapping around
        # under fancy indexing.
        data["children"] = np.full_like(data["children"], 10**6)
        np.savez_compressed(archive_path, **data)
        with pytest.raises((SerializationError, InvalidParameterError)):
            LiveTwinIndex.recover(path)

    def test_segment_chain_gap_fails_loudly(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=6)
        live.close()
        manifest = load_manifest(path)
        manifest["segments"][0]["start"] += 1
        save_manifest(path, manifest)
        with pytest.raises(SerializationError, match="segment chain"):
            LiveTwinIndex.recover(path)

    def test_wal_disagreeing_with_segments_fails_loudly(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=7)
        delta_start = live.segments[-1].stop
        suffix = np.array(live.values[delta_start:])
        live.close()
        wal = WriteAheadLog.create(path / "wal.log", start=delta_start - 3)
        wal.append(np.full(3 + suffix.size, 1234.5))
        wal.close()
        with pytest.raises(SerializationError, match="disagree"):
            LiveTwinIndex.recover(path)

    def test_create_refuses_existing_directory(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=8, appends=1)
        live.close()
        with pytest.raises(InvalidParameterError, match="already holds"):
            LiveTwinIndex.create(path, length=16)

    def test_recover_is_repeatable(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=9)
        readings = live.series_length
        live.close()
        for _ in range(3):
            recovered = LiveTwinIndex.recover(
                path, background_compaction=False
            )
            assert recovered.series_length == readings
            recovered.close()

    def test_fsync_smoke(self, tmp_path):
        path = tmp_path / "live"
        live = LiveTwinIndex.create(
            path, np.arange(40.0), length=16, fsync=True, **SMALL
        )
        live.append(np.arange(20.0))
        live.close()
        recovered = LiveTwinIndex.recover(path, fsync=True)
        assert recovered.series_length == 60
        recovered.close()

    def test_fsync_mode_persists_across_reopen(self, tmp_path):
        # The durability choice made at create() time is recorded in
        # the manifest, so a plain recover() (the CLI's reopen path)
        # keeps journaling with fsync instead of silently downgrading.
        path = tmp_path / "live"
        live = LiveTwinIndex.create(
            path, np.arange(40.0), length=16, fsync=True, **SMALL
        )
        live.close()
        assert load_manifest(path)["fsync"] is True
        recovered = LiveTwinIndex.recover(path)
        assert recovered.stats()["durable"] is True
        assert recovered._fsync is True
        assert recovered._wal.fsync is True
        recovered.close()
        # ... and an explicit override still wins.
        downgraded = LiveTwinIndex.recover(path, fsync=False)
        assert downgraded._wal.fsync is False
        downgraded.close()

    def test_recover_sweeps_orphan_archives(self, tmp_path):
        # A crash between writing an archive and committing it to the
        # manifest (or between a compaction's manifest commit and its
        # unlink step) leaves unreferenced seg-*.npz files; recovery
        # must clean them up instead of leaking them forever.
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=11)
        live.close()
        orphan = path / "seg-999999999000-999999999100.npz"
        orphan.write_bytes(b"leftover from a crashed seal")
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert not orphan.exists()
        files = {name for name in os.listdir(path) if name.endswith(".npz")}
        assert files == {s.file for s in recovered.segments}
        recovered.close()

    def test_manifest_wal_offset_validated(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=12)
        assert live.seal_count >= 1
        live.close()
        manifest = load_manifest(path)
        manifest["wal_offset"] = manifest["wal_offset"] + 5
        save_manifest(path, manifest)
        with pytest.raises(SerializationError, match="wal_offset"):
            LiveTwinIndex.recover(path)

    def test_close_never_raises_compaction_errors(self, tmp_path):
        # A failed background merge must not poison shutdown: close()
        # completes cleanly, the error surfaces through stats, and the
        # journal handle is released.
        from repro.faults import failpoints

        path = tmp_path / "live"
        live, _ = make_durable(path, seed=13, appends=2)
        with failpoints.armed(
            "compaction.merge", error=RuntimeError("simulated merge failure")
        ):
            live._compactor.close()
            live._compactor = type(live._compactor)(
                live._compact_loop, max_retries=1, backoff=0.001
            )
            live._compactor.schedule()
            live._compactor.wait(timeout=10.0)
            assert live._compactor.failure_count == 1
            assert "simulated merge failure" in (
                live.stats()["compaction"]["last_error"] or ""
            )
            live.close()  # must not raise
        assert live._wal._file is None

    def test_compaction_persists_across_recovery(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_durable(path, seed=10, appends=30)
        assert live.compaction_count >= 1
        segment_spans = [(s.start, s.stop) for s in live.segments]
        live.close()
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert [(s.start, s.stop) for s in recovered.segments] == segment_spans
        # stale pre-compaction archives were unlinked
        files = {name for name in os.listdir(path) if name.endswith(".npz")}
        assert files == {s.file for s in recovered.segments}
        recovered.close()
