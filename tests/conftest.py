"""Shared fixtures: small deterministic series and prebuilt indices.

Everything here is sized so the whole suite runs in a couple of
minutes: series of a few thousand points, window length 50, and
session-scoped prebuilt indices reused by the read-only query tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.normalization import Normalization
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.data import synthetic
from repro.indices.isax import ISAXIndex, ISAXParams
from repro.indices.kvindex import KVIndex, KVIndexParams
from repro.indices.sweepline import SweeplineSearch

#: Window length used across the suite (paper default is 100; 50 keeps
#: the suite fast without changing any behaviour under test).
LENGTH = 50


@pytest.fixture(scope="session")
def series_values() -> np.ndarray:
    """A 3,000-point insect-like surrogate (raw values)."""
    return synthetic.insect_like(3000, seed=11)


@pytest.fixture(scope="session")
def wiggly_values() -> np.ndarray:
    """A small noisy-sine series for analytic checks."""
    return synthetic.noisy_sines(800, seed=5, noise_std=0.2)


@pytest.fixture(
    scope="session",
    params=[Normalization.NONE, Normalization.GLOBAL, Normalization.PER_WINDOW],
    ids=["none", "global", "per_window"],
)
def any_normalization(request):
    """Parametrize a test over all three regimes."""
    return request.param


@pytest.fixture(scope="session")
def source_global(series_values) -> WindowSource:
    """Window source under the GLOBAL regime (the paper's default)."""
    return WindowSource(series_values, LENGTH, Normalization.GLOBAL)


@pytest.fixture(scope="session")
def source_raw(series_values) -> WindowSource:
    return WindowSource(series_values, LENGTH, Normalization.NONE)


@pytest.fixture(scope="session")
def source_per_window(series_values) -> WindowSource:
    return WindowSource(series_values, LENGTH, Normalization.PER_WINDOW)


@pytest.fixture(scope="session")
def source_of(series_values):
    """Factory: window source for an arbitrary regime."""

    def factory(normalization, length: int = LENGTH) -> WindowSource:
        return WindowSource(series_values, length, normalization)

    return factory


@pytest.fixture(scope="session")
def sweepline_global(source_global) -> SweeplineSearch:
    return SweeplineSearch.from_source(source_global)


@pytest.fixture(scope="session")
def tsindex_global(source_global) -> TSIndex:
    """A prebuilt TS-Index with small capacities (forces deep trees)."""
    return TSIndex.from_source(
        source_global, params=TSIndexParams(min_children=4, max_children=10)
    )


@pytest.fixture(scope="session")
def kvindex_global(source_global) -> KVIndex:
    return KVIndex.from_source(source_global, params=KVIndexParams(num_bins=64))


@pytest.fixture(scope="session")
def isax_global(source_global) -> ISAXIndex:
    """A prebuilt iSAX with a small leaf capacity (forces splits)."""
    return ISAXIndex.from_source(
        source_global, params=ISAXParams(segments=5, leaf_capacity=100)
    )


@pytest.fixture()
def query_of(source_global):
    """Factory: the indexed window at a position, as a query array."""

    def factory(position: int, source: WindowSource | None = None) -> np.ndarray:
        chosen = source if source is not None else source_global
        return np.array(chosen.window_block(position, position + 1)[0])

    return factory
