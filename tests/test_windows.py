"""Tests for WindowSource across all three normalization regimes."""

import numpy as np
import pytest

from repro.core.normalization import znormalize
from repro.core.series import TimeSeries
from repro.core.windows import WindowSource
from repro.exceptions import InvalidParameterError


@pytest.fixture()
def values():
    return np.array([1.0, 3.0, 2.0, 5.0, 4.0, 6.0, 0.0, 2.0])


class TestBasics:
    def test_count(self, values):
        source = WindowSource(values, 3, "none")
        assert source.count == 6
        assert len(source) == 6

    def test_single_window(self, values):
        source = WindowSource(values, len(values), "none")
        assert source.count == 1

    def test_length_property(self, values):
        assert WindowSource(values, 4, "none").length == 4

    def test_too_long_raises(self, values):
        with pytest.raises(InvalidParameterError):
            WindowSource(values, 9, "none")

    def test_accepts_time_series(self, values):
        source = WindowSource(TimeSeries(values, name="x"), 3, "none")
        assert source.series.name == "x"

    def test_repr(self, values):
        assert "normalization='none'" in repr(WindowSource(values, 3, "none"))


class TestRawWindows:
    def test_window_matches_slice(self, values):
        source = WindowSource(values, 3, "none")
        for p in range(source.count):
            assert np.array_equal(source.window(p), values[p : p + 3])

    def test_windows_matrix(self, values):
        source = WindowSource(values, 3, "none")
        block = source.windows([0, 2, 5])
        assert block.shape == (3, 3)
        assert np.array_equal(block[1], values[2:5])

    def test_window_block_is_view(self, values):
        source = WindowSource(values, 3, "none")
        block = source.window_block(1, 4)
        assert block.shape == (3, 3)
        assert np.shares_memory(block, source.values)

    def test_windows_returns_copy(self, values):
        source = WindowSource(values, 3, "none")
        block = source.windows([0])
        block[0, 0] = 999.0
        assert source.window(0)[0] == values[0]

    def test_position_out_of_range(self, values):
        source = WindowSource(values, 3, "none")
        with pytest.raises(InvalidParameterError):
            source.window(6)
        with pytest.raises(InvalidParameterError):
            source.windows([0, 6])

    def test_block_bounds(self, values):
        source = WindowSource(values, 3, "none")
        with pytest.raises(InvalidParameterError):
            source.window_block(2, 8)

    def test_empty_windows_request(self, values):
        source = WindowSource(values, 3, "none")
        assert source.windows([]).shape == (0, 3)


class TestGlobalRegime:
    def test_buffer_is_znormalized(self, values):
        source = WindowSource(values, 3, "global")
        assert np.allclose(source.values, znormalize(values))

    def test_window_from_normalized_buffer(self, values):
        source = WindowSource(values, 3, "global")
        z = znormalize(values)
        assert np.allclose(source.window(2), z[2:5])

    def test_means_match_normalized_buffer(self, values):
        source = WindowSource(values, 3, "global")
        z = znormalize(values)
        expected = [z[p : p + 3].mean() for p in range(source.count)]
        assert np.allclose(source.means(), expected)


class TestPerWindowRegime:
    def test_each_window_znormalized(self, values):
        source = WindowSource(values, 3, "per_window")
        for p in range(source.count):
            window = source.window(p)
            assert abs(window.mean()) < 1e-9
            assert abs(window.std() - 1.0) < 1e-9 or np.allclose(window, 0.0)

    def test_windows_matrix_matches_scalar(self, values):
        source = WindowSource(values, 3, "per_window")
        block = source.windows(np.arange(source.count))
        for p in range(source.count):
            assert np.allclose(block[p], source.window(p))

    def test_window_block_matches_scalar(self, values):
        source = WindowSource(values, 3, "per_window")
        block = source.window_block(1, 5)
        for offset, p in enumerate(range(1, 5)):
            assert np.allclose(block[offset], source.window(p))

    def test_constant_window_is_zeros(self):
        values = np.concatenate([np.full(5, 3.0), [1.0, 2.0]])
        source = WindowSource(values, 5, "per_window")
        assert np.allclose(source.window(0), 0.0)

    def test_means_all_zero(self, values):
        source = WindowSource(values, 3, "per_window")
        assert np.allclose(source.means(), 0.0)


class TestPrepareQuery:
    def test_none_passthrough(self, values):
        source = WindowSource(values, 3, "none")
        query = np.array([9.0, 8.0, 7.0])
        assert np.array_equal(source.prepare_query(query), query)

    def test_per_window_znormalizes(self, values):
        source = WindowSource(values, 3, "per_window")
        query = np.array([9.0, 8.0, 7.0])
        assert np.allclose(source.prepare_query(query), znormalize(query))

    def test_wrong_length_raises(self, values):
        source = WindowSource(values, 3, "none")
        with pytest.raises(InvalidParameterError, match="query length"):
            source.prepare_query(np.array([1.0, 2.0]))

    def test_means_match_naive(self, values):
        source = WindowSource(values, 3, "none")
        expected = [values[p : p + 3].mean() for p in range(source.count)]
        assert np.allclose(source.means(), expected)
