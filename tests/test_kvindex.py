"""Tests for KV-Index (Section 4.1)."""

import numpy as np
import pytest

from repro.core.windows import WindowSource
from repro.exceptions import UnsupportedNormalizationError
from repro.indices.kvindex import KVIndex, KVIndexParams

from conftest import LENGTH


class TestConstruction:
    def test_build(self, series_values):
        index = KVIndex.build(series_values, LENGTH)
        assert index.source.count == len(series_values) - LENGTH + 1

    def test_rejects_per_window(self, source_per_window):
        # Section 4.1: all means are zero under per-window z-norm.
        with pytest.raises(UnsupportedNormalizationError, match="mean"):
            KVIndex.from_source(source_per_window)

    def test_bin_count(self, kvindex_global):
        assert kvindex_global.num_bins == 64

    def test_edges_cover_mean_range(self, kvindex_global, source_global):
        means = source_global.means()
        assert kvindex_global.edges[0] <= means.min()
        assert kvindex_global.edges[-1] >= means.max()

    def test_every_window_in_exactly_one_bin(self, kvindex_global, source_global):
        counted = 0
        seen = set()
        for bin_id in range(kvindex_global.num_bins):
            for start, stop in kvindex_global.bin_intervals(bin_id):
                for position in range(start, stop):
                    assert position not in seen
                    seen.add(position)
                counted += stop - start
        assert counted == source_global.count

    def test_bin_contents_match_edges(self, kvindex_global, source_global):
        means = source_global.means()
        edges = kvindex_global.edges
        for bin_id in range(kvindex_global.num_bins):
            for start, stop in kvindex_global.bin_intervals(bin_id):
                block = means[start:stop]
                assert np.all(block >= edges[bin_id] - 1e-12)
                if bin_id + 1 < kvindex_global.num_bins:
                    assert np.all(block <= edges[bin_id + 1] + 1e-12)

    def test_constant_series_single_bin(self):
        values = np.concatenate([np.full(100, 3.0), [3.0]])
        index = KVIndex.build(values, 10, normalization="none")
        result = index.search(np.full(10, 3.0), 0.0)
        assert len(result) == index.source.count

    def test_params_validation(self):
        with pytest.raises(Exception):
            KVIndexParams(num_bins=0)

    def test_build_stats(self, kvindex_global):
        assert kvindex_global.build_stats.windows == (
            kvindex_global.source.count
        )
        assert kvindex_global.build_stats.nodes == kvindex_global.num_bins

    def test_repr(self, kvindex_global):
        assert "KVIndex" in repr(kvindex_global)
        assert "bins=64" in repr(kvindex_global)


class TestFilterSoundness:
    def test_candidates_include_all_twins(
        self, kvindex_global, sweepline_global, query_of
    ):
        # The mean filter must never lose a twin (Section 4.1 property).
        for position in (10, 400, 1500):
            query = query_of(position)
            for epsilon in (0.0, 0.3, 0.9):
                expected = sweepline_global.search(query, epsilon).positions
                intervals = kvindex_global.candidate_intervals(query, epsilon)
                candidates = set()
                for start, stop in intervals:
                    candidates.update(range(start, stop))
                assert set(expected.tolist()) <= candidates

    def test_mean_bound_property(self, source_global):
        # |mean(S) - mean(S')| <= chebyshev(S, S') for random pairs.
        rng = np.random.default_rng(0)
        for _ in range(100):
            a, b = rng.integers(0, source_global.count, size=2)
            wa = source_global.window(int(a))
            wb = source_global.window(int(b))
            assert abs(wa.mean() - wb.mean()) <= (
                np.max(np.abs(wa - wb)) + 1e-12
            )

    def test_intervals_merged_and_disjoint(self, kvindex_global, query_of):
        intervals = kvindex_global.candidate_intervals(query_of(77), 0.8)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 < s2  # disjoint and sorted with gaps


class TestSearch:
    def test_matches_sweepline(self, kvindex_global, sweepline_global, query_of):
        for position in (3, 250, 1800):
            query = query_of(position)
            for epsilon in (0.0, 0.3, 0.8, 2.0):
                expected = sweepline_global.search(query, epsilon)
                actual = kvindex_global.search(query, epsilon)
                assert np.array_equal(actual.positions, expected.positions)
                assert np.allclose(actual.distances, expected.distances)

    def test_verification_modes_agree(self, kvindex_global, query_of):
        query = query_of(123)
        reference = kvindex_global.search(query, 0.5)
        for mode in ("blocked", "per_candidate"):
            other = kvindex_global.search(query, 0.5, verification=mode)
            assert np.array_equal(other.positions, reference.positions)

    def test_raw_regime(self, series_values, query_of):
        source = WindowSource(series_values, LENGTH, "none")
        index = KVIndex.from_source(source)
        query = np.asarray(series_values[100 : 100 + LENGTH])
        assert 100 in index.search(query, 0.0).positions

    def test_query_mean_far_outside_range(self, kvindex_global):
        query = np.full(LENGTH, 1e6)
        result = kvindex_global.search(query, 0.1)
        assert len(result) == 0
        assert result.stats.candidates == 0

    def test_fine_bins_prune_more(self, source_global, query_of):
        coarse = KVIndex.from_source(source_global, params=KVIndexParams(num_bins=4))
        fine = KVIndex.from_source(source_global, params=KVIndexParams(num_bins=512))
        query = query_of(200)
        coarse_stats = coarse.search(query, 0.3).stats
        fine_stats = fine.search(query, 0.3).stats
        assert fine_stats.candidates <= coarse_stats.candidates

    def test_epsilon_covers_everything(self, kvindex_global, query_of):
        result = kvindex_global.search(query_of(0), 100.0)
        assert len(result) == kvindex_global.source.count
