"""Tests for exists() and exclusion-zone k-NN on TS-Index."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError


class TestExists:
    def test_true_for_self(self, tsindex_global, query_of):
        assert tsindex_global.exists(query_of(10), 0.0)

    def test_false_for_far_query(self, tsindex_global):
        from conftest import LENGTH

        assert not tsindex_global.exists(np.full(LENGTH, 100.0), 0.5)

    def test_agrees_with_search(self, tsindex_global, query_of):
        rng = np.random.default_rng(0)
        for _ in range(10):
            position = int(rng.integers(0, 2000))
            epsilon = float(rng.uniform(0.0, 1.0))
            query = query_of(position)
            assert tsindex_global.exists(query, epsilon) == (
                len(tsindex_global.search(query, epsilon)) > 0
            )

    def test_negative_epsilon(self, tsindex_global, query_of):
        with pytest.raises(InvalidParameterError):
            tsindex_global.exists(query_of(0), -1.0)


class TestKnnExclusion:
    def test_excludes_self(self, tsindex_global, query_of):
        query = query_of(500)
        from conftest import LENGTH

        result = tsindex_global.knn(query, 1, exclude=(500 - LENGTH, 500 + LENGTH))
        assert result.distances[0] > 0.0
        position = int(result.positions[0])
        assert position < 500 - LENGTH or position >= 500 + LENGTH

    def test_matches_filtered_brute_force(self, tsindex_global, source_global, query_of):
        query = query_of(321)
        exclude = (300, 350)
        result = tsindex_global.knn(query, 5, exclude=exclude)
        block = source_global.window_block(0, source_global.count)
        profile = np.max(np.abs(block - query), axis=1)
        profile[exclude[0] : exclude[1]] = np.inf
        assert np.allclose(np.sort(result.distances), np.sort(profile)[:5])

    def test_empty_exclusion_is_noop(self, tsindex_global, query_of):
        query = query_of(77)
        plain = tsindex_global.knn(query, 3)
        trivial = tsindex_global.knn(query, 3, exclude=(0, 0))
        assert np.allclose(plain.distances, trivial.distances)

    def test_exclude_everything_returns_nothing(self, tsindex_global, source_global, query_of):
        result = tsindex_global.knn(
            query_of(5), 3, exclude=(0, source_global.count)
        )
        assert len(result) == 0

    def test_invalid_range(self, tsindex_global, query_of):
        with pytest.raises(InvalidParameterError, match="start <= stop"):
            tsindex_global.knn(query_of(0), 1, exclude=(10, 5))
