"""Tests for the internal helpers in repro._util."""

import numpy as np
import pytest

from repro._util import (
    as_float_array,
    as_position_array,
    check_non_negative,
    check_positive_int,
    check_window_length,
    intervals_to_positions,
    iter_chunks,
    positions_to_intervals,
)
from repro.exceptions import InvalidParameterError


class TestAsFloatArray:
    def test_accepts_list(self):
        array = as_float_array([1, 2, 3])
        assert array.dtype == np.float64
        assert array.tolist() == [1.0, 2.0, 3.0]

    def test_rejects_empty(self):
        with pytest.raises(InvalidParameterError, match="empty"):
            as_float_array([])

    def test_rejects_2d(self):
        with pytest.raises(InvalidParameterError, match="one-dimensional"):
            as_float_array([[1.0, 2.0]])

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError, match="NaN"):
            as_float_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(InvalidParameterError, match="NaN or infinite"):
            as_float_array([1.0, np.inf])

    def test_name_in_message(self):
        with pytest.raises(InvalidParameterError, match="my_field"):
            as_float_array([], name="my_field")

    def test_contiguous(self):
        strided = np.arange(10.0)[::2]
        assert as_float_array(strided).flags["C_CONTIGUOUS"]


class TestAsPositionArray:
    def test_empty_allowed(self):
        assert as_position_array([]).size == 0

    def test_dtype(self):
        assert as_position_array([1, 2]).dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(InvalidParameterError):
            as_position_array([[1, 2]])


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1, name="x") == 1

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), name="x") == 5

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(0, name="x")

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(True, name="x")

    def test_rejects_float(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(2.5, name="x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, name="eps") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative(-0.1, name="eps")

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative(float("nan"), name="eps")

    def test_rejects_string(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative("abc", name="eps")


class TestCheckWindowLength:
    def test_exact_fit(self):
        assert check_window_length(5, 5) == 5

    def test_too_long(self):
        with pytest.raises(InvalidParameterError, match="exceeds"):
            check_window_length(6, 5)


class TestIterChunks:
    def test_exact_division(self):
        assert list(iter_chunks(6, 3)) == [(0, 3), (3, 6)]

    def test_remainder(self):
        assert list(iter_chunks(7, 3)) == [(0, 3), (3, 6), (6, 7)]

    def test_empty(self):
        assert list(iter_chunks(0, 3)) == []

    def test_bad_chunk(self):
        with pytest.raises(InvalidParameterError):
            list(iter_chunks(5, 0))


class TestIntervals:
    def test_round_trip(self):
        positions = [1, 2, 3, 7, 9, 10]
        intervals = positions_to_intervals(positions)
        assert intervals == [(1, 4), (7, 8), (9, 11)]
        assert intervals_to_positions(intervals).tolist() == positions

    def test_single_position(self):
        assert positions_to_intervals([4]) == [(4, 5)]

    def test_empty(self):
        assert positions_to_intervals([]) == []
        assert intervals_to_positions([]).size == 0

    def test_rejects_unsorted(self):
        with pytest.raises(InvalidParameterError):
            positions_to_intervals([3, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidParameterError):
            positions_to_intervals([1, 1])

    def test_fully_contiguous(self):
        assert positions_to_intervals(list(range(100))) == [(0, 100)]
