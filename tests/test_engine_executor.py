"""Tests for the QueryEngine front door (cache + concurrency + stats)."""

import concurrent.futures

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.engine import IndexRegistry, QueryEngine
from repro.exceptions import IndexNotBuiltError

PARAMS = TSIndexParams(min_children=4, max_children=10)
LENGTH = 40


@pytest.fixture()
def series():
    return np.cumsum(np.random.default_rng(21).normal(size=1500))


@pytest.fixture()
def engine(series):
    with QueryEngine(cache_capacity=16, max_workers=4) as engine:
        engine.build(
            "demo", series, LENGTH,
            normalization="global", shards=3, params=PARAMS,
        )
        yield engine


class TestServing:
    def test_query_matches_monolithic(self, engine, series):
        mono = TSIndex.build(series, LENGTH, normalization="global", params=PARAMS)
        query = mono.source.window(444)
        expected = mono.search(query, 0.4)
        actual = engine.query("demo", query, 0.4)
        assert np.array_equal(expected.positions, actual.positions)
        assert np.array_equal(expected.distances, actual.distances)

    def test_repeat_query_served_from_cache(self, engine):
        query = engine.registry.get("demo").source.window(100)
        first = engine.query("demo", query, 0.3)
        second = engine.query("demo", query, 0.3)
        assert second is first  # the cached object itself
        cache = engine.cache.stats()
        assert cache.hits == 1 and cache.misses == 1

    def test_use_cache_false_bypasses(self, engine):
        query = engine.registry.get("demo").source.window(100)
        first = engine.query("demo", query, 0.3, use_cache=False)
        second = engine.query("demo", query, 0.3, use_cache=False)
        assert second is not first
        assert engine.cache.stats().lookups == 0

    def test_distinct_epsilons_not_conflated(self, engine):
        query = engine.registry.get("demo").source.window(100)
        wide = engine.query("demo", query, 1.0)
        narrow = engine.query("demo", query, 0.01)
        assert len(narrow) <= len(wide)
        assert engine.cache.stats().misses == 2

    def test_unknown_index_raises(self, engine):
        with pytest.raises(IndexNotBuiltError):
            engine.query("ghost", np.zeros(LENGTH), 0.1)

    def test_knn(self, engine, series):
        mono = TSIndex.build(series, LENGTH, normalization="global", params=PARAMS)
        query = mono.source.window(200)
        expected = mono.knn(query, 5)
        actual = engine.knn("demo", query, 5)
        assert np.array_equal(expected.distances, actual.distances)

    def test_batch_matches_singles_and_caches(self, engine):
        source = engine.registry.get("demo").source
        queries = [source.window(p) for p in (3, 400, 900, 3)]  # repeat!
        batch = engine.batch("demo", queries, 0.4)
        assert len(batch) == 4
        # queries[0] and queries[3] are equal -> same cached object or at
        # least equal results; singles must agree with the batch.
        for query, result in zip(queries, batch):
            single = engine.query("demo", query, 0.4)
            assert np.array_equal(single.positions, result.positions)
        assert batch.total_matches == sum(len(r) for r in batch)

    def test_concurrent_callers(self, engine):
        source = engine.registry.get("demo").source
        queries = [source.window(p) for p in range(0, 1000, 53)]

        def call(query):
            return engine.query("demo", query, 0.35)

        with concurrent.futures.ThreadPoolExecutor(8) as pool:
            results = list(pool.map(call, queries))
        for query, result in zip(queries, results):
            expected = engine.registry.get("demo").search(query, 0.35)
            assert np.array_equal(expected.positions, result.positions)


class TestLifecycleAndStats:
    def test_stats_aggregation(self, engine):
        source = engine.registry.get("demo").source
        engine.query("demo", source.window(1), 0.3)
        engine.query("demo", source.window(1), 0.3)  # hit
        engine.query("demo", source.window(2), 0.3)
        stats = engine.stats()
        assert stats.queries == 3
        assert stats.cache.hits == 1
        assert stats.query_stats.candidates > 0
        assert stats.indexes[0]["name"] == "demo"
        row = stats.as_dict()
        assert row["queries"] == 3
        assert row["cache"]["hits"] == 1

    def test_lifetime_qps_survives_wall_clock_steps(self, engine, monkeypatch):
        """Regression: lifetime QPS derives from the monotonic clock —
        a wall-clock step backwards (NTP) must not divide the query
        count by ~1e-9 and report a billion QPS."""
        import time as time_module

        source = engine.registry.get("demo").source
        engine.query("demo", source.window(1), 0.3)
        real_time = time_module.time
        monkeypatch.setattr(time_module, "time", lambda: real_time() - 3600)
        qps = engine._qps()
        assert 0.0 < qps < 1e6

    def test_rebuild_overwrite_invalidates_cache(self, engine):
        """A rebuilt name must never serve the old index's results."""
        other = np.cumsum(np.random.default_rng(99).normal(size=1500))
        query = engine.registry.get("demo").source.window(77)
        stale = engine.query("demo", query, 0.3)
        engine.build(
            "demo", other, LENGTH,
            normalization="global", shards=2, params=PARAMS, overwrite=True,
        )
        fresh = engine.query("demo", query, 0.3)
        assert fresh is not stale
        expected = engine.registry.get("demo").search(query, 0.3)
        assert np.array_equal(expected.positions, fresh.positions)

    def test_load_overwrite_invalidates_cache(self, engine, series, tmp_path):
        query = engine.registry.get("demo").source.window(77)
        stale = engine.query("demo", query, 0.3)
        path = tmp_path / "demo.npz"
        engine.registry.save("demo", path)
        restored = engine.load("demo", path, overwrite=True)
        assert engine.registry.get("demo") is restored
        fresh = engine.query("demo", query, 0.3)
        assert fresh is not stale  # recomputed, not served stale
        assert np.array_equal(stale.positions, fresh.positions)

    def test_query_and_batch_share_cache_entries(self, engine):
        source = engine.registry.get("demo").source
        query = source.window(123)
        engine.batch("demo", [query], 0.3)
        hit = engine.query("demo", query, 0.3)
        stats = engine.cache.stats()
        assert stats.hits == 1  # query() reused the batch()-made entry
        assert len(hit) >= 1

    def test_evict_clears_cache(self, engine, series):
        query = engine.registry.get("demo").source.window(10)
        stale = engine.query("demo", query, 0.3)
        engine.evict("demo")
        assert engine.registry.names() == []
        engine.build(
            "demo", series, LENGTH,
            normalization="global", shards=2, params=PARAMS,
        )
        fresh = engine.query("demo", query, 0.3)
        assert fresh is not stale  # never serve the old index's result
        assert np.array_equal(fresh.positions, stale.positions)

    def test_shared_registry(self, series):
        registry = IndexRegistry()
        registry.build(
            "shared", series, LENGTH,
            normalization="none", shards=2, params=PARAMS,
        )
        with QueryEngine(registry) as engine:
            assert engine.registry is registry
            result = engine.query("shared", series[50:50 + LENGTH], 0.2)
            assert 50 in result.positions

    def test_close_idempotent(self, series):
        engine = QueryEngine(cache_capacity=4)
        engine.close()
        engine.close()

    def test_context_manager_leaves_registry_usable(self, series):
        with QueryEngine() as engine:
            engine.build(
                "x", series, LENGTH,
                normalization="none", shards=2, params=PARAMS,
            )
            registry = engine.registry
        # Pool is gone, but the registry and its index survive.
        index = registry.get("x")
        result = index.search(series[100:100 + LENGTH], 0.1)
        assert 100 in result.positions
