"""Tests for multi-series collection search."""

import numpy as np
import pytest

from repro.core.collection import CollectionIndex, CollectionMatch
from repro.data import synthetic
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def collection():
    return [
        synthetic.insect_like(800, seed=1),
        synthetic.insect_like(1000, seed=2),
        synthetic.noisy_sines(900, seed=3),
    ]


@pytest.fixture(scope="module")
def index(collection):
    return CollectionIndex(collection, 50, normalization="none")


class TestConstruction:
    def test_counts(self, index, collection):
        assert index.series_count == 3
        assert index.window_count == sum(len(s) - 49 for s in collection)
        assert index.length == 50

    def test_rejects_empty_collection(self):
        with pytest.raises(InvalidParameterError, match="empty"):
            CollectionIndex([], 10)

    def test_rejects_short_member(self):
        with pytest.raises(InvalidParameterError, match="shorter"):
            CollectionIndex([np.ones(100), np.ones(5)], 10)

    def test_member_access(self, index):
        assert index.member(0).source.length == 50

    def test_repr(self, index):
        assert "CollectionIndex(series=3" in repr(index)

    def test_other_methods_allowed(self, collection):
        sweep = CollectionIndex(
            collection, 50, normalization="none", method="sweepline"
        )
        assert sweep.series_count == 3


class TestSearch:
    def test_finds_query_in_its_series(self, index, collection):
        for series_id, series in enumerate(collection):
            query = np.asarray(series[100:150])
            matches = index.search(query, 0.0)
            assert CollectionMatch(series_id, 100, 0.0) in matches

    def test_matches_fanout_ground_truth(self, index, collection):
        from repro.indices.sweepline import SweeplineSearch

        query = np.asarray(collection[1][300:350])
        epsilon = 0.4
        expected = []
        for series_id, series in enumerate(collection):
            sweep = SweeplineSearch.build(series, 50, normalization="none")
            for position, distance in sweep.search(query, epsilon):
                expected.append((series_id, int(position)))
        actual = [(m.series_id, m.position) for m in index.search(query, epsilon)]
        assert actual == expected

    def test_count_per_series(self, index, collection):
        query = np.asarray(collection[2][10:60])
        per_series = index.count_per_series(query, 0.2)
        assert len(per_series) == 3
        assert per_series[2] >= 1
        assert sum(per_series) == index.count(query, 0.2)

    def test_aggregate_stats(self, index, collection):
        query = np.asarray(collection[0][5:55])
        stats = index.aggregate_stats(query, 0.3)
        assert stats.matches == index.count(query, 0.3)
        assert stats.candidates >= stats.matches


class TestKnn:
    def test_global_top_k(self, index, collection):
        query = np.asarray(collection[0][200:250])
        top = index.knn(query, 5)
        assert len(top) == 5
        assert top[0].series_id == 0
        assert top[0].position == 200
        assert top[0].distance == 0.0
        distances = [m.distance for m in top]
        assert distances == sorted(distances)

    def test_matches_brute_force(self, index, collection):
        query = np.asarray(collection[1][40:90])
        top = index.knn(query, 7)
        brute = []
        for series_id, series in enumerate(collection):
            view = np.lib.stride_tricks.sliding_window_view(
                np.asarray(series, dtype=float), 50
            )
            profile = np.max(np.abs(view - query), axis=1)
            brute.extend(profile.tolist())
        expected = sorted(brute)[:7]
        assert np.allclose([m.distance for m in top], expected)

    def test_k_larger_than_collection(self, collection):
        small = CollectionIndex(
            [collection[0][:60], collection[1][:70]], 50, normalization="none"
        )
        top = small.knn(np.asarray(collection[0][:50]), 1000)
        assert len(top) == small.window_count

    def test_knn_serves_search_only_members(self, collection):
        # Sweepline members have no native knn; the planner's exact
        # scan synthesizes it, and the answers match TS-Index members.
        sweep = CollectionIndex(
            collection, 50, normalization="none", method="sweepline"
        )
        tree = CollectionIndex(
            collection, 50, normalization="none", method="tsindex"
        )
        query = np.asarray(collection[0][:50])
        scanned = sweep.knn(query, 3)
        native = tree.knn(query, 3)
        assert [(m.series_id, m.position) for m in scanned] == [
            (m.series_id, m.position) for m in native
        ]
        assert np.allclose(
            [m.distance for m in scanned], [m.distance for m in native]
        )
