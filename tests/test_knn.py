"""Tests for the k-NN twin search extension (best-first traversal)."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.euclidean.mass import chebyshev_distance_profile
from repro.exceptions import InvalidParameterError


@pytest.fixture(scope="module")
def index_and_profile(source_global):
    index = TSIndex.from_source(
        source_global, params=TSIndexParams(min_children=4, max_children=10)
    )
    query = np.array(source_global.window_block(321, 322)[0])
    profile = chebyshev_distance_profile(source_global, query)
    return index, query, profile


class TestKnnCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 5, 17, 64])
    def test_distances_match_brute_force(self, index_and_profile, k):
        index, query, profile = index_and_profile
        result = index.knn(query, k)
        expected = np.sort(profile)[:k]
        assert len(result) == k
        assert np.allclose(np.sort(result.distances), expected)

    def test_k_one_is_self(self, index_and_profile):
        index, query, _profile = index_and_profile
        result = index.knn(query, 1)
        assert result.distances[0] == 0.0
        assert result.positions[0] == 321

    def test_results_sorted_by_distance(self, index_and_profile):
        index, query, _profile = index_and_profile
        result = index.knn(query, 10)
        assert np.all(np.diff(result.distances) >= 0)

    def test_k_larger_than_index(self, source_global):
        small = TSIndex.build(
            np.asarray(source_global.series)[:80], 50, normalization="none"
        )
        result = small.knn(np.asarray(source_global.series)[:50], 1000)
        assert len(result) == small.size

    def test_positions_unique(self, index_and_profile):
        index, query, _profile = index_and_profile
        result = index.knn(query, 25)
        assert len(set(result.positions.tolist())) == 25


class TestKnnValidation:
    def test_rejects_zero_k(self, index_and_profile):
        index, query, _ = index_and_profile
        with pytest.raises(InvalidParameterError):
            index.knn(query, 0)

    def test_rejects_too_long_query(self, index_and_profile):
        # Shorter queries are served (variable-length prefix scan);
        # only queries longer than the indexed windows are malformed.
        index, _, _ = index_and_profile
        with pytest.raises(Exception):
            index.knn(np.zeros(index.length + 1), 2)

    def test_shorter_query_served(self, index_and_profile):
        index, query, _ = index_and_profile
        result = index.knn(np.array(query[:10]), 1)
        assert result.distances[0] == 0.0
        assert result.positions[0] == 321


class TestKnnEfficiency:
    def test_prunes_nodes(self, index_and_profile):
        index, query, _ = index_and_profile
        result = index.knn(query, 1)
        # Best-first search must not touch every leaf for k=1.
        assert result.stats.leaves_accessed < sum(
            1 for node, _ in index.iter_nodes() if node.is_leaf
        )

    def test_consistent_with_range_search(self, index_and_profile):
        # The k-th NN distance defines a range query returning >= k hits.
        index, query, _ = index_and_profile
        result = index.knn(query, 8)
        radius = float(result.distances[-1])
        range_result = index.search(query, radius)
        assert len(range_result) >= 8
        assert set(result.positions.tolist()) <= set(
            range_result.positions.tolist()
        )
