"""Tests for the sweepline baseline (Sections 1, 3.2)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.indices.sweepline import SweeplineSearch

from conftest import LENGTH


class TestConstruction:
    def test_build_from_values(self, series_values):
        scan = SweeplineSearch.build(series_values, LENGTH)
        assert scan.source.count == len(series_values) - LENGTH + 1

    def test_from_source(self, source_global):
        scan = SweeplineSearch.from_source(source_global)
        assert scan.source is source_global

    def test_rejects_unknown_options(self, source_global):
        with pytest.raises(TypeError):
            SweeplineSearch.from_source(source_global, fancy=True)

    def test_build_stats_trivial(self, sweepline_global):
        assert sweepline_global.build_stats.nodes == 0
        assert sweepline_global.build_stats.windows == (
            sweepline_global.source.count
        )

    def test_repr(self, sweepline_global):
        assert "SweeplineSearch" in repr(sweepline_global)


class TestSearch:
    def test_self_match(self, sweepline_global, query_of):
        assert 42 in sweepline_global.search(query_of(42), 0.0).positions

    def test_scans_every_window(self, sweepline_global, query_of):
        result = sweepline_global.search(query_of(0), 0.5)
        assert result.stats.candidates == sweepline_global.source.count

    def test_monotone_in_epsilon(self, sweepline_global, query_of):
        query = query_of(10)
        previous = -1
        for epsilon in (0.0, 0.2, 0.5, 1.0, 2.0):
            count = len(sweepline_global.search(query, epsilon))
            assert count >= previous
            previous = count

    def test_verification_modes_agree(self, sweepline_global, query_of):
        query = query_of(55)
        reference = sweepline_global.search(query, 0.6)
        for mode in ("blocked", "per_candidate"):
            other = sweepline_global.search(query, 0.6, verification=mode)
            assert np.array_equal(other.positions, reference.positions)

    def test_negative_epsilon(self, sweepline_global, query_of):
        with pytest.raises(InvalidParameterError):
            sweepline_global.search(query_of(0), -1.0)


class TestPurePythonReference:
    def test_matches_vectorized(self, series_values):
        scan = SweeplineSearch.build(series_values[:400], 30, normalization="global")
        query = np.array(scan.source.window_block(17, 18)[0])
        for epsilon in (0.0, 0.4, 1.0):
            fast = scan.search(query, epsilon)
            slow = scan.search_pure_python(query, epsilon)
            assert np.array_equal(fast.positions, slow.positions)
            assert np.allclose(fast.distances, slow.distances)

    def test_pure_python_counts(self, series_values):
        scan = SweeplineSearch.build(series_values[:200], 30, normalization="none")
        query = np.asarray(series_values[:30])
        result = scan.search_pure_python(query, 0.1)
        assert result.stats.candidates == scan.source.count
