"""Failpoint framework semantics: triggers, actions, scoping, stats."""

import errno

import pytest

from repro.exceptions import InvalidParameterError, SimulatedCrashError
from repro.faults import failpoints


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.reset()
    yield
    failpoints.reset()


class TestDisarmed:
    def test_disarmed_site_returns_none(self):
        assert failpoints.failpoint("wal.append") is None

    def test_unrelated_armed_site_does_not_fire(self):
        failpoints.arm("wal.fsync", error="io")
        assert failpoints.failpoint("wal.append", path="x") is None

    def test_context_kwargs_accepted_when_disarmed(self):
        assert failpoints.failpoint("seg.read", file="a", size=3) is None


class TestActions:
    def test_error_instance_fires_fresh_copies(self):
        failpoints.arm("site", error=ValueError("boom"))
        with pytest.raises(ValueError, match="boom") as first:
            failpoints.failpoint("site")
        with pytest.raises(ValueError, match="boom") as second:
            failpoints.failpoint("site")
        assert first.value is not second.value

    def test_error_class_instantiated(self):
        failpoints.arm("site", error=RuntimeError)
        with pytest.raises(RuntimeError, match="site"):
            failpoints.failpoint("site")

    def test_io_shorthand(self):
        failpoints.arm("site", error="io")
        with pytest.raises(OSError):
            failpoints.failpoint("site")

    def test_enospc_shorthand_carries_errno(self):
        failpoints.arm("site", error="enospc")
        with pytest.raises(OSError) as info:
            failpoints.failpoint("site")
        assert info.value.errno == errno.ENOSPC

    def test_crash_raises_simulated_crash(self):
        failpoints.arm("site", crash=True)
        with pytest.raises(SimulatedCrashError):
            failpoints.failpoint("site")

    def test_crash_is_not_an_exception_subclass(self):
        # A retry loop catching Exception must never swallow a kill.
        failpoints.arm("site", crash=True)
        with pytest.raises(SimulatedCrashError):
            try:
                failpoints.failpoint("site")
            except Exception:
                pytest.fail("crash was swallowed by `except Exception`")

    def test_payload_returned_to_site(self):
        payload = {"torn_after_bytes": 5}
        failpoints.arm("site", payload=payload)
        assert failpoints.failpoint("site") is payload

    def test_make_error_rejects_unknown_class(self):
        with pytest.raises(InvalidParameterError, match="unknown"):
            failpoints.make_error("oom")


class TestTriggers:
    def test_on_hit_fires_only_nth(self):
        failpoints.arm("site", error="io", on_hit=3)
        assert failpoints.failpoint("site") is None
        assert failpoints.failpoint("site") is None
        with pytest.raises(OSError):
            failpoints.failpoint("site")
        assert failpoints.failpoint("site") is None  # only the 3rd

    def test_times_caps_firings(self):
        failpoints.arm("site", error="io", times=2)
        for _ in range(2):
            with pytest.raises(OSError):
                failpoints.failpoint("site")
        assert failpoints.failpoint("site") is None

    def test_probability_stream_is_deterministic(self):
        def fire_pattern():
            failpoints.arm("site", error="io", probability=0.5, seed=42)
            pattern = []
            for _ in range(32):
                try:
                    failpoints.failpoint("site")
                    pattern.append(False)
                except OSError:
                    pattern.append(True)
            return pattern

        first, second = fire_pattern(), fire_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_probability_zero_never_fires(self):
        failpoints.arm("site", error="io", probability=0.0, seed=1)
        assert all(failpoints.failpoint("site") is None for _ in range(16))


class TestValidation:
    def test_action_required(self):
        with pytest.raises(InvalidParameterError, match="action"):
            failpoints.arm("site")

    def test_error_and_crash_exclusive(self):
        with pytest.raises(InvalidParameterError, match="exclusive"):
            failpoints.arm("site", error="io", crash=True)

    def test_bad_shorthand_rejected_at_arm_time(self):
        with pytest.raises(InvalidParameterError):
            failpoints.arm("site", error="kaboom")

    @pytest.mark.parametrize(
        "config",
        [{"on_hit": 0}, {"probability": 1.5}, {"probability": -0.1},
         {"times": 0}],
    )
    def test_bad_trigger_rejected(self, config):
        with pytest.raises(InvalidParameterError):
            failpoints.arm("site", error="io", **config)


class TestScoping:
    def test_armed_context_disarms_on_exit(self):
        with failpoints.armed("site", error="io"):
            with pytest.raises(OSError):
                failpoints.failpoint("site")
        assert failpoints.failpoint("site") is None

    def test_armed_context_restores_previous_arming(self):
        outer = failpoints.arm("site", payload="outer")
        with failpoints.armed("site", payload="inner"):
            assert failpoints.failpoint("site") == "inner"
        assert failpoints.failpoint("site") == "outer"
        assert failpoints.list_armed()["site"] is outer

    def test_disarm_unknown_site_is_noop(self):
        failpoints.disarm("never-armed")

    def test_reset_disarms_everything(self):
        failpoints.arm("a", error="io")
        failpoints.arm("b", crash=True)
        failpoints.reset()
        assert failpoints.list_armed() == {}


class TestAccounting:
    def test_site_stats_count_hits_and_fires(self):
        point = failpoints.arm("site", error="io", on_hit=2)
        assert failpoints.failpoint("site") is None
        with pytest.raises(OSError):
            failpoints.failpoint("site")
        assert point.stats() == {"hits": 2, "fired": 1}
        stats = failpoints.site_stats()["site"]
        assert stats["hits"] == 2 and stats["fired"] == 1
        assert stats["lifetime_hits"] >= 2

    def test_lifetime_hits_survive_reset(self):
        failpoints.arm("site", error="io", on_hit=99)
        failpoints.failpoint("site")
        failpoints.reset()
        assert failpoints.site_stats()["site"]["lifetime_hits"] >= 1
