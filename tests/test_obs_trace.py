"""Unit tests for repro.obs query tracing: spans, context propagation,
ring buffer, sampling, and the null trace."""

import threading

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import (
    NULL_TRACE,
    QueryTrace,
    Tracer,
    activate_trace,
    current_trace,
    deactivate_trace,
)


class TestQueryTrace:
    def test_spans_record_names_and_durations(self):
        trace = QueryTrace("search")
        with trace.span("plan"):
            pass
        with trace.span("execute", shard=3):
            pass
        trace.finish()
        data = trace.as_dict()
        assert [span["name"] for span in data["spans"]] == [
            "plan",
            "execute",
        ]
        assert data["spans"][1]["meta"] == {"shard": 3}
        assert data["mode"] == "search"
        assert data["duration_s"] >= 0.0
        for span in data["spans"]:
            assert span["duration_s"] >= 0.0
            assert span["start_s"] >= 0.0

    def test_span_offsets_are_relative_to_trace_origin(self):
        trace = QueryTrace("search")
        with trace.span("first"):
            pass
        with trace.span("second"):
            pass
        data = trace.as_dict()
        first, second = data["spans"]
        assert second["start_s"] >= first["start_s"]

    def test_as_dict_carries_meta(self):
        trace = QueryTrace("knn", index="demo")
        trace.finish()
        assert trace.as_dict()["meta"] == {"index": "demo"}

    def test_spans_from_threads_all_land(self):
        trace = QueryTrace("batch")

        def work():
            for _ in range(200):
                with trace.span("execute"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.as_dict()["spans"]) == 4 * 200


class TestContextPropagation:
    def test_activate_makes_trace_current(self):
        trace = QueryTrace("search")
        token = activate_trace(trace)
        try:
            assert current_trace() is trace
        finally:
            deactivate_trace(token)
        assert current_trace() is NULL_TRACE

    def test_default_current_is_null(self):
        assert current_trace() is NULL_TRACE

    def test_null_trace_is_falsy_and_inert(self):
        assert not NULL_TRACE
        with NULL_TRACE.span("anything", shard=1):
            pass
        NULL_TRACE.finish()


class TestTracer:
    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            trace = tracer.start("search", i=i)
            tracer.finish(trace)
        traces = tracer.traces()
        assert len(traces) == 3
        assert [t.meta["i"] for t in traces] == [7, 8, 9]

    def test_sample_zero_yields_null_traces(self):
        tracer = Tracer(capacity=4, sample=0.0)
        for _ in range(5):
            trace = tracer.start("search")
            assert trace is NULL_TRACE
            tracer.finish(trace)
        assert len(tracer) == 0

    def test_sample_interval_is_deterministic(self):
        tracer = Tracer(capacity=64, sample=0.5)
        kept = [
            tracer.start("search") is not NULL_TRACE for _ in range(10)
        ]
        assert kept == [False, True] * 5  # every 2nd query sampled

    def test_clear_empties_ring(self):
        tracer = Tracer(capacity=4)
        tracer.finish(tracer.start("search"))
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            Tracer(capacity=0)
        with pytest.raises(InvalidParameterError):
            Tracer(sample=1.5)
        with pytest.raises(InvalidParameterError):
            Tracer(sample=-0.1)
