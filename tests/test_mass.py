"""Tests for Euclidean distance profiles and the intro experiment."""

import numpy as np
import pytest

from repro.core.distance import euclidean_distance, euclidean_threshold_for
from repro.core.windows import WindowSource
from repro.euclidean.mass import (
    chebyshev_distance_profile,
    euclidean_distance_profile,
    euclidean_threshold_search,
    spike_discrepancy,
    twin_vs_euclidean_comparison,
)
from repro.exceptions import InvalidParameterError

from conftest import LENGTH


class TestEuclideanProfile:
    @pytest.mark.parametrize("regime", ["none", "global", "per_window"])
    def test_matches_naive(self, series_values, regime):
        source = WindowSource(series_values[:400], 30, regime)
        query = np.array(source.window_block(50, 51)[0])
        profile = euclidean_distance_profile(source, query)
        assert profile.shape == (source.count,)
        for position in range(0, source.count, 23):
            expected = euclidean_distance(source.window(position), query)
            assert np.isclose(profile[position], expected, atol=1e-6)

    def test_self_distance_zero(self, source_global, query_of):
        profile = euclidean_distance_profile(source_global, query_of(99))
        assert profile[99] < 1e-6

    def test_non_negative(self, source_global, query_of):
        profile = euclidean_distance_profile(source_global, query_of(5))
        assert np.all(profile >= 0.0)

    def test_per_window_with_constant_windows(self):
        values = np.concatenate([np.full(40, 1.0), np.random.default_rng(0).normal(size=60)])
        source = WindowSource(values, 20, "per_window")
        query = np.array(source.window_block(60, 61)[0])
        profile = euclidean_distance_profile(source, query)
        # Constant windows normalize to zeros: distance = ||query||.
        expected = float(np.sqrt(np.sum(query**2)))
        assert np.isclose(profile[0], expected, atol=1e-6)


class TestChebyshevProfile:
    def test_matches_naive(self, source_global, query_of):
        query = query_of(10)
        profile = chebyshev_distance_profile(source_global, query)
        for position in range(0, source_global.count, 97):
            expected = float(np.max(np.abs(source_global.window(position) - query)))
            assert np.isclose(profile[position], expected)

    def test_shape(self, source_global, query_of):
        profile = chebyshev_distance_profile(source_global, query_of(0))
        assert profile.shape == (source_global.count,)


class TestThresholdSearch:
    def test_self_found(self, source_global, query_of):
        hits = euclidean_threshold_search(source_global, query_of(31), 0.1)
        assert 31 in hits

    def test_tiny_radius_tolerates_fft_roundoff(self, source_global, query_of):
        # The FFT profile carries ~1e-8 round-off, so an exact-zero
        # radius is not meaningful; a tiny positive one must find self.
        hits = euclidean_threshold_search(source_global, query_of(31), 1e-6)
        assert 31 in hits

    def test_negative_radius_rejected(self, source_global, query_of):
        with pytest.raises(InvalidParameterError):
            euclidean_threshold_search(source_global, query_of(0), -1.0)


class TestIntroComparison:
    def test_no_false_negatives(self, source_global, query_of):
        # Section 3.1: the eps*sqrt(l) Euclidean ball loses no twins.
        for position in (10, 440, 990):
            comparison = twin_vs_euclidean_comparison(
                source_global, query_of(position), 0.4
            )
            assert comparison.missed_twins == 0

    def test_euclidean_superset(self, source_global, query_of):
        comparison = twin_vs_euclidean_comparison(source_global, query_of(77), 0.4)
        assert comparison.euclidean_count >= comparison.twin_count

    def test_excess_factor(self, source_global, query_of):
        comparison = twin_vs_euclidean_comparison(source_global, query_of(77), 0.4)
        assert comparison.excess_factor >= 1.0

    def test_radius_formula(self, source_global, query_of):
        comparison = twin_vs_euclidean_comparison(source_global, query_of(3), 0.25)
        assert np.isclose(
            comparison.euclidean_radius, euclidean_threshold_for(0.25, LENGTH)
        )

    def test_counts_match_profiles(self, source_global, query_of):
        query = query_of(123)
        epsilon = 0.5
        comparison = twin_vs_euclidean_comparison(source_global, query, epsilon)
        chebyshev = chebyshev_distance_profile(source_global, query)
        assert comparison.twin_count == int(np.count_nonzero(chebyshev <= epsilon))


class TestSpikeDiscrepancy:
    def test_reports_worst_timestamps(self):
        query = np.zeros(20)
        window = np.zeros(20)
        window[7] = 3.0
        window[2] = -1.0
        report = spike_discrepancy(query, window, top=2)
        assert report["worst_timestamps"][0] == 7
        assert report["chebyshev"] == 3.0
        assert report["worst_differences"][0] == 3.0

    def test_euclidean_value(self):
        report = spike_discrepancy([0.0, 0.0], [3.0, 4.0])
        assert np.isclose(report["euclidean"], 5.0)

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError):
            spike_discrepancy([0.0], [0.0, 1.0])
