"""Tests for the EXPERIMENTS.md record generator."""

import pytest

from repro.bench import experiments as exp
from repro.bench import record


@pytest.fixture(scope="module")
def ctx():
    return exp.ExperimentContext(dataset="insect", scale=0.02, query_count=2)


class TestSections:
    def test_figure_section_contains_series(self, ctx):
        data = exp.run_figure4(
            ctx, epsilons=(0.5, 1.0), methods=("sweepline", "tsindex")
        )
        section = record.figure_section(data)
        assert "### fig4 / insect" in section
        assert "tsindex (ms)" in section
        assert "Shape checks:" in section

    def test_claims_cover_all_experiments(self):
        assert set(record.PAPER_CLAIMS) >= {
            "fig4", "fig5", "fig6", "fig7", "fig8a", "fig8b", "intro",
        }

    def test_run_dataset_sections(self, ctx):
        sections = record.run_dataset(ctx)
        text = "\n".join(sections)
        for marker in ("intro /", "fig4 /", "fig5 /", "fig6 /", "fig7 /", "fig8 /"):
            assert marker in text

    def test_generate_markdown_header(self, ctx):
        document = record.generate_markdown([ctx])
        assert document.startswith("## Measured results")
        assert "Dataset `insect`" in document
        assert "Paper claims referenced above" in document


class TestCli:
    def test_writes_file(self, tmp_path):
        output = tmp_path / "record.md"
        code = record.main(
            [
                "--output", str(output),
                "--queries", "2",
                "--scale-insect", "0.02",
                "--scale-eeg", "0.003",
            ]
        )
        assert code == 0
        text = output.read_text()
        assert "Dataset `insect`" in text
        assert "Dataset `eeg`" in text

    def test_stdout(self, capsys):
        code = record.main(
            [
                "--queries", "1",
                "--scale-insect", "0.02",
                "--scale-eeg", "0.003",
            ]
        )
        assert code == 0
        assert "Measured results" in capsys.readouterr().out
