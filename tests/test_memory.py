"""Tests for the index memory footprint estimator (Figure 8a)."""

import pytest

from repro.bench.memory import index_memory_bytes, memory_report
from repro.exceptions import InvalidParameterError


class TestFootprints:
    def test_tsindex_positive(self, tsindex_global):
        assert index_memory_bytes(tsindex_global) > 0

    def test_kvindex_positive(self, kvindex_global):
        assert index_memory_bytes(kvindex_global) > 0

    def test_isax_positive(self, isax_global):
        assert index_memory_bytes(isax_global) > 0

    def test_sweepline_zero(self, sweepline_global):
        assert index_memory_bytes(sweepline_global) == 0

    def test_figure8_ordering(self, tsindex_global, kvindex_global, isax_global):
        # Figure 8a: KV-Index smallest, TS-Index largest.
        kv = index_memory_bytes(kvindex_global)
        ts = index_memory_bytes(tsindex_global)
        isax = index_memory_bytes(isax_global)
        assert kv < ts
        assert isax < ts

    def test_caches_add_bytes(self, tsindex_global, query_of):
        # Run a query so the envelope caches materialize.
        tsindex_global.search(query_of(0), 0.2)
        base = index_memory_bytes(tsindex_global)
        with_caches = index_memory_bytes(tsindex_global, include_caches=True)
        assert with_caches > base

    def test_unknown_type_rejected(self):
        with pytest.raises(InvalidParameterError):
            index_memory_bytes(object())

    def test_memory_report_units(self, tsindex_global, kvindex_global):
        report = memory_report(
            {"tsindex": tsindex_global, "kvindex": kvindex_global}
        )
        assert set(report) == {"tsindex", "kvindex"}
        assert report["tsindex"] == (
            index_memory_bytes(tsindex_global) / (1024.0 * 1024.0)
        )
