"""Recovery-edge coverage: crashes and storage faults injected at the
exact durability boundaries, with the real recovery code asserted
byte-exact afterwards."""

import errno
import os

import numpy as np
import pytest

from repro.core.tsindex import TSIndex
from repro.exceptions import (
    SerializationError,
    SimulatedCrashError,
    StorageError,
)
from repro.faults import failpoints
from repro.live import LiveTwinIndex
from repro.live.wal import MANIFEST_NAME

LENGTH = 16
SEAL = 48


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.reset()
    yield
    failpoints.reset()


def make_plane(path, readings=300, seed=0):
    """A durable plane with at least one sealed segment, plus the acked
    stream that went in."""
    rng = np.random.default_rng(seed)
    live = LiveTwinIndex.create(
        str(path), length=LENGTH, seal_threshold=SEAL,
        background_compaction=False,
    )
    fed = np.cumsum(rng.normal(size=readings))
    live.append(fed)
    assert live.seal_count >= 1
    return live, fed


def assert_exact(live, fed):
    """The plane's state and answers equal a from-scratch oracle."""
    values = np.asarray(live.values)
    assert np.array_equal(values, fed[: values.size])
    oracle = TSIndex.build(values, length=LENGTH, normalization="none")
    query = values[40:40 + LENGTH]
    epsilon = 0.4 * float(np.std(values))
    got, want = live.search(query, epsilon), oracle.search(query, epsilon)
    assert np.array_equal(got.positions, want.positions)
    assert np.array_equal(got.distances, want.distances)


class TestManifestCommitCrash:
    def test_partial_manifest_tmp_does_not_break_recovery(self, tmp_path):
        # Crash after writing only part of the manifest tmp file: the
        # committed manifest must win and the torn tmp must be ignored.
        path = tmp_path / "live"
        live, fed = make_plane(path)
        with failpoints.armed(
            "manifest.commit", payload={"truncate_tmp_to": 4}
        ):
            with pytest.raises(SimulatedCrashError):
                live.append(np.cumsum(np.ones(2 * SEAL)) + fed[-1])
        live.abandon()
        tmp = str(tmp_path / "live" / (MANIFEST_NAME + ".tmp"))
        assert os.path.exists(tmp) and os.path.getsize(tmp) == 4
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        # Everything acked before the crash survives; the WAL replays
        # the in-flight readings past the un-renamed manifest.
        assert recovered.series_length >= fed.size
        stream = np.concatenate(
            [fed, np.cumsum(np.ones(2 * SEAL)) + fed[-1]]
        )
        assert_exact(recovered, stream)
        recovered.close()

    def test_crash_between_segment_fsync_and_manifest_commit(self, tmp_path):
        # The seal writes the archive, then commits the manifest; a kill
        # between the two leaves an orphan archive that recovery sweeps
        # while the WAL replays the sealed-but-uncommitted readings.
        path = tmp_path / "live"
        live, fed = make_plane(path)
        before = {s.file for s in live.segments}
        with failpoints.armed("manifest.commit", crash=True):
            with pytest.raises(SimulatedCrashError):
                live.append(np.cumsum(np.ones(2 * SEAL)) + fed[-1])
        live.abandon()
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        files = {n for n in os.listdir(path) if n.endswith(".npz")}
        assert files == {s.file for s in recovered.segments}
        assert before <= files or len(files) >= len(before)
        stream = np.concatenate(
            [fed, np.cumsum(np.ones(2 * SEAL)) + fed[-1]]
        )
        assert_exact(recovered, stream)
        recovered.close()


class TestWalFaults:
    def test_enospc_mid_append_is_typed_and_rolled_back(self, tmp_path):
        path = tmp_path / "live"
        live, fed = make_plane(path)
        extra = np.cumsum(np.ones(10)) + fed[-1]
        with failpoints.armed("wal.append", error="enospc"):
            with pytest.raises(StorageError) as info:
                live.append(extra)
        assert isinstance(info.value.__cause__, OSError)
        assert info.value.__cause__.errno == errno.ENOSPC
        # The failed append is fully rolled back: the plane stays
        # serviceable and the journal stays decodable.
        live.append(extra)
        assert_exact(live, np.concatenate([fed, extra]))
        live.close()
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert_exact(recovered, np.concatenate([fed, extra]))
        recovered.close()

    def test_torn_enospc_write_truncated_from_journal(self, tmp_path):
        # A torn write that partially lands before ENOSPC: the rollback
        # truncates the partial record so the WAL never goes corrupt.
        path = tmp_path / "live"
        live, fed = make_plane(path)
        extra = np.cumsum(np.ones(10)) + fed[-1]
        with failpoints.armed(
            "wal.append",
            payload={"torn_after_bytes": 9, "error": "enospc"},
        ):
            with pytest.raises(StorageError):
                live.append(extra)
        live.append(extra)
        live.close()
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert_exact(recovered, np.concatenate([fed, extra]))
        recovered.close()

    def test_torn_write_crash_drops_only_the_tail(self, tmp_path):
        # A torn write followed by a kill: replay must drop the
        # incomplete record and keep every acked reading.
        path = tmp_path / "live"
        live, fed = make_plane(path)
        with failpoints.armed(
            "wal.append", payload={"torn_after_bytes": 7}
        ):
            with pytest.raises(SimulatedCrashError):
                live.append(np.ones(10) + fed[-1])
        live.abandon()
        recovered = LiveTwinIndex.recover(path, background_compaction=False)
        assert recovered.series_length >= fed.size
        assert_exact(recovered, fed)
        recovered.close()


class TestDoubleRecovery:
    def test_recover_recover_is_bitwise_idempotent(self, tmp_path):
        path = tmp_path / "live"
        live, fed = make_plane(path)
        with failpoints.armed("live.seal", crash=True):
            with pytest.raises(SimulatedCrashError):
                live.append(np.cumsum(np.ones(2 * SEAL)) + fed[-1])
        live.abandon()

        first = LiveTwinIndex.recover(path, background_compaction=False)
        values_a = np.array(first.values)
        segments_a = [(s.start, s.stop, s.file) for s in first.segments]
        first.close()
        manifest_a = (tmp_path / "live" / MANIFEST_NAME).read_bytes()

        second = LiveTwinIndex.recover(path, background_compaction=False)
        values_b = np.array(second.values)
        segments_b = [(s.start, s.stop, s.file) for s in second.segments]
        second.close()
        manifest_b = (tmp_path / "live" / MANIFEST_NAME).read_bytes()

        assert np.array_equal(values_a, values_b)
        assert segments_a == segments_b
        assert manifest_a == manifest_b


class TestQuarantine:
    def corrupt_segment(self, path, position=-1):
        live = LiveTwinIndex.recover(path, background_compaction=False)
        target = live.segments[position].file
        live.close()
        full = os.path.join(str(path), target)
        with open(full, "wb") as handle:
            handle.write(b"not an archive")
        return target

    def test_strict_recovery_stays_loud(self, tmp_path):
        path = tmp_path / "live"
        live, _ = make_plane(path)
        live.close()
        self.corrupt_segment(path)
        with pytest.raises(StorageError):
            LiveTwinIndex.recover(path, background_compaction=False)

    def test_quarantine_moves_aside_and_serves_remainder(self, tmp_path):
        path = tmp_path / "live"
        live, fed = make_plane(path, readings=400)
        live.close()
        # Corrupt the *last* segment: quarantine truncates the position
        # axis there, so everything before it keeps serving.
        target = self.corrupt_segment(path, position=-1)
        recovered = LiveTwinIndex.recover(
            path, background_compaction=False, strict=False
        )
        # The corrupt archive (and everything after it on the position
        # axis) moved into quarantine/ — never deleted.
        qdir = tmp_path / "live" / "quarantine"
        assert (qdir / target).exists()
        assert target in recovered.stats()["quarantined_files"]
        # The remainder serves, and accepts fresh appends.
        survivors = np.asarray(recovered.values)
        assert survivors.size < fed.size
        assert np.array_equal(survivors, fed[: survivors.size])
        extra = np.cumsum(np.ones(30)) + float(survivors[-1] if survivors.size else 0.0)
        recovered.append(extra)
        assert_exact(recovered, np.concatenate([survivors, extra]))
        recovered.close()

    def test_quarantined_plane_recovers_cleanly_afterwards(self, tmp_path):
        path = tmp_path / "live"
        live, fed = make_plane(path, readings=400)
        live.close()
        self.corrupt_segment(path, position=-1)
        degraded = LiveTwinIndex.recover(
            path, background_compaction=False, strict=False
        )
        survivors = np.asarray(degraded.values).copy()
        degraded.close()
        # After quarantine the on-disk state is consistent again: a
        # plain strict recover succeeds.
        clean = LiveTwinIndex.recover(path, background_compaction=False)
        assert np.array_equal(np.asarray(clean.values), survivors)
        clean.close()
