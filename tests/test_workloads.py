"""Tests for query workload generation (Section 6.1 protocol)."""

import numpy as np
import pytest

from repro.bench.workloads import (
    QueryWorkload,
    generate_workload,
    workload_for_source,
)
from repro.exceptions import InvalidParameterError

from conftest import LENGTH


class TestGenerateWorkload:
    def test_count_and_length(self, series_values):
        workload = generate_workload(series_values, count=10, length=40, seed=0)
        assert len(workload) == 10
        assert all(q.size == 40 for q in workload)
        assert workload.length == 40

    def test_deterministic(self, series_values):
        a = generate_workload(series_values, count=5, length=30, seed=7)
        b = generate_workload(series_values, count=5, length=30, seed=7)
        assert a.positions == b.positions
        for qa, qb in zip(a, b):
            assert np.array_equal(qa, qb)

    def test_seed_changes_positions(self, series_values):
        a = generate_workload(series_values, count=5, length=30, seed=7)
        b = generate_workload(series_values, count=5, length=30, seed=8)
        assert a.positions != b.positions

    def test_queries_are_subsequences(self, series_values):
        workload = generate_workload(series_values, count=5, length=30, seed=1)
        for position, query in zip(workload.positions, workload.queries):
            assert np.array_equal(query, series_values[position : position + 30])

    def test_no_replacement_when_possible(self, series_values):
        workload = generate_workload(series_values, count=50, length=30, seed=2)
        assert len(set(workload.positions)) == 50

    def test_replacement_on_tiny_series(self):
        workload = generate_workload(np.arange(12.0), count=30, length=10, seed=0)
        assert len(workload) == 30

    def test_too_short_series(self):
        with pytest.raises(InvalidParameterError):
            generate_workload(np.arange(5.0), count=1, length=10)

    def test_subset(self, series_values):
        workload = generate_workload(series_values, count=10, length=30, seed=3)
        subset = workload.subset(4)
        assert len(subset) == 4
        assert subset.positions == workload.positions[:4]

    def test_subset_larger_than_workload(self, series_values):
        workload = generate_workload(series_values, count=3, length=30, seed=3)
        assert len(workload.subset(100)) == 3


class TestWorkloadForSource:
    def test_queries_in_source_domain(self, source_global):
        workload = workload_for_source(source_global, count=6, seed=9)
        for position, query in zip(workload.positions, workload.queries):
            assert np.allclose(
                query, source_global.window_block(position, position + 1)[0]
            )

    def test_self_matches_guaranteed(self, source_global, tsindex_global):
        workload = workload_for_source(source_global, count=6, seed=10)
        for position, query in zip(workload.positions, workload.queries):
            assert position in tsindex_global.search(query, 0.0).positions

    def test_length_matches_source(self, source_per_window):
        workload = workload_for_source(source_per_window, count=3, seed=0)
        assert workload.length == LENGTH
