"""Compactor retry/backoff semantics: failed merges retry with bounded
backoff, an exhausted budget never poisons the plane, and a simulated
crash stops the background thread cold."""

import time

import numpy as np
import pytest

from repro.exceptions import SimulatedCrashError
from repro.faults import failpoints
from repro.live import LiveTwinIndex
from repro.live.compaction import Compactor


@pytest.fixture(autouse=True)
def _clean_registry():
    failpoints.reset()
    yield
    failpoints.reset()


class TestRetry:
    def test_transient_failures_retry_to_success(self):
        calls = []

        def work():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")

        compactor = Compactor(work, max_retries=5, backoff=0.001)
        compactor.schedule()
        compactor.wait(timeout=10.0)
        compactor.close()
        assert len(calls) == 3
        assert compactor.retry_count == 2
        assert compactor.failure_count == 0
        assert compactor.last_error is None

    def test_budget_exhaustion_abandons_without_poison(self):
        def work():
            raise RuntimeError("permanent")

        compactor = Compactor(work, max_retries=2, backoff=0.001)
        compactor.schedule()
        compactor.wait(timeout=10.0)  # must NOT raise the work error
        assert compactor.failure_count == 1
        assert compactor.retry_count == 2
        assert "permanent" in repr(compactor.last_error)
        stats = compactor.stats()
        assert stats["failures"] == 1 and stats["crashed"] is False
        compactor.close()  # must NOT raise either

    def test_next_schedule_starts_a_fresh_budget(self):
        attempts = []
        fail_first_run = [True]

        def work():
            attempts.append(1)
            if fail_first_run[0]:
                raise RuntimeError("bad run")

        compactor = Compactor(work, max_retries=1, backoff=0.001)
        compactor.schedule()
        compactor.wait(timeout=10.0)
        assert compactor.failure_count == 1
        fail_first_run[0] = False
        compactor.schedule()
        compactor.wait(timeout=10.0)
        compactor.close()
        # The abandoned run did not latch: the fresh run succeeded and
        # cleared the recorded error.
        assert compactor.last_error is None
        assert compactor.failure_count == 1

    def test_close_interrupts_backoff_sleep(self):
        def work():
            raise RuntimeError("always")

        compactor = Compactor(work, max_retries=5, backoff=30.0)
        compactor.schedule()
        time.sleep(0.05)  # let the first attempt fail into its backoff
        started = time.perf_counter()
        compactor.close()
        assert time.perf_counter() - started < 5.0

    def test_simulated_crash_stops_thread_and_schedule_noops(self):
        def work():
            raise SimulatedCrashError("kill")

        compactor = Compactor(work, max_retries=5, backoff=0.001)
        compactor.schedule()
        compactor.wait(timeout=10.0)
        assert compactor.crashed is True
        assert compactor.stats()["crashed"] is True
        assert compactor.retry_count == 0  # a kill is not retried
        compactor.schedule()  # must no-op, not restart the dead thread
        compactor.wait(timeout=10.0)
        compactor.close()


class TestPlaneIntegration:
    def test_merge_failures_leave_plane_serviceable(self, tmp_path):
        rng = np.random.default_rng(3)
        live = LiveTwinIndex.create(
            str(tmp_path / "live"), length=16, seal_threshold=48,
            max_segments=2,
        )
        live._compactor._max_retries = 1
        live._compactor._backoff = 0.001
        fed = np.cumsum(rng.normal(size=300))
        failpoints.arm("compaction.merge", error=RuntimeError("merge down"))
        live.append(fed)
        live.compact(timeout=10.0)
        assert live.stats()["compaction"]["failures"] >= 1
        # Seals and appends keep working while merges fail ...
        more = np.cumsum(rng.normal(size=200)) + fed[-1]
        live.append(more)
        assert live.seal_count >= 2
        # ... and once the fault clears, compaction succeeds again.
        failpoints.disarm("compaction.merge")
        live.compact(timeout=10.0)
        assert live.stats()["compaction"]["last_error"] is None
        assert len(live.segments) <= 2
        stream = np.concatenate([fed, more])
        assert np.array_equal(np.asarray(live.values), stream)
        result = live.search(stream[50:66], 0.3)
        assert len(result) >= 1
        live.close()

    def test_retries_surface_in_metrics(self):
        from repro.obs import MetricsRegistry, set_default_registry
        from repro.obs.metrics import default_registry

        registry = MetricsRegistry("repro")
        previous = default_registry()
        set_default_registry(registry)
        try:
            def work():
                raise RuntimeError("nope")

            compactor = Compactor(work, max_retries=2, backoff=0.001)
            compactor.schedule()
            compactor.wait(timeout=10.0)
            compactor.close()
            assert registry.get(
                "repro_compaction_retries_total"
            ).value == 2
            assert registry.get(
                "repro_compaction_failures_total"
            ).value == 1
        finally:
            set_default_registry(previous)
