"""Unit tests for the repro.obs metrics core (counters, gauges,
histograms, labels, registries, null objects, handle caching)."""

import threading

import pytest

from repro.exceptions import InvalidParameterError
from repro.obs import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    default_registry,
    resolve_registry,
    set_default_registry,
)
from repro.obs.metrics import HandleCache


@pytest.fixture
def registry():
    return MetricsRegistry("test")


class TestCounter:
    def test_starts_at_zero_and_increments(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self, registry):
        counter = registry.counter("requests_total", "Requests.")
        with pytest.raises(InvalidParameterError):
            counter.inc(-1)

    def test_labeled_children_are_independent(self, registry):
        family = registry.counter("hits_total", "Hits.", labels=("mode",))
        family.labels(mode="search").inc(2)
        family.labels(mode="knn").inc()
        assert family.labels(mode="search").value == 2
        assert family.labels(mode="knn").value == 1

    def test_labels_get_or_create_is_stable(self, registry):
        family = registry.counter("hits_total", "Hits.", labels=("mode",))
        assert family.labels(mode="x") is family.labels(mode="x")

    def test_leaf_rejects_labels_call(self, registry):
        counter = registry.counter("plain_total", "Plain.")
        with pytest.raises(InvalidParameterError):
            counter.labels(mode="x")

    def test_family_rejects_direct_increment(self, registry):
        family = registry.counter("hits_total", "Hits.", labels=("mode",))
        with pytest.raises(InvalidParameterError):
            family.inc()

    def test_labels_must_match_declared_names(self, registry):
        family = registry.counter("hits_total", "Hits.", labels=("mode",))
        with pytest.raises(InvalidParameterError):
            family.labels(other="x")

    def test_concurrent_increments_are_exact(self, registry):
        counter = registry.counter("spins_total", "Spins.")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(2000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 2000


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "Depth.")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12

    def test_callback_gauge_evaluates_at_read(self, registry):
        state = {"n": 1}
        gauge = registry.gauge("lag", "Lag.")
        gauge.set_function(lambda: state["n"])
        assert gauge.value == 1
        state["n"] = 7
        assert gauge.value == 7

    def test_set_clears_callback(self, registry):
        gauge = registry.gauge("lag", "Lag.")
        gauge.set_function(lambda: 99)
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        hist = registry.histogram(
            "lat_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        counts, total, count = hist.snapshot()
        assert counts == [1, 1, 1]  # <=0.1, <=1.0, +Inf
        assert count == 3
        assert total == pytest.approx(5.55)

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_rejects_unsorted_buckets(self, registry):
        with pytest.raises(InvalidParameterError):
            registry.histogram("bad", "Bad.", buckets=(1.0, 0.5))

    def test_quantiles_interpolate(self, registry):
        hist = registry.histogram(
            "lat_seconds", "Latency.", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5,) * 50 + (1.5,) * 40 + (3.0,) * 10:
            hist.observe(value)
        pcts = hist.percentiles()
        assert 0.0 < pcts["p50"] <= 1.0
        assert 1.0 < pcts["p90"] <= 2.0
        assert 2.0 < pcts["p99"] <= 4.0

    def test_empty_quantile_is_zero(self, registry):
        hist = registry.histogram("lat_seconds", "Latency.")
        assert hist.quantile(0.5) == 0.0

    def test_timer_records_one_observation(self, registry):
        hist = registry.histogram("lat_seconds", "Latency.")
        with hist.time():
            pass
        _, total, count = hist.snapshot()
        assert count == 1
        assert total >= 0.0

    def test_labeled_children_inherit_buckets(self, registry):
        family = registry.histogram(
            "lat_seconds", "Latency.", labels=("mode",), buckets=(0.5, 2.0)
        )
        child = family.labels(mode="search")
        assert child.buckets == (0.5, 2.0)

    def test_concurrent_observations_are_exact(self, registry):
        hist = registry.histogram("lat_seconds", "Latency.")
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.001) for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts, _, count = hist.snapshot()
        assert count == 8 * 1000
        assert sum(counts) == 8 * 1000


class TestRegistry:
    def test_get_or_create_returns_same_instance(self, registry):
        first = registry.counter("a_total", "A.")
        again = registry.counter("a_total", "A.")
        assert first is again

    def test_type_mismatch_raises(self, registry):
        registry.counter("a_total", "A.")
        with pytest.raises(InvalidParameterError):
            registry.gauge("a_total", "A.")

    def test_label_mismatch_raises(self, registry):
        registry.counter("a_total", "A.", labels=("x",))
        with pytest.raises(InvalidParameterError):
            registry.counter("a_total", "A.", labels=("y",))

    def test_invalid_name_rejected(self, registry):
        with pytest.raises(InvalidParameterError):
            registry.counter("bad name", "Bad.")

    def test_collect_is_sorted_by_name(self, registry):
        registry.counter("zz_total", "Z.")
        registry.counter("aa_total", "A.")
        names = [metric.name for metric in registry.collect()]
        assert names == sorted(names)

    def test_contains_len_unregister_clear(self, registry):
        registry.counter("a_total", "A.")
        registry.gauge("b", "B.")
        assert "a_total" in registry and len(registry) == 2
        registry.unregister("a_total")
        assert "a_total" not in registry
        registry.clear()
        assert len(registry) == 0

    def test_age_survives_wall_clock_steps(self, registry, monkeypatch):
        """Regression: age_seconds (the denominator of every exported
        rate) derives from the monotonic clock, so an NTP wall-clock
        step can neither zero it nor inflate it by hours."""
        import time as time_module

        before = registry.age_seconds
        # Step the wall clock an hour backwards, then forwards a day.
        real_time = time_module.time
        monkeypatch.setattr(time_module, "time", lambda: real_time() - 3600)
        stepped_back = registry.age_seconds
        monkeypatch.setattr(time_module, "time", lambda: real_time() + 86400)
        stepped_forward = registry.age_seconds
        assert before <= stepped_back <= stepped_forward
        assert stepped_forward < 60  # not the +86400 wall-clock jump


class TestNullObjects:
    def test_null_registry_metrics_are_noops(self):
        counter = NULL_REGISTRY.counter("x_total", "X.")
        counter.inc()
        counter.labels(mode="a").inc()
        gauge = NULL_REGISTRY.gauge("g", "G.")
        gauge.set(5)
        hist = NULL_REGISTRY.histogram("h", "H.")
        with hist.time():
            hist.observe(1.0)
        assert list(NULL_REGISTRY.collect()) == []

    def test_resolve_registry_modes(self):
        own = MetricsRegistry("own")
        assert resolve_registry(own) is own
        assert resolve_registry(False) is NULL_REGISTRY
        assert resolve_registry(None) is default_registry()
        assert resolve_registry(True) is default_registry()


class TestDefaultRegistryAndHandleCache:
    def test_set_default_registry_swaps_and_restores(self):
        original = default_registry()
        replacement = MetricsRegistry("swap")
        try:
            set_default_registry(replacement)
            assert default_registry() is replacement
        finally:
            set_default_registry(original)
        assert default_registry() is original

    def test_handle_cache_tracks_default_swap(self):
        calls = []

        def build(registry):
            calls.append(registry)
            return registry.counter("hc_total", "HC.")

        handles = HandleCache(build)
        original = default_registry()
        try:
            first = handles()
            assert handles() is first  # cached, no rebuild
            assert len(calls) == 1
            swap = MetricsRegistry("swap")
            set_default_registry(swap)
            second = handles()
            assert second is not first
            assert calls[-1] is swap
        finally:
            set_default_registry(original)
        assert handles() is not second
