"""Tests for the distance kernels (Definition 1 and Section 3.1/3.2)."""

import numpy as np
import pytest

from repro.core.distance import (
    chebyshev_distance,
    chebyshev_distance_early_abandon,
    chebyshev_distance_reordered,
    chebyshev_matches,
    chebyshev_profile,
    euclidean_distance,
    euclidean_threshold_for,
    lp_distance,
    pairwise_chebyshev,
    reorder_by_magnitude,
)
from repro.exceptions import InvalidParameterError


class TestChebyshev:
    def test_basic(self):
        assert chebyshev_distance([1.0, 2.0, 3.0], [1.5, 0.0, 3.0]) == 2.0

    def test_identical(self):
        assert chebyshev_distance([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_symmetric(self):
        a, b = [1.0, 5.0, -2.0], [0.0, 1.0, 4.0]
        assert chebyshev_distance(a, b) == chebyshev_distance(b, a)

    def test_triangle_inequality(self):
        rng = np.random.default_rng(0)
        a, b, c = rng.normal(size=(3, 40))
        assert chebyshev_distance(a, c) <= (
            chebyshev_distance(a, b) + chebyshev_distance(b, c) + 1e-12
        )

    def test_length_mismatch(self):
        with pytest.raises(InvalidParameterError, match="equal length"):
            chebyshev_distance([1.0], [1.0, 2.0])

    def test_single_point(self):
        assert chebyshev_distance([3.0], [-1.0]) == 4.0


class TestEarlyAbandon:
    def test_exact_when_within_threshold(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.5, 1.5, 1.0])
        full = chebyshev_distance(a, b)
        assert chebyshev_distance_early_abandon(a, b, 2.0) == full

    def test_lower_bound_when_abandoned(self):
        a = np.zeros(10)
        b = np.concatenate(([5.0], np.zeros(9)))
        result = chebyshev_distance_early_abandon(a, b, 1.0)
        assert result > 1.0
        assert result <= chebyshev_distance(a, b)

    def test_abandon_verdict_matches_full(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            a, b = rng.normal(size=(2, 30))
            epsilon = rng.uniform(0.1, 3.0)
            full = chebyshev_distance(a, b)
            fast = chebyshev_distance_early_abandon(a, b, epsilon)
            assert (full <= epsilon) == (fast <= epsilon)

    def test_reordered_verdict_matches_full(self):
        rng = np.random.default_rng(2)
        for _ in range(50):
            a, b = rng.normal(size=(2, 30))
            epsilon = rng.uniform(0.1, 3.0)
            full = chebyshev_distance(a, b)
            fast = chebyshev_distance_reordered(a, b, epsilon)
            assert (full <= epsilon) == (fast <= epsilon)

    def test_reorder_by_magnitude_order(self):
        order = reorder_by_magnitude([0.1, -5.0, 2.0])
        assert order.tolist() == [1, 2, 0]

    def test_reordered_with_explicit_order(self):
        a = np.array([0.0, 0.0, 9.0])
        b = np.array([0.0, 0.0, 0.0])
        distance = chebyshev_distance_reordered(a, b, 1.0, order=np.array([2, 0, 1]))
        assert distance == 9.0


class TestEuclideanAndLp:
    def test_euclidean_basic(self):
        assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == 5.0

    def test_lp_one_is_manhattan(self):
        assert lp_distance([0.0, 0.0], [1.0, 2.0], 1) == 3.0

    def test_lp_two_matches_euclidean(self):
        a, b = [1.0, -2.0, 0.5], [0.0, 4.0, 2.0]
        assert np.isclose(lp_distance(a, b, 2), euclidean_distance(a, b))

    def test_lp_inf_is_chebyshev(self):
        a, b = [1.0, -2.0, 0.5], [0.0, 4.0, 2.0]
        assert lp_distance(a, b, np.inf) == chebyshev_distance(a, b)

    def test_lp_rejects_below_one(self):
        with pytest.raises(InvalidParameterError):
            lp_distance([1.0], [2.0], 0.5)

    def test_lp_monotone_in_p(self):
        # For fixed vectors, Lp distance is non-increasing in p.
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=(2, 25))
        previous = lp_distance(a, b, 1)
        for p in (2, 3, 8, np.inf):
            current = lp_distance(a, b, p)
            assert current <= previous + 1e-9
            previous = current


class TestEquivalenceBound:
    def test_threshold_formula(self):
        assert euclidean_threshold_for(0.5, 100) == 0.5 * 10.0

    def test_chebyshev_implies_euclidean(self):
        # Section 3.1: d∞ <= eps  =>  d2 <= eps*sqrt(l).
        rng = np.random.default_rng(4)
        for _ in range(100):
            a = rng.normal(size=20)
            b = a + rng.uniform(-0.3, 0.3, size=20)
            epsilon = chebyshev_distance(a, b)
            assert euclidean_distance(a, b) <= euclidean_threshold_for(
                epsilon, 20
            ) + 1e-9

    def test_invalid_length(self):
        with pytest.raises(InvalidParameterError):
            euclidean_threshold_for(1.0, 0)


class TestBatchKernels:
    def test_profile_matches_scalar(self):
        rng = np.random.default_rng(5)
        windows = rng.normal(size=(12, 8))
        query = rng.normal(size=8)
        profile = chebyshev_profile(windows, query)
        for i in range(12):
            assert np.isclose(profile[i], chebyshev_distance(windows[i], query))

    def test_profile_empty(self):
        assert chebyshev_profile(np.zeros((0, 4)), np.zeros(4)).size == 0

    def test_profile_shape_mismatch(self):
        with pytest.raises(InvalidParameterError):
            chebyshev_profile(np.zeros((3, 5)), np.zeros(4))

    def test_matches_mask(self):
        windows = np.array([[0.0, 0.0], [1.0, 0.0], [3.0, 0.0]])
        mask = chebyshev_matches(windows, np.zeros(2), 1.0)
        assert mask.tolist() == [True, True, False]

    def test_pairwise_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(6)
        windows = rng.normal(size=(7, 10))
        matrix = pairwise_chebyshev(windows)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_pairwise_matches_scalar(self):
        rng = np.random.default_rng(7)
        windows = rng.normal(size=(5, 6))
        matrix = pairwise_chebyshev(windows)
        for i in range(5):
            for j in range(5):
                assert np.isclose(
                    matrix[i, j], chebyshev_distance(windows[i], windows[j])
                )

    def test_pairwise_empty(self):
        assert pairwise_chebyshev(np.zeros((0, 3))).shape == (0, 0)

    def test_pairwise_rejects_1d(self):
        with pytest.raises(InvalidParameterError):
            pairwise_chebyshev(np.zeros(5))
