"""Tests for the thread-safe LRU query cache."""

import threading

import numpy as np
import pytest

from repro.engine import QueryCache, query_key
from repro.exceptions import InvalidParameterError


class TestQueryKey:
    def test_equal_values_equal_keys(self):
        a = query_key([1.0, 2.0, 3.0], 0.5)
        b = query_key(np.asarray([1.0, 2.0, 3.0]), 0.5)
        assert a == b

    def test_different_values_different_keys(self):
        assert query_key([1.0, 2.0], 0.5) != query_key([1.0, 2.1], 0.5)

    def test_epsilon_distinguishes(self):
        assert query_key([1.0], 0.5) != query_key([1.0], 0.25)

    def test_options_distinguish(self):
        base = query_key([1.0], 0.5)
        named = query_key([1.0], 0.5, index="a")
        other = query_key([1.0], 0.5, index="b")
        assert base != named != other

    def test_option_order_irrelevant(self):
        assert query_key([1.0], 0.5, a=1, b=2) == query_key([1.0], 0.5, b=2, a=1)


class TestQueryCache:
    def test_hit_returns_cached_object(self):
        cache = QueryCache(capacity=4)
        key = query_key([1.0, 2.0], 0.5)
        sentinel = object()
        cache.put(key, sentinel)
        assert cache.get(key) is sentinel

    def test_miss_returns_default(self):
        cache = QueryCache(capacity=4)
        assert cache.get(("nope",)) is None
        assert cache.get(("nope",), default=42) == 42

    def test_eviction_at_capacity_is_lru(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None  # evicted
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2
        assert cache.stats().evictions == 1

    def test_put_refresh_does_not_evict(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, not insert
        assert cache.stats().evictions == 0
        assert cache.get("a") == 10

    def test_stats_counters(self):
        cache = QueryCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(2 / 3)
        assert stats.size == 1 and stats.capacity == 2
        row = stats.as_dict()
        assert row["hit_rate"] == pytest.approx(0.6667, abs=1e-4)

    def test_hit_rate_idle_is_zero(self):
        assert QueryCache(capacity=1).stats().hit_rate == 0.0

    def test_get_or_compute(self):
        cache = QueryCache(capacity=4)
        calls = []

        def compute():
            calls.append(1)
            return "value"

        assert cache.get_or_compute("k", compute) == "value"
        assert cache.get_or_compute("k", compute) == "value"
        assert len(calls) == 1

    def test_clear_keeps_counters(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_contains(self):
        cache = QueryCache(capacity=4)
        cache.put("a", 1)
        assert "a" in cache and "b" not in cache

    def test_invalid_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            QueryCache(capacity=0)

    def test_concurrent_mixed_workload_stays_consistent(self):
        cache = QueryCache(capacity=32)
        errors = []

        def worker(worker_id):
            try:
                for i in range(500):
                    key = (worker_id * 7 + i) % 64
                    if cache.get(key) is None:
                        cache.put(key, key)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats()
        assert stats.lookups == 8 * 500
        assert len(cache) <= 32
