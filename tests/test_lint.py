"""Tests for the project linter (:mod:`repro.lint`).

Each checker gets fixture-driven positive cases (the violation fires on
a minimal offending tree) and negative cases (idiomatic code stays
clean), plus the meta-test that the *real* source tree lints clean —
the CI gate this suite exists to keep honest.
"""

import json
import pathlib
import shutil
import subprocess

import pytest

from repro.cli import main as cli_main
from repro.exceptions import InvalidParameterError
from repro.lint import CHECKERS, run_lint, tree_from_sources


def violations(sources, checks):
    """Run ``checks`` over an in-memory tree; return the report."""
    return run_lint(tree=tree_from_sources(sources), checks=checks)


def lines_of(report):
    return [violation.line for violation in report.violations]


# ----------------------------------------------------------------------
# failpoint-sites
# ----------------------------------------------------------------------
REGISTRY = 'SITES = frozenset({"wal.append", "segment.write"})\n'


class TestFailpointSites:
    CHECKS = ["failpoint-sites"]

    def test_clean_when_sites_and_registry_agree(self):
        report = violations(
            {
                "faults/failpoints.py": REGISTRY,
                "live/wal.py": 'failpoint("wal.append")\n',
                "live/segment.py": 'failpoint("segment.write", n=1)\n',
            },
            self.CHECKS,
        )
        assert report.ok

    def test_unknown_site_flagged(self):
        report = violations(
            {
                "faults/failpoints.py": REGISTRY,
                "live/wal.py": (
                    'failpoint("wal.append")\n'
                    'failpoint("wal.apend")\n'  # typo'd rename
                    'failpoint("segment.write")\n'
                ),
            },
            self.CHECKS,
        )
        assert len(report.violations) == 1
        assert report.violations[0].line == 2
        assert "wal.apend" in report.violations[0].message

    def test_registered_but_unused_site_flagged(self):
        report = violations(
            {
                "faults/failpoints.py": REGISTRY,
                "live/wal.py": 'failpoint("wal.append")\n',
            },
            self.CHECKS,
        )
        assert len(report.violations) == 1
        assert report.violations[0].path == "faults/failpoints.py"
        assert "segment.write" in report.violations[0].message

    def test_non_literal_site_name_flagged(self):
        report = violations(
            {
                "faults/failpoints.py": REGISTRY,
                "live/wal.py": (
                    'name = "wal.append"\n'
                    "failpoint(name)\n"
                    'failpoint("wal.append")\n'
                    'failpoint("segment.write")\n'
                ),
            },
            self.CHECKS,
        )
        assert lines_of(report) == [2]
        assert "string literal" in report.violations[0].message

    def test_missing_registry_is_itself_a_violation(self):
        report = violations(
            {"live/wal.py": 'failpoint("wal.append")\n'}, self.CHECKS
        )
        assert not report.ok
        assert "SITES" in report.violations[0].message


# ----------------------------------------------------------------------
# crash-safety
# ----------------------------------------------------------------------
class TestCrashSafety:
    CHECKS = ["crash-safety"]

    def test_bare_except_flagged(self):
        report = violations(
            {"a.py": "try:\n    x = 1\nexcept:\n    x = 2\n"}, self.CHECKS
        )
        assert lines_of(report) == [3]
        assert "bare `except:`" in report.violations[0].message

    def test_except_base_exception_flagged(self):
        code = "try:\n    x = 1\nexcept BaseException:\n    x = 2\n"
        report = violations({"a.py": code}, self.CHECKS)
        assert lines_of(report) == [3]

    def test_tuple_handler_listing_base_exception_flagged(self):
        code = (
            "try:\n    x = 1\n"
            "except (ValueError, BaseException):\n    x = 2\n"
        )
        report = violations({"a.py": code}, self.CHECKS)
        assert lines_of(report) == [3]

    def test_annotate_and_reraise_allowed(self):
        code = (
            "try:\n    x = 1\n"
            "except BaseException as exc:\n"
            "    note(exc)\n"
            "    raise\n"
        )
        assert violations({"a.py": code}, self.CHECKS).ok

    def test_reraise_of_caught_name_allowed(self):
        code = (
            "try:\n    x = 1\n"
            "except BaseException as exc:\n"
            "    raise exc\n"
        )
        assert violations({"a.py": code}, self.CHECKS).ok

    def test_except_exception_is_fine(self):
        code = "try:\n    x = 1\nexcept Exception:\n    x = 2\n"
        assert violations({"a.py": code}, self.CHECKS).ok

    def test_except_and_pass_on_durability_path_flagged(self):
        code = "try:\n    fsync()\nexcept OSError:\n    pass\n"
        report = violations({"live/wal.py": code}, self.CHECKS)
        assert lines_of(report) == [3]
        assert "durability" in report.violations[0].message

    def test_except_and_pass_in_instrumented_module_flagged(self):
        code = (
            'failpoint("wal.append")\n'
            "try:\n    write()\nexcept OSError:\n    pass\n"
        )
        report = violations({"bench/run.py": code}, self.CHECKS)
        assert lines_of(report) == [4]

    def test_except_and_pass_elsewhere_tolerated(self):
        code = "try:\n    probe()\nexcept OSError:\n    pass\n"
        assert violations({"bench/run.py": code}, self.CHECKS).ok

    def test_suppression_with_reason_silences(self):
        code = (
            "try:\n    fsync()\n"
            "except OSError:  # lint: disable=crash-safety directory fsync\n"
            "    pass\n"
        )
        report = violations({"live/wal.py": code}, self.CHECKS)
        assert report.ok
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
LOCKED_CLASS = """\
import threading

class Box:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []  # lint: guarded-by(_lock)
        self._count = 0  # lint: guarded-by(_lock)

    def add(self, item):
        with self._lock:
            self._items.append(item)
            self._count += 1
"""


class TestLockDiscipline:
    CHECKS = ["lock-discipline"]

    def test_locked_mutations_clean(self):
        assert violations({"a.py": LOCKED_CLASS}, self.CHECKS).ok

    def test_unlocked_mutation_flagged(self):
        code = LOCKED_CLASS + (
            "\n    def sneak(self, item):\n"
            "        self._items.append(item)\n"
        )
        report = violations({"a.py": code}, self.CHECKS)
        assert len(report.violations) == 1
        assert "_items" in report.violations[0].message
        assert "sneak" in report.violations[0].message

    def test_unlocked_augassign_flagged(self):
        code = LOCKED_CLASS + (
            "\n    def bump(self):\n        self._count += 1\n"
        )
        report = violations({"a.py": code}, self.CHECKS)
        assert len(report.violations) == 1
        assert "_count" in report.violations[0].message

    def test_unlocked_subscript_store_flagged(self):
        code = LOCKED_CLASS + (
            "\n    def poke(self):\n        self._items[0] = None\n"
        )
        report = violations({"a.py": code}, self.CHECKS)
        assert len(report.violations) == 1

    def test_init_is_exempt(self):
        # The declarations in __init__ are themselves unlocked stores.
        assert violations({"a.py": LOCKED_CLASS}, self.CHECKS).ok

    def test_holds_annotation_exempts_method(self):
        code = LOCKED_CLASS + (
            "\n    def _add_locked(self, item):"
            "  # lint: holds(_lock) called by add()\n"
            "        self._items.append(item)\n"
        )
        assert violations({"a.py": code}, self.CHECKS).ok

    def test_wrong_lock_does_not_count(self):
        code = LOCKED_CLASS + (
            "\n    def wrong(self, item):\n"
            "        with self._other_lock:\n"
            "            self._items.append(item)\n"
        )
        report = violations({"a.py": code}, self.CHECKS)
        assert len(report.violations) == 1

    def test_undeclared_attributes_unchecked(self):
        code = LOCKED_CLASS + (
            "\n    def free(self):\n        self._scratch = 1\n"
        )
        assert violations({"a.py": code}, self.CHECKS).ok


# ----------------------------------------------------------------------
# single-call-site / cpu-count / bench-writes / wall-clock
# ----------------------------------------------------------------------
class TestSingleCallSite:
    CHECKS = ["single-call-site"]

    def test_canonical_callers_allowed(self):
        report = violations(
            {
                "query/spec.py": "prepared = source.prepare_query(values)\n",
                "core/windows.py": "w = self.prepare_query(values)\n",
            },
            self.CHECKS,
        )
        assert report.ok

    def test_rogue_caller_flagged(self):
        report = violations(
            {"indices/isax.py": "q = source.prepare_query(values)\n"},
            self.CHECKS,
        )
        assert lines_of(report) == [1]
        assert "prepare_query" in report.violations[0].message


class TestCpuCount:
    CHECKS = ["cpu-count"]

    def test_os_cpu_count_flagged(self):
        report = violations(
            {"engine/executor.py": "import os\nn = os.cpu_count()\n"},
            self.CHECKS,
        )
        assert lines_of(report) == [2]
        assert "available_cpu_count" in report.violations[0].message

    def test_shim_module_allowed(self):
        code = "import os\nn = os.cpu_count() or 1\n"
        assert violations({"_util.py": code}, self.CHECKS).ok


class TestBenchWrites:
    CHECKS = ["bench-writes"]

    def test_direct_open_flagged(self):
        code = 'f = open("BENCH_sweep.json", "w")\n'
        report = violations({"sweep/report.py": code}, self.CHECKS)
        assert lines_of(report) == [1]
        assert "write_artifact" in report.violations[0].message

    def test_pathlib_write_text_flagged(self):
        code = 'Path("out/BENCH_table1.json").write_text(payload)\n'
        report = violations({"bench/experiments.py": code}, self.CHECKS)
        assert lines_of(report) == [1]

    def test_envelope_module_allowed(self):
        code = 'f = open("BENCH_sweep.json", "w")\n'
        assert violations({"bench/record.py": code}, self.CHECKS).ok

    def test_default_argument_mention_tolerated(self):
        # argparse defaults *name* the artifact; they don't write it.
        code = 'parser.add_argument("--output", default="BENCH_sweep.json")\n'
        assert violations({"cli.py": code}, self.CHECKS).ok


class TestWallClock:
    CHECKS = ["wall-clock"]

    def test_time_time_flagged(self):
        code = "import time\nstart = time.time()\n"
        report = violations({"a.py": code}, self.CHECKS)
        assert lines_of(report) == [2]
        assert "perf_counter" in report.violations[0].message

    def test_bare_time_after_from_import_flagged(self):
        code = "from time import time\nstart = time()\n"
        report = violations({"a.py": code}, self.CHECKS)
        assert lines_of(report) == [2]

    def test_perf_counter_clean(self):
        code = "import time\nstart = time.perf_counter()\n"
        assert violations({"a.py": code}, self.CHECKS).ok

    def test_epoch_timestamp_suppression(self):
        code = (
            "import time\n"
            "stamp = time.time()  # lint: disable=wall-clock epoch stamp\n"
        )
        report = violations({"a.py": code}, self.CHECKS)
        assert report.ok
        assert report.suppressed == 1


# ----------------------------------------------------------------------
# public-api
# ----------------------------------------------------------------------
CLEAN_API = {
    "__init__.py": (
        "from .core import twin_search\n"
        '__all__ = ["twin_search"]\n'
    ),
    "core/__init__.py": (
        "def twin_search(series, query, epsilon):\n"
        '    """Find twin subsequences."""\n'
        "    return []\n"
        '__all__ = ["twin_search"]\n'
    ),
}


class TestPublicApi:
    CHECKS = ["public-api"]

    def test_complete_surface_clean(self):
        assert violations(CLEAN_API, self.CHECKS).ok

    def test_missing_docstring_flagged(self):
        sources = dict(CLEAN_API)
        sources["core/__init__.py"] = (
            "def twin_search(series, query, epsilon):\n"
            "    return []\n"
            '__all__ = ["twin_search"]\n'
        )
        report = violations(sources, self.CHECKS)
        assert len(report.violations) == 1
        assert "docstring" in report.violations[0].message
        assert report.violations[0].path == "core/__init__.py"

    def test_duplicate_export_flagged(self):
        sources = dict(CLEAN_API)
        sources["__init__.py"] = (
            "from .core import twin_search\n"
            '__all__ = ["twin_search", "twin_search"]\n'
        )
        report = violations(sources, self.CHECKS)
        assert any("duplicate" in v.message for v in report.violations)

    def test_unbound_export_flagged(self):
        sources = dict(CLEAN_API)
        sources["__init__.py"] = '__all__ = ["twin_search"]\n'
        report = violations(sources, self.CHECKS)
        assert any("never" in v.message for v in report.violations)

    def test_export_without_home_flagged(self):
        sources = dict(CLEAN_API)
        sources["core/__init__.py"] = (
            "def twin_search(series, query, epsilon):\n"
            '    """Find twin subsequences."""\n'
            "    return []\n"
        )
        report = violations(sources, self.CHECKS)
        assert any("no module" in v.message for v in report.violations)

    def test_export_with_two_homes_flagged(self):
        sources = dict(CLEAN_API)
        sources["indices/__init__.py"] = (
            "from ..core import twin_search\n"
            '__all__ = ["twin_search"]\n'
        )
        report = violations(sources, self.CHECKS)
        assert any("exactly one" in v.message for v in report.violations)

    def test_root_defined_names_need_no_home(self):
        sources = {
            "__init__.py": (
                "def twin_search(series, query, epsilon):\n"
                '    """Find twin subsequences."""\n'
                "    return []\n"
                '__all__ = ["twin_search"]\n'
            )
        }
        assert violations(sources, self.CHECKS).ok


# ----------------------------------------------------------------------
# runner / report plumbing
# ----------------------------------------------------------------------
class TestRunner:
    def test_unknown_checker_rejected(self):
        with pytest.raises(InvalidParameterError):
            run_lint(tree=tree_from_sources({}), checks=["nope"])

    def test_check_subset_runs_only_selected(self):
        # A tree offending two checkers, with only one selected.
        sources = {"a.py": "import time\nt = time.time()\nn = cpu_count()\n"}
        report = violations(sources, ["cpu-count"])
        assert report.checks == ("cpu-count",)
        assert {v.checker for v in report.violations} == {"cpu-count"}

    def test_report_shape(self):
        sources = {"a.py": "import time\nt = time.time()\n"}
        report = violations(sources, ["wall-clock"])
        assert report.exit_code == 1 and not report.ok
        text = report.format_text()
        assert "a.py:2: [wall-clock]" in text
        assert "1 violation(s)" in text
        payload = report.as_dict()
        assert payload["schema"] == "repro.lint/1"
        assert payload["violations"][0]["line"] == 2

    def test_violations_sorted_by_location(self):
        sources = {
            "b.py": "import time\nt = time.time()\n",
            "a.py": "import time\nt = time.time()\nu = time.time()\n",
        }
        report = violations(sources, ["wall-clock"])
        assert [(v.path, v.line) for v in report.violations] == [
            ("a.py", 2), ("a.py", 3), ("b.py", 2),
        ]

    def test_every_checker_is_registered_consistently(self):
        for name, checker in CHECKERS.items():
            assert checker.name == name
            assert checker.description
            assert callable(checker.check)


# ----------------------------------------------------------------------
# the meta-test: the real tree lints clean
# ----------------------------------------------------------------------
class TestRealTree:
    def test_repro_source_tree_is_clean(self):
        """`repro lint` over the installed package exits 0 — the same
        gate CI runs. A failure here means a real invariant regressed
        (or a new checker landed without fixing its findings)."""
        report = run_lint()
        assert report.ok, "\n" + report.format_text()
        assert report.files > 50  # the real tree, not an empty dir

    def test_real_tree_uses_suppressions_sparingly(self):
        # Every suppression is a documented exception; the count only
        # moves when one is added or removed deliberately.
        report = run_lint()
        assert report.suppressed <= 12


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_lint_command_exits_zero_on_clean_tree(self, capsys):
        assert cli_main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out

    def test_list_prints_checker_catalog(self, capsys):
        assert cli_main(["lint", "--list"]) == 0
        out = capsys.readouterr().out
        for name in CHECKERS:
            assert name in out

    def test_json_format_round_trips(self, capsys):
        assert cli_main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["schema"] == "repro.lint/1"

    def test_check_selection(self, capsys):
        assert cli_main(["lint", "--check", "wall-clock"]) == 0
        assert "wall-clock" in capsys.readouterr().out

    def test_unknown_checker_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            cli_main(["lint", "--check", "made-up"])

    def test_lint_on_violating_root_exits_nonzero(self, tmp_path, capsys):
        (tmp_path / "__init__.py").write_text("__all__ = []\n")
        (tmp_path / "clock.py").write_text("import time\nt = time.time()\n")
        assert cli_main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "clock.py:2: [wall-clock]" in out


class TestToolConfig:
    """The ruff/mypy wiring in pyproject.toml stays consistent with the
    lint gate (both run in the CI lint job; neither tool ships in the
    test environment, so real invocations are availability-gated)."""

    @pytest.fixture(scope="class")
    def pyproject(self):
        import tomllib

        root = pathlib.Path(__file__).resolve().parent.parent
        with open(root / "pyproject.toml", "rb") as handle:
            return tomllib.load(handle)

    def test_ruff_selects_errors_pyflakes_and_import_order(self, pyproject):
        select = pyproject["tool"]["ruff"]["lint"]["select"]
        assert {"E4", "E7", "E9", "F", "I"} <= set(select)

    def test_mypy_strict_tier_covers_the_serving_packages(self, pyproject):
        files = pyproject["tool"]["mypy"]["files"]
        assert {f"src/repro/{pkg}" for pkg in ("query", "obs", "faults", "sweep")} <= set(files)
        overrides = pyproject["tool"]["mypy"]["overrides"]
        strict = [o for o in overrides if o.get("disallow_untyped_defs")]
        modules = {m for o in strict for m in o["module"]}
        assert {"repro.query.*", "repro.obs.*", "repro.faults.*", "repro.sweep.*"} <= modules

    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_clean(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            ["ruff", "check", "src", "tests", "benchmarks"],
            cwd=root, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_clean(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        proc = subprocess.run(
            ["mypy"], cwd=root, capture_output=True, text=True
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
