"""Process-pool fan-out: byte-identity with the thread/serial paths,
the archive-task worker protocol, and timeout/degraded semantics.

Process workers never receive index objects — they receive
:class:`~repro.engine.procpool.ArchiveTask` records and open the
archive by path (mmap for raw archives), so these tests gate the whole
chain: results (positions, distances, knn tie-breaks) and the
structural :class:`~repro.core.stats.QueryStats` counters must be
byte-identical to the serial in-memory answer.
"""

import concurrent.futures
import dataclasses
import os
import time

import numpy as np
import pytest

from repro._util import call_task, fan_out
from repro.engine import QueryEngine, ShardedTSIndex
from repro.engine.procpool import ALLOWED_CALLS, ArchiveTask, open_archive
from repro.exceptions import (
    InvalidParameterError,
    ShardTimeoutError,
)
from repro.faults import failpoints
from repro.live import LiveTwinIndex
from repro.persistence import load_index, save_index

LENGTH = 50


@pytest.fixture(scope="module")
def procpool():
    with concurrent.futures.ProcessPoolExecutor(2) as executor:
        yield executor


@pytest.fixture(scope="module")
def sharded_raw(tmp_path_factory, series_values):
    """A 3-shard engine restored from its raw archive (so process
    workers can reopen it by path)."""
    path = tmp_path_factory.mktemp("fanout") / "engine.raw"
    engine = ShardedTSIndex.build(
        series_values, LENGTH, normalization="per_window", shards=3
    )
    save_index(engine, path, format="raw")
    return load_index(path)


def _assert_same_result(a, b):
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.distances, b.distances)
    assert a.stats == b.stats


class TestShardedProcessEquivalence:
    def test_search_matches_serial(self, sharded_raw, procpool, query_of):
        query = query_of(123)
        serial = sharded_raw.search(query, 0.5)
        pooled = sharded_raw.search(query, 0.5, executor=procpool)
        _assert_same_result(serial, pooled)

    def test_knn_tie_breaks_match(self, sharded_raw, procpool, query_of):
        query = query_of(321)
        serial = sharded_raw.knn(query, 7, exclude=(300, 340))
        pooled = sharded_raw.knn(
            query, 7, exclude=(300, 340), executor=procpool
        )
        _assert_same_result(serial, pooled)

    def test_count_matches_serial(self, sharded_raw, procpool, query_of):
        query = query_of(55)
        assert sharded_raw.count(query, 0.5) == sharded_raw.count(
            query, 0.5, executor=procpool
        )

    def test_batch_matches_serial(self, sharded_raw, procpool, query_of):
        queries = [query_of(10), query_of(900)]
        serial = sharded_raw.search_batch(queries, 0.5)
        pooled = sharded_raw.search_batch(queries, 0.5, executor=procpool)
        for a, b in zip(serial.results, pooled.results):
            _assert_same_result(a, b)

    def test_varlength_matches_serial(
        self, tmp_path, series_values, procpool
    ):
        # Variable-length queries are undefined under per-window
        # normalization; gate the prefix kernel under "none".
        path = tmp_path / "engine.raw"
        engine = ShardedTSIndex.build(
            series_values, LENGTH, normalization="none", shards=3
        )
        save_index(engine, path, format="raw")
        loaded = load_index(path)
        query = np.array(series_values[100 : 100 + LENGTH // 2])
        serial = loaded.search_varlength(query, 0.3)
        pooled = loaded.search_varlength(query, 0.3, executor=procpool)
        _assert_same_result(serial, pooled)

    def test_unarchived_engine_rejects_process_pool(
        self, series_values, procpool, query_of
    ):
        engine = ShardedTSIndex.build(series_values, LENGTH, shards=2)
        with pytest.raises(InvalidParameterError, match="process fan-out"):
            engine.search(query_of(5), 0.5, executor=procpool)

    def test_attach_archive_enables_process_pool(
        self, tmp_path, series_values, procpool, query_of
    ):
        engine = ShardedTSIndex.build(series_values, LENGTH, shards=2)
        path = tmp_path / "engine.raw"
        save_index(engine, path, format="raw")
        engine.attach_archive(path)
        query = query_of(42)
        _assert_same_result(
            engine.search(query, 0.5),
            engine.search(query, 0.5, executor=procpool),
        )


@pytest.fixture(scope="module", params=["npz", "raw"])
def live_durable(tmp_path_factory, series_values, request):
    plane = LiveTwinIndex.create(
        tmp_path_factory.mktemp("live") / f"plane-{request.param}",
        series_values[:2000],
        length=LENGTH,
        normalization="none",
        seal_threshold=400,
        max_segments=64,
        background_compaction=False,
        archive_format=request.param,
    )
    plane.append(series_values[2000:])
    yield plane
    plane.close()


class TestLiveProcessEquivalence:
    def test_search_matches_serial(self, live_durable, procpool, query_of):
        query = query_of(150)
        _assert_same_result(
            live_durable.search(query, 0.5),
            live_durable.search(query, 0.5, executor=procpool),
        )

    def test_knn_matches_serial(self, live_durable, procpool, query_of):
        query = query_of(700)
        serial = live_durable.knn(query, 5, exclude=(650, 750))
        pooled = live_durable.knn(
            query, 5, exclude=(650, 750), executor=procpool
        )
        _assert_same_result(serial, pooled)

    def test_count_matches_serial(self, live_durable, procpool, query_of):
        query = query_of(33)
        assert live_durable.count(query, 0.5) == live_durable.count(
            query, 0.5, executor=procpool
        )

    def test_varlength_matches_serial(self, live_durable, procpool, query_of):
        query = np.array(query_of(90)[: LENGTH // 2])
        _assert_same_result(
            live_durable.search_varlength(query, 0.3),
            live_durable.search_varlength(query, 0.3, executor=procpool),
        )

    def test_batch_matches_serial(self, live_durable, procpool, query_of):
        queries = [query_of(11), query_of(800)]
        serial = live_durable.search_batch(queries, 0.5)
        pooled = live_durable.search_batch(
            queries, 0.5, executor=procpool
        )
        for a, b in zip(serial.results, pooled.results):
            _assert_same_result(a, b)

    def test_in_memory_plane_falls_back_to_serial(
        self, series_values, procpool, query_of
    ):
        """A plane without archives cannot ship tasks by path; the
        process pool silently degrades to the serial loop instead of
        failing."""
        plane = LiveTwinIndex(
            series_values[:1500], length=LENGTH, seal_threshold=400
        )
        try:
            query = query_of(77)
            _assert_same_result(
                plane.search(query, 0.5),
                plane.search(query, 0.5, executor=procpool),
            )
        finally:
            plane.close()


class TestEngineProcessExecutor:
    def test_rejects_unknown_kind(self):
        with pytest.raises(InvalidParameterError, match="executor"):
            QueryEngine(executor="greenlet")

    def test_process_engine_matches_thread_engine(self, series_values):
        query = np.array(series_values[300 : 300 + LENGTH])
        answers = {}
        for kind in ("thread", "process"):
            with QueryEngine(executor=kind, max_workers=2) as engine:
                engine.build(
                    "demo",
                    series_values,
                    LENGTH,
                    shards=3,
                    normalization="per_window",
                )
                answers[kind] = (
                    engine.query("demo", query, epsilon=0.5),
                    engine.knn("demo", query, 5),
                    engine.exists("demo", query, 0.5),
                    engine.count("demo", query, 0.5),
                    engine.batch("demo", [query, query + 0.01], 0.5),
                )
        (rt, kt, et, ct, bt) = answers["thread"]
        (rp, kp, ep, cp, bp) = answers["process"]
        _assert_same_result(rt, rp)
        _assert_same_result(kt, kp)
        assert et == ep and ct == cp
        for a, b in zip(bt.results, bp.results):
            _assert_same_result(a, b)

    def test_spool_lifecycle(self, series_values):
        engine = QueryEngine(executor="process", max_workers=2)
        try:
            index = engine.build(
                "demo", series_values, LENGTH, shards=2
            )
            assert index.archive_path is None
            query = np.array(series_values[100 : 100 + LENGTH])
            engine.query("demo", query, epsilon=0.5)
            # The in-memory plane was spooled to a raw archive so the
            # worker processes can open it by path.
            assert index.archive_path is not None
            spool = engine._spool
            assert spool is not None and os.path.isdir(spool)
        finally:
            engine.close()
        assert not os.path.exists(spool)

    def test_reports_fanout_processes_metric(self, series_values):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        with QueryEngine(
            executor="process", max_workers=3, metrics=registry
        ) as engine:
            assert engine.executor_kind == "process"
            assert registry.get("repro_fanout_processes").value == 3
        registry = MetricsRegistry()
        with QueryEngine(metrics=registry) as engine:
            assert engine.executor_kind == "thread"
            assert registry.get("repro_fanout_processes").value == 0


class TestTaskProtocol:
    def test_disallowed_call_rejected(self, tmp_path):
        task = ArchiveTask(os.fspath(tmp_path), "attach_archive")
        with pytest.raises(InvalidParameterError, match="entry point"):
            task()

    def test_allowlist_covers_query_surface_only(self):
        assert "search" in ALLOWED_CALLS
        assert "append" not in ALLOWED_CALLS
        assert "attach_archive" not in ALLOWED_CALLS

    def test_open_archive_caches_by_path(self, tmp_path, series_values):
        from repro.core.tsindex import TSIndex

        path = tmp_path / "plane.raw"
        save_index(
            TSIndex.build(series_values[:1000], LENGTH).freeze(),
            path,
            format="raw",
        )
        first = open_archive(os.fspath(path))
        second = open_archive(os.fspath(path))
        assert first is second

    def test_task_is_picklable(self, tmp_path):
        import pickle

        task = ArchiveTask(os.fspath(tmp_path), "search", shard=1,
                           args=(None, 0.5), kwargs={"verification": "bulk"})
        clone = pickle.loads(pickle.dumps(task))
        assert clone.path == task.path and clone.shard == 1


@dataclasses.dataclass(frozen=True)
class SleepyTask:
    """A picklable stand-in for ArchiveTask that just sleeps."""

    delay: float
    value: int

    def __call__(self):
        time.sleep(self.delay)
        return self.value


class TestProcessFanOutSemantics:
    def test_closure_falls_back_to_serial(self, procpool):
        out = fan_out(procpool, lambda x: x * 2, [3, 1])
        assert out.results == [6, 2]

    def test_timeout_raises_typed_error(self, procpool):
        with pytest.raises(ShardTimeoutError):
            fan_out(
                procpool,
                call_task,
                [SleepyTask(0.0, 1), SleepyTask(30.0, 2)],
                part="shard",
                timeout=0.5,
            )

    def test_degraded_serves_answered_parts(self, procpool):
        out = fan_out(
            procpool,
            call_task,
            [SleepyTask(0.0, 10), SleepyTask(30.0, 20)],
            part="shard",
            timeout=1.0,
            degraded=True,
        )
        assert out.degraded
        assert out.results[0] == 10 and out.results[1] is None
        assert 1 in out.missing

    def test_worker_failpoint_fires_in_child(self):
        """Armed failpoints are inherited by freshly forked workers:
        the ``fanout.task`` site fires inside the child process."""
        failpoints.arm("fanout.task", error=RuntimeError("injected"))
        try:
            with concurrent.futures.ProcessPoolExecutor(1) as pool:
                with pytest.raises(RuntimeError, match="injected"):
                    fan_out(
                        pool,
                        call_task,
                        [SleepyTask(0.0, 1), SleepyTask(0.0, 2)],
                        part="shard",
                    )
        finally:
            failpoints.reset()
