"""Round-trip tests for index persistence."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex
from repro.exceptions import SerializationError
from repro.indices.isax import ISAXIndex
from repro.indices.kvindex import KVIndex
from repro.indices.sweepline import SweeplineSearch
from repro.persistence import load_index, save_index


def _assert_same_answers(original, restored, query, epsilons=(0.0, 0.4, 1.0)):
    for epsilon in epsilons:
        a = original.search(query, epsilon)
        b = restored.search(query, epsilon)
        assert np.array_equal(a.positions, b.positions)
        assert np.allclose(a.distances, b.distances)


class TestRoundTrips:
    def test_tsindex(self, tmp_path, tsindex_global, query_of):
        path = tmp_path / "ts.npz"
        save_index(tsindex_global, path)
        restored = load_index(path)
        assert isinstance(restored, TSIndex)
        assert restored.size == tsindex_global.size
        assert restored.height == tsindex_global.height
        assert restored.node_count == tsindex_global.node_count
        _assert_same_answers(tsindex_global, restored, query_of(321))

    def test_tsindex_params_preserved(self, tmp_path, tsindex_global):
        path = tmp_path / "ts.npz"
        save_index(tsindex_global, path)
        restored = load_index(path)
        assert restored.params == tsindex_global.params

    def test_kvindex(self, tmp_path, kvindex_global, query_of):
        path = tmp_path / "kv.npz"
        save_index(kvindex_global, path)
        restored = load_index(path)
        assert isinstance(restored, KVIndex)
        assert restored.num_bins == kvindex_global.num_bins
        _assert_same_answers(kvindex_global, restored, query_of(100))

    def test_isax(self, tmp_path, isax_global, query_of):
        path = tmp_path / "isax.npz"
        save_index(isax_global, path)
        restored = load_index(path)
        assert isinstance(restored, ISAXIndex)
        assert restored.node_count == isax_global.node_count
        _assert_same_answers(isax_global, restored, query_of(250))

    def test_sweepline(self, tmp_path, sweepline_global, query_of):
        path = tmp_path / "sweep.npz"
        save_index(sweepline_global, path)
        restored = load_index(path)
        assert isinstance(restored, SweeplineSearch)
        _assert_same_answers(sweepline_global, restored, query_of(7))

    def test_knn_after_restore(self, tmp_path, tsindex_global, query_of):
        path = tmp_path / "ts.npz"
        save_index(tsindex_global, path)
        restored = load_index(path)
        query = query_of(500)
        original = tsindex_global.knn(query, 5)
        loaded = restored.knn(query, 5)
        assert np.allclose(original.distances, loaded.distances)

    def test_build_stats_preserved(self, tmp_path, tsindex_global):
        path = tmp_path / "ts.npz"
        save_index(tsindex_global, path)
        restored = load_index(path)
        assert restored.build_stats.windows == (
            tsindex_global.build_stats.windows
        )

    def test_normalization_preserved(self, tmp_path, source_per_window):
        index = TSIndex.from_source(source_per_window)
        path = tmp_path / "pw.npz"
        save_index(index, path)
        restored = load_index(path)
        assert restored.source.normalization.value == "per_window"


class TestErrors:
    def test_unsupported_type(self, tmp_path):
        with pytest.raises(SerializationError):
            save_index(object(), tmp_path / "x.npz")

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_index(tmp_path / "missing.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an archive")
        with pytest.raises(SerializationError):
            load_index(path)

    def test_archive_without_metadata(self, tmp_path):
        path = tmp_path / "nometa.npz"
        np.savez(path, series=np.arange(10.0))
        with pytest.raises(SerializationError, match="metadata"):
            load_index(path)
