"""Additional hypothesis properties over the newer components."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro._util import intervals_to_positions, positions_to_intervals
from repro.core.bulkload import bulk_load_source
from repro.core.events import group_matches
from repro.core.mbts import MBTS
from repro.core.stats import SearchResult
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource

finite_floats = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)


class TestIntervalProperties:
    @given(st.sets(st.integers(min_value=0, max_value=500), max_size=60))
    def test_positions_intervals_round_trip(self, positions):
        ordered = sorted(positions)
        intervals = positions_to_intervals(ordered)
        assert intervals_to_positions(intervals).tolist() == ordered
        # Intervals are disjoint, sorted, with genuine gaps between them.
        for (a_start, a_stop), (b_start, b_stop) in zip(intervals, intervals[1:]):
            assert a_stop < b_start


class TestEventProperties:
    @given(
        st.sets(st.integers(min_value=0, max_value=1000), min_size=1, max_size=80),
        st.integers(min_value=1, max_value=50),
    )
    def test_groups_partition_positions(self, positions, min_gap):
        ordered = np.asarray(sorted(positions), dtype=np.int64)
        result = SearchResult(
            positions=ordered, distances=np.zeros(ordered.size)
        )
        groups = group_matches(result, min_gap)
        covered = sum(group.size for group in groups)
        assert covered == ordered.size
        # Consecutive groups are separated by at least min_gap.
        for a, b in zip(groups, groups[1:]):
            assert b.first_position - a.last_position >= min_gap
        # Within a group, consecutive members are closer than min_gap.
        index = 0
        for group in groups:
            members = ordered[index : index + group.size]
            index += group.size
            assert members[0] == group.first_position
            assert members[-1] == group.last_position
            assert np.all(np.diff(members) < min_gap)


class TestMBTSAlgebra:
    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 5), st.just(8)),
                   elements=finite_floats),
        hnp.arrays(np.float64, st.tuples(st.integers(2, 5), st.just(8)),
                   elements=finite_floats),
    )
    def test_union_commutative_and_idempotent(self, first_rows, second_rows):
        first = MBTS.from_sequences(first_rows)
        second = MBTS.from_sequences(second_rows)
        assert first.union(second) == second.union(first)
        assert first.union(first) == first

    @given(
        hnp.arrays(np.float64, st.tuples(st.integers(2, 6), st.just(6)),
                   elements=finite_floats)
    )
    def test_gap_zero_iff_overlapping_everywhere(self, rows):
        half = rows.shape[0] // 2 or 1
        first = MBTS.from_sequences(rows[:half])
        second = MBTS.from_sequences(rows[half:]) if rows[half:].size else first
        gap = first.gap_to(second)
        overlaps = np.all(
            (first.lower <= second.upper) & (second.lower <= first.upper)
        )
        assert (gap == 0.0) == bool(overlaps)


class TestBulkVsInsertProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(80, 160), elements=finite_floats),
        st.integers(min_value=4, max_value=20),
        st.floats(min_value=0.0, max_value=10.0),
        st.sampled_from(["position", "mean", "paa"]),
    )
    def test_bulk_equals_insert_answers(self, values, length, epsilon, ordering):
        if np.ptp(values) == 0.0:
            values = values + np.arange(values.size) * 1e-3
        source = WindowSource(values, length, "none")
        params = TSIndexParams(min_children=2, max_children=4)
        inserted = TSIndex.from_source(source, params=params)
        bulk = bulk_load_source(source, params=params, ordering=ordering)
        query = np.array(source.window_block(0, 1)[0])
        assert np.array_equal(
            inserted.search(query, epsilon).positions,
            bulk.search(query, epsilon).positions,
        )


class TestKnnExclusionProperty:
    @settings(max_examples=10, deadline=None)
    @given(
        hnp.arrays(np.float64, st.integers(100, 160), elements=finite_floats),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=40),
    )
    def test_excluded_positions_never_returned(self, values, start, width):
        if np.ptp(values) == 0.0:
            values = values + np.arange(values.size) * 1e-3
        source = WindowSource(values, 10, "none")
        index = TSIndex.from_source(
            source, params=TSIndexParams(min_children=2, max_children=4)
        )
        stop = min(start + width, source.count)
        start = min(start, stop)
        query = np.array(source.window_block(0, 1)[0])
        result = index.knn(query, 5, exclude=(start, stop))
        for position in result.positions.tolist():
            assert position < start or position >= stop
        expected = min(5, source.count - (stop - start))
        assert len(result) == expected
