"""Tests for the per-figure experiment definitions.

These run at very small scale (the point is wiring, not performance);
the shape checks themselves are exercised but only the robust ones are
asserted.
"""

import pytest

from repro.bench import experiments as exp


@pytest.fixture(scope="module")
def ctx():
    return exp.ExperimentContext(dataset="insect", scale=0.03, query_count=3)


class TestTables:
    def test_table1_rows(self):
        rows = exp.table1_rows()
        assert [row["dataset"] for row in rows] == ["insect", "eeg"]
        assert rows[0]["n"] == 64_436
        assert rows[1]["n"] == 1_801_999

    def test_table2_rows(self):
        rows = exp.table2_rows()
        assert rows[0]["default"] == 10
        assert rows[1]["default"] == 100


class TestContext:
    def test_series_cached(self, ctx):
        assert ctx.series is ctx.series

    def test_source_cached(self, ctx):
        assert ctx.source(60, "global") is ctx.source(60, "global")

    def test_method_cached(self, ctx):
        first = ctx.method("kvindex", 60, "global")
        assert ctx.method("kvindex", 60, "global") is first

    def test_workload_size(self, ctx):
        assert len(ctx.workload(60, "global")) == 3

    def test_epsilon_grids(self, ctx):
        assert ctx.epsilons("global") == (0.5, 0.75, 1.0, 1.25, 1.5)
        assert ctx.default_epsilon("global") == 0.75
        raw = ctx.epsilons("none")
        assert len(raw) == 5
        assert all(b > a for a, b in zip(raw, raw[1:]))


class TestFigureRuns:
    def test_figure4_small(self, ctx):
        data = exp.run_figure4(
            ctx, epsilons=(0.5, 1.0), methods=("sweepline", "tsindex")
        )
        assert data.sweep_values == (0.5, 1.0)
        assert set(data.series_ms) == {"sweepline", "tsindex"}
        assert len(data.method_series("tsindex")) == 2
        checks = exp.check_figure_shape(data)
        assert "tsindex_faster_than_sweepline" in checks

    def test_figure6_excludes_kv(self, ctx):
        data = exp.run_figure6(ctx, epsilons=(0.5,))
        assert "kvindex" not in data.series_ms

    def test_figure7_raw_epsilons(self, ctx):
        data = exp.run_figure7(
            ctx, methods=("tsindex",), epsilons=None
        )
        assert data.sweep_values == ctx.epsilons("none")

    def test_figure5_sweeps_length(self, ctx):
        data = exp.run_figure5(ctx, lengths=(40, 60), methods=("tsindex",))
        assert data.sweep_name == "length"
        assert data.sweep_values == (40, 60)

    def test_figure8_rows(self, ctx):
        report = exp.run_figure8(ctx, length=60)
        rows = report["rows"]
        assert [row["index"] for row in rows] == list(exp.INDEX_METHODS)
        assert all(row["memory_mb"] > 0 for row in rows)
        assert all(row["build_s"] >= 0 for row in rows)

    def test_intro_no_false_negatives(self, ctx):
        report = exp.run_intro(ctx, query_count=2, length=60)
        assert report["missed_twins"] == 0
        assert report["euclidean_results"] >= report["twin_results"]

    def test_bulk_verification_equivalent_counts(self, ctx):
        fast = exp.run_figure4(
            ctx, epsilons=(0.75,), methods=("tsindex",), verification="bulk"
        )
        slow = exp.run_figure4(
            ctx, epsilons=(0.75,), methods=("tsindex",),
            verification="per_candidate",
        )
        fast_matches = fast.results[0].timings[0].total_matches
        slow_matches = slow.results[0].timings[0].total_matches
        assert fast_matches == slow_matches


class TestShapeChecks:
    def test_all_pass_for_dominant_series(self):
        data = exp.FigureData(
            figure="fig4",
            dataset="insect",
            sweep_name="epsilon",
            sweep_values=(0.5, 1.0),
            series_ms={"tsindex": [1.0, 2.0], "sweepline": [10.0, 10.2]},
            results=[],
        )
        checks = exp.check_figure_shape(data)
        assert checks["tsindex_faster_than_sweepline"]
        assert checks["sweepline_flat_in_sweep"]

    def test_fail_detected(self):
        data = exp.FigureData(
            figure="fig4",
            dataset="insect",
            sweep_name="epsilon",
            sweep_values=(0.5, 1.0),
            series_ms={"tsindex": [20.0, 2.0], "sweepline": [10.0, 10.0]},
            results=[],
        )
        assert not exp.check_figure_shape(data)["tsindex_faster_than_sweepline"]

    def test_fig5_length_trend(self):
        data = exp.FigureData(
            figure="fig5",
            dataset="insect",
            sweep_name="length",
            sweep_values=(50, 250),
            series_ms={"tsindex": [5.0, 3.0]},
            results=[],
        )
        assert exp.check_figure_shape(data)["tsindex_not_slower_with_length"]
