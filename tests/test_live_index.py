"""Equivalence and lifecycle tests for the live ingestion plane.

The load-bearing suite is :class:`TestRandomizedEquivalence`: randomized
append/query interleavings whose answers must be **byte-identical** to a
from-scratch TSIndex over the full series — positions, distances and
k-NN tie-breaks — across seals and compactions, in both the raw and the
per-window regimes.
"""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.data import synthetic
from repro.exceptions import (
    IncompatibleQueryError,
    IndexNotBuiltError,
    InvalidParameterError,
    UnsupportedNormalizationError,
)
from repro.indices.base import SubsequenceIndex, create_method
from repro.live import (
    DEFAULT_MAX_SEGMENTS,
    DEFAULT_SEAL_THRESHOLD,
    LiveTwinIndex,
    Segment,
    merge_segments,
    select_adjacent_pair,
)

PARAMS = TSIndexParams(min_children=2, max_children=4)

#: Small thresholds so every test exercises seals and compactions.
SMALL = dict(
    params=PARAMS,
    seal_threshold=12,
    max_segments=2,
    background_compaction=False,
)


def reference(live: LiveTwinIndex) -> TSIndex:
    """A from-scratch TSIndex over the live plane's current series."""
    return TSIndex.build(
        np.array(live.values),
        length=live.length,
        normalization=live.normalization,
        params=live.params,
    )


def assert_results_equal(actual, expected, label=""):
    assert np.array_equal(actual.positions, expected.positions), label
    assert np.array_equal(actual.distances, expected.distances), label


class TestConstruction:
    def test_empty_start(self):
        live = LiveTwinIndex(length=16, **SMALL)
        assert live.series_length == 0
        assert live.window_count == 0
        assert len(live.search(np.zeros(16), 1.0)) == 0
        assert live.exists(np.zeros(16), 0.0) is False
        assert len(live.knn(np.zeros(16), 3)) == 0
        with pytest.raises(IndexNotBuiltError):
            live.source

    def test_short_initial_buffers_until_first_window(self):
        live = LiveTwinIndex(np.arange(10.0), length=16, **SMALL)
        assert live.window_count == 0
        assert live.append(np.arange(6.0)) == 1
        assert live.window_count == 1

    def test_initial_series_seals(self):
        live = LiveTwinIndex(
            synthetic.random_walk(200, seed=0), length=16, **SMALL
        )
        assert live.seal_count >= 1
        assert live.segment_count >= 1
        assert live.window_count == 185

    def test_global_normalization_rejected(self):
        with pytest.raises(UnsupportedNormalizationError):
            LiveTwinIndex(np.arange(64.0), length=16, normalization="global")

    def test_invalid_readings(self):
        live = LiveTwinIndex(np.arange(32.0), length=16, **SMALL)
        with pytest.raises(InvalidParameterError, match="NaN"):
            live.append([1.0, float("nan")])
        with pytest.raises(InvalidParameterError, match="non-empty"):
            live.append([])
        with pytest.raises(InvalidParameterError, match="non-empty"):
            live.append(np.zeros((2, 2)))

    def test_query_length_mismatch(self):
        live = LiveTwinIndex(np.arange(64.0), length=16, **SMALL)
        with pytest.raises(IncompatibleQueryError) as info:
            live.search(np.zeros(24), 1.0)
        assert info.value.expected == 16
        assert info.value.received == 24
        # Shorter queries are the variable-length workload, not an
        # error: an 8-prefix of a window matches at its own position.
        result = live.search(np.arange(8.0), 0.0)
        assert 0 in result.positions

    def test_repr_and_values(self):
        live = LiveTwinIndex(np.arange(40.0), length=16, **SMALL)
        assert "LiveTwinIndex" in repr(live)
        values = live.values
        assert not values.flags.writeable
        assert np.array_equal(values, np.arange(40.0))

    def test_defaults_exported(self):
        assert DEFAULT_SEAL_THRESHOLD > 0
        assert DEFAULT_MAX_SEGMENTS > 0


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("normalization", ["none", "per_window"])
    def test_interleaved_appends_and_queries(self, normalization):
        rng = np.random.default_rng(11)
        live = LiveTwinIndex(
            rng.normal(size=70),
            length=16,
            normalization=normalization,
            **SMALL,
        )
        for step in range(25):
            live.append(rng.normal(size=int(rng.integers(1, 14))))
            if step % 3:
                continue
            ref = reference(live)
            position = int(rng.integers(ref.source.count))
            query = np.array(
                ref.source.window_block(position, position + 1)[0]
            )
            epsilon = float(rng.uniform(0.0, 2.0))
            assert_results_equal(
                live.search(query, epsilon),
                ref.search(query, epsilon),
                f"search step={step}",
            )
            k = int(rng.integers(1, 9))
            assert_results_equal(
                live.knn(query, k), ref.knn(query, k), f"knn step={step}"
            )
            assert live.exists(query, 0.0) is True
            probe = rng.normal(size=16)
            assert live.exists(probe, 0.5) == (
                len(ref.search(probe, 0.5)) > 0
            )
        # The interleaving must have exercised the whole lifecycle.
        assert live.seal_count >= 1
        assert live.compaction_count >= 1

    @pytest.mark.parametrize("normalization", ["none", "per_window"])
    def test_batch_matches_per_query(self, normalization):
        rng = np.random.default_rng(12)
        live = LiveTwinIndex(
            rng.normal(size=150),
            length=16,
            normalization=normalization,
            **SMALL,
        )
        live.append(rng.normal(size=60))
        ref = reference(live)
        queries = [
            np.array(ref.source.window_block(p, p + 1)[0])
            for p in (0, 40, 120)
        ] + [rng.normal(size=16)]
        batch = live.search_batch(queries, 0.8)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch):
            assert_results_equal(result, ref.search(query, 0.8))

    def test_exclusion_zone_matches(self):
        rng = np.random.default_rng(13)
        live = LiveTwinIndex(rng.normal(size=160), length=16, **SMALL)
        live.append(rng.normal(size=40))
        ref = reference(live)
        query = np.array(ref.source.window_block(50, 51)[0])
        exclude = (35, 66)
        assert_results_equal(
            live.knn(query, 6, exclude=exclude),
            ref.knn(query, 6, exclude=exclude),
        )
        assert not np.any(
            (live.knn(query, 6, exclude=exclude).positions >= 35)
            & (live.knn(query, 6, exclude=exclude).positions < 66)
        )

    def test_knn_k_larger_than_windows(self):
        live = LiveTwinIndex(np.arange(40.0), length=16, **SMALL)
        result = live.knn(np.arange(16.0), 1000)
        assert len(result) == live.window_count

    def test_incremental_window_stats_bitwise_exact(self):
        # The per-window source is assembled from incrementally
        # extended rolling statistics; they must equal a from-scratch
        # WindowSource's arrays bitwise at every step, or distances
        # drift by ulps and byte-identity collapses.
        from repro.core.windows import WindowSource

        rng = np.random.default_rng(15)
        live = LiveTwinIndex(
            rng.normal(size=90) * 50 + 1e5,
            length=16,
            normalization="per_window",
            **SMALL,
        )
        for _ in range(20):
            live.append(rng.normal(size=int(rng.integers(1, 25))) * 50 + 1e5)
            fresh = WindowSource(np.array(live.values), 16, "per_window")
            assert np.array_equal(live.source._means, fresh._means)
            assert np.array_equal(live.source._stds, fresh._stds)

    def test_executor_fanout_identical(self):
        import concurrent.futures

        rng = np.random.default_rng(14)
        live = LiveTwinIndex(rng.normal(size=220), length=16, **SMALL)
        query = np.array(live.values[30:46])
        serial = live.search(query, 0.7)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            fanned = live.search(query, 0.7, executor=pool)
            knn_fanned = live.knn(query, 5, executor=pool)
        assert_results_equal(fanned, serial)
        assert_results_equal(knn_fanned, live.knn(query, 5))


class TestSealAndCompaction:
    def test_force_seal(self):
        live = LiveTwinIndex(
            np.arange(64.0), length=16, params=PARAMS,
            seal_threshold=None, background_compaction=False,
        )
        assert live.segment_count == 0
        assert live.seal() is True
        assert live.segment_count == 1
        assert live.delta is None
        assert live.seal() is False  # nothing left to seal
        # queries still exact after a forced seal
        ref = reference(live)
        query = np.array(ref.source.window_block(9, 10)[0])
        assert_results_equal(live.search(query, 0.5), ref.search(query, 0.5))

    def test_segment_overlap_is_l_minus_1(self):
        live = LiveTwinIndex(
            synthetic.random_walk(400, seed=3), length=16, **SMALL
        )
        for first, second in zip(live.segments, live.segments[1:]):
            assert first.stop == second.start
            a = first.index.source.series.values
            b = second.index.source.series.values
            assert np.array_equal(a[-15:], b[:15])

    def test_compaction_bounds_segment_count(self):
        live = LiveTwinIndex(
            synthetic.random_walk(700, seed=4), length=16, **SMALL
        )
        # inline compaction: the bound holds as soon as append returns
        assert live.segment_count <= 2 + 1  # at most one pending seal over
        live.compact()
        assert live.segment_count <= 2

    def test_background_compaction_converges(self):
        live = LiveTwinIndex(
            length=16, params=PARAMS, seal_threshold=12, max_segments=2,
            background_compaction=True,
        )
        rng = np.random.default_rng(5)
        for _ in range(40):
            live.append(rng.normal(size=11))
        live.compact()
        assert live.segment_count <= 2
        assert live.compaction_count >= 1
        ref = reference(live)
        query = np.array(ref.source.window_block(77, 78)[0])
        assert_results_equal(live.search(query, 0.6), ref.search(query, 0.6))
        live.close()
        with pytest.raises(InvalidParameterError, match="closed"):
            live.append([1.0])

    def test_merge_segments_requires_adjacency(self):
        live = LiveTwinIndex(
            synthetic.random_walk(400, seed=6), length=16, **SMALL
        )
        segments = live.segments
        assert len(segments) >= 2
        with pytest.raises(InvalidParameterError, match="adjacent"):
            merge_segments(segments[1], segments[0], PARAMS)

    def test_select_adjacent_pair_prefers_smallest(self):
        class Stub:
            def __init__(self, size):
                self.size = size

        assert select_adjacent_pair([Stub(10), Stub(2), Stub(3), Stub(50)]) == 1
        assert select_adjacent_pair([Stub(1), Stub(1)]) == 0

    def test_segment_repr_and_stats_row(self):
        live = LiveTwinIndex(
            synthetic.random_walk(300, seed=7), length=16, **SMALL
        )
        segment = live.segments[0]
        assert isinstance(segment, Segment)
        assert "Segment" in repr(segment)
        row = segment.stats_row()
        assert row["windows"] == segment.size
        assert row["file"] == "<memory>"


class TestSurface:
    def test_registered_as_subsequence_index(self):
        assert issubclass(LiveTwinIndex, SubsequenceIndex)
        assert LiveTwinIndex.method_name == "live"

    def test_factory_builds_live(self):
        series = synthetic.random_walk(300, seed=8)
        index = create_method(
            "live", series, 32, normalization="none",
            params=PARAMS, seal_threshold=32,
        )
        assert isinstance(index, LiveTwinIndex)
        query = np.array(series[100:132])
        assert 100 in index.search(query, 0.0).positions

    def test_factory_rejects_global(self):
        with pytest.raises(UnsupportedNormalizationError):
            create_method(
                "live", synthetic.random_walk(300, seed=9), 32,
                normalization="global",
            )

    def test_count_and_build_stats(self):
        live = LiveTwinIndex(
            synthetic.random_walk(300, seed=10), length=16, **SMALL
        )
        query = np.array(live.values[42:58])
        assert live.count(query, 0.0) >= 1
        build = live.build_stats
        assert build.windows == live.window_count
        assert build.nodes > 0

    def test_stats_snapshot(self):
        live = LiveTwinIndex(
            synthetic.random_walk(300, seed=11), length=16, **SMALL
        )
        snapshot = live.stats()
        assert snapshot["windows"] == live.window_count
        assert snapshot["segments"] == live.segment_count
        assert snapshot["durable"] is False
        assert len(snapshot["segment_stats"]) == live.segment_count
