"""Golden tests for the repro.obs exporters: the Prometheus text
exposition parses line-by-line and the JSON snapshot round-trips."""

import json
import math

from repro.obs import MetricsRegistry, json_snapshot, to_json, to_prometheus


def _populated_registry():
    registry = MetricsRegistry("golden")
    queries = registry.counter(
        "repro_engine_queries_total",
        "Queries served, by mode.",
        labels=("mode",),
    )
    queries.labels(mode="search").inc(7)
    queries.labels(mode="knn").inc(2)
    lag = registry.gauge(
        "repro_live_ingest_lag_readings", "Un-sealed readings."
    )
    lag.set(42)
    latency = registry.histogram(
        "repro_engine_query_seconds",
        "Query latency.",
        buckets=(0.001, 0.01, 0.1),
    )
    for value in (0.0005, 0.005, 0.05, 0.5):
        latency.observe(value)
    return registry


def _parse_prometheus(text):
    """Minimal exposition-format parser: returns ({name: type},
    {sample_line_name_and_labels: value})."""
    types, samples = {}, {}
    for line in text.splitlines():
        assert line == line.strip(), f"stray whitespace: {line!r}"
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            types[name] = kind
        elif line.startswith("# HELP "):
            assert line.count(" ") >= 3
        elif line:
            key, _, value = line.rpartition(" ")
            samples[key] = float(value)
    return types, samples


class TestPrometheusExport:
    def test_empty_registry_exports_empty_string(self):
        assert to_prometheus(MetricsRegistry("empty")) == ""

    def test_exposition_parses_and_is_complete(self):
        text = to_prometheus(_populated_registry())
        types, samples = _parse_prometheus(text)
        assert types == {
            "repro_engine_queries_total": "counter",
            "repro_live_ingest_lag_readings": "gauge",
            "repro_engine_query_seconds": "histogram",
        }
        assert samples['repro_engine_queries_total{mode="search"}'] == 7
        assert samples['repro_engine_queries_total{mode="knn"}'] == 2
        assert samples["repro_live_ingest_lag_readings"] == 42

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus(_populated_registry())
        _, samples = _parse_prometheus(text)
        assert samples['repro_engine_query_seconds_bucket{le="0.001"}'] == 1
        assert samples['repro_engine_query_seconds_bucket{le="0.01"}'] == 2
        assert samples['repro_engine_query_seconds_bucket{le="0.1"}'] == 3
        assert samples['repro_engine_query_seconds_bucket{le="+Inf"}'] == 4
        assert samples["repro_engine_query_seconds_count"] == 4
        assert math.isclose(
            samples["repro_engine_query_seconds_sum"], 0.5555
        )

    def test_help_lines_escape_newlines(self):
        registry = MetricsRegistry("esc")
        registry.counter("x_total", "Line one.\nLine two.")
        text = to_prometheus(registry)
        assert "# HELP x_total Line one.\\nLine two." in text

    def test_label_values_escape_quotes_and_backslashes(self):
        registry = MetricsRegistry("esc")
        family = registry.counter("x_total", "X.", labels=("path",))
        family.labels(path='a"b\\c').inc()
        text = to_prometheus(registry)
        assert 'x_total{path="a\\"b\\\\c"} 1' in text


class TestJSONExport:
    def test_round_trips_through_json(self):
        registry = _populated_registry()
        parsed = json.loads(to_json(registry))
        assert parsed == json_snapshot(registry) or (
            # exported_unix/age differ between the two calls; compare
            # everything else.
            {k: v for k, v in parsed.items()
             if k not in ("exported_unix", "age_seconds")}
            == {k: v for k, v in json_snapshot(registry).items()
                if k not in ("exported_unix", "age_seconds")}
        )

    def test_snapshot_structure_is_stable(self):
        snapshot = json_snapshot(_populated_registry())
        assert snapshot["registry"] == "golden"
        by_name = {m["name"]: m for m in snapshot["metrics"]}
        assert by_name["repro_engine_queries_total"]["type"] == "counter"
        search = next(
            s
            for s in by_name["repro_engine_queries_total"]["samples"]
            if s["labels"] == {"mode": "search"}
        )
        assert search["value"] == 7

    def test_histogram_sample_reports_percentiles(self):
        snapshot = json_snapshot(_populated_registry())
        hist = next(
            m
            for m in snapshot["metrics"]
            if m["name"] == "repro_engine_query_seconds"
        )
        (sample,) = hist["samples"]
        assert sample["count"] == 4
        assert math.isclose(sample["sum"], 0.5555)
        assert {"p50", "p90", "p99"} <= set(sample)
        assert sample["p50"] <= sample["p90"] <= sample["p99"]

    def test_output_is_deterministic(self):
        registry = _populated_registry()
        first = json.loads(to_json(registry))
        second = json.loads(to_json(registry))
        first.pop("exported_unix"), second.pop("exported_unix")
        first.pop("age_seconds"), second.pop("age_seconds")
        assert first == second
