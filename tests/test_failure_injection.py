"""Failure injection: adversarial inputs must fail loudly and early.

Every search method shares the input-validation contract enforced
here: malformed series/queries/thresholds raise typed errors at the
API boundary instead of corrupting results downstream.
"""

import numpy as np
import pytest

from repro import (
    ISAXIndex,
    KVIndex,
    SweeplineSearch,
    TimeSeries,
    TSIndex,
    WindowSource,
    twin_search,
)
from repro.exceptions import InvalidParameterError, ReproError

from conftest import LENGTH

BUILDERS = [TSIndex, KVIndex, ISAXIndex, SweeplineSearch]
BUILDER_IDS = ["tsindex", "kvindex", "isax", "sweepline"]


class TestMalformedSeries:
    @pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
    def test_nan_series_rejected(self, builder):
        values = np.ones(100)
        values[50] = np.nan
        with pytest.raises(InvalidParameterError):
            builder.build(values, 10)

    @pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
    def test_inf_series_rejected(self, builder):
        values = np.ones(100)
        values[0] = np.inf
        with pytest.raises(InvalidParameterError):
            builder.build(values, 10)

    @pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
    def test_empty_series_rejected(self, builder):
        with pytest.raises(InvalidParameterError):
            builder.build([], 10)

    @pytest.mark.parametrize("builder", BUILDERS, ids=BUILDER_IDS)
    def test_window_longer_than_series(self, builder):
        with pytest.raises(InvalidParameterError):
            builder.build(np.ones(5), 10)

    def test_2d_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            TimeSeries(np.ones((5, 5)))


class TestMalformedQueries:
    @pytest.fixture(scope="class")
    def engines(self, series_values):
        return [
            builder.build(series_values[:500], LENGTH, normalization="global")
            for builder in BUILDERS
        ]

    def test_nan_query_rejected(self, engines):
        query = np.zeros(LENGTH)
        query[3] = np.nan
        for engine in engines:
            with pytest.raises(ReproError):
                engine.search(query, 0.5)

    def test_too_long_query_rejected(self, engines):
        # Shorter queries are the served variable-length workload now;
        # only queries *longer* than the indexed windows are malformed.
        for engine in engines:
            with pytest.raises(ReproError):
                engine.search(np.zeros(LENGTH + 1), 0.5)

    def test_shorter_query_served_not_rejected(self, engines):
        for engine in engines:
            result = engine.search(
                np.array(engine.source.values[: LENGTH - 10]), 0.0
            )
            assert 0 in result.positions

    def test_negative_epsilon_rejected(self, engines):
        query = np.zeros(LENGTH)
        for engine in engines:
            with pytest.raises(InvalidParameterError):
                engine.search(query, -0.1)

    def test_nan_epsilon_rejected(self, engines):
        query = np.zeros(LENGTH)
        for engine in engines:
            with pytest.raises(InvalidParameterError):
                engine.search(query, float("nan"))

    def test_unknown_verification_mode(self, engines):
        query = np.zeros(LENGTH)
        for engine in engines:
            with pytest.raises(InvalidParameterError):
                engine.search(query, 0.5, verification="magic")


class TestImmutability:
    def test_mutating_input_after_build_is_isolated(self):
        values = np.sin(np.linspace(0, 20, 400))
        index = TSIndex.build(values, 40, normalization="none")
        query = values[100:140].copy()
        before = index.search(query, 0.05).positions
        values[:] = 0.0  # caller clobbers their own buffer
        after = index.search(query, 0.05).positions
        assert np.array_equal(before, after)

    def test_result_arrays_do_not_alias_internals(self, tsindex_global, query_of):
        result = tsindex_global.search(query_of(5), 0.5)
        positions_copy = result.positions.copy()
        result.positions[:] = -1
        again = tsindex_global.search(query_of(5), 0.5)
        assert np.array_equal(again.positions, positions_copy)

    def test_series_values_read_only(self, series_values):
        series = TimeSeries(series_values[:100])
        with pytest.raises(ValueError):
            series.values[0] = 123.0


class TestDegenerateData:
    def test_constant_series_all_methods(self):
        values = np.full(200, 7.0)
        query = np.full(20, 7.0)
        for builder in (TSIndex, KVIndex, SweeplineSearch, ISAXIndex):
            engine = builder.build(values, 20, normalization="none")
            result = engine.search(query, 0.0)
            assert len(result) == 181, builder.__name__

    def test_constant_series_per_window(self):
        values = np.full(200, 7.0)
        engine = TSIndex.build(values, 20, normalization="per_window")
        # Every window normalizes to zeros; a constant query matches all.
        result = engine.search(np.full(20, 3.0), 0.0)
        assert len(result) == 181

    def test_single_window_series(self):
        values = np.arange(10.0)
        engine = TSIndex.build(values, 10, normalization="none")
        assert len(engine.search(values, 0.0)) == 1

    def test_huge_values(self):
        values = np.linspace(1e12, 2e12, 300)
        engine = TSIndex.build(values, 30, normalization="none")
        query = values[50:80]
        assert 50 in engine.search(query, 0.0).positions

    def test_tiny_values(self):
        values = np.sin(np.linspace(0, 20, 300)) * 1e-12
        engine = TSIndex.build(values, 30, normalization="none")
        assert 50 in engine.search(values[50:80], 0.0).positions

    def test_twin_search_validates(self):
        with pytest.raises(ReproError):
            twin_search(np.ones(50), np.ones(60), 0.1)


class TestStorageErrorTaxonomy:
    """Raw OS errors escaping the durability layer arrive typed."""

    def test_storage_error_is_repro_error(self):
        from repro.exceptions import ReproError, StorageError

        assert issubclass(StorageError, ReproError)
        assert not issubclass(StorageError, OSError)

    def test_serialization_error_is_storage_error(self):
        from repro.exceptions import SerializationError, StorageError

        assert issubclass(SerializationError, StorageError)

    def test_wal_create_in_unwritable_dir_is_typed(self, tmp_path):
        from repro.exceptions import StorageError
        from repro.live.wal import WriteAheadLog

        missing = tmp_path / "no" / "such" / "dir" / "wal.log"
        with pytest.raises(StorageError) as info:
            WriteAheadLog.create(missing)
        assert isinstance(info.value.__cause__, OSError)

    def test_simulated_crash_not_caught_by_except_exception(self):
        from repro.exceptions import SimulatedCrashError

        with pytest.raises(SimulatedCrashError):
            try:
                raise SimulatedCrashError("kill")
            except Exception:  # a real kill -9 runs no handlers
                pytest.fail("SimulatedCrashError must escape Exception")
