"""Hypothesis property-based tests on core invariants.

Each property is phrased over *generated* series/queries/thresholds so
the suite explores corner cases (constant runs, spikes, tiny windows)
no hand-written example covers.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import chebyshev_distance
from repro.core.mbts import MBTS
from repro.core.normalization import rolling_mean, rolling_std, znormalize
from repro.core.tsindex import TSIndex, TSIndexParams
from repro.core.windows import WindowSource
from repro.indices.isax import ISAXIndex, ISAXParams
from repro.indices.kvindex import KVIndex, KVIndexParams
from repro.indices.paa import paa_transform, segment_bounds
from repro.indices.sax import SAXAlphabet
from repro.indices.sweepline import SweeplineSearch
from repro.live import LiveTwinIndex

#: Bounded, finite float arrays keep distances well-conditioned.
finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def series_strategy(min_size=60, max_size=220):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=finite_floats,
    )


@st.composite
def series_and_window(draw):
    values = draw(series_strategy())
    length = draw(st.integers(min_value=2, max_value=min(40, values.size)))
    return values, length


class TestDistanceProperties:
    @given(
        hnp.arrays(np.float64, 25, elements=finite_floats),
        hnp.arrays(np.float64, 25, elements=finite_floats),
    )
    def test_chebyshev_symmetry_and_identity(self, a, b):
        assert chebyshev_distance(a, b) == chebyshev_distance(b, a)
        assert chebyshev_distance(a, a) == 0.0

    @given(
        hnp.arrays(np.float64, 15, elements=finite_floats),
        hnp.arrays(np.float64, 15, elements=finite_floats),
        hnp.arrays(np.float64, 15, elements=finite_floats),
    )
    def test_chebyshev_triangle(self, a, b, c):
        assert chebyshev_distance(a, c) <= (
            chebyshev_distance(a, b) + chebyshev_distance(b, c) + 1e-9
        )

    @given(
        hnp.arrays(np.float64, 20, elements=finite_floats),
        hnp.arrays(np.float64, 20, elements=finite_floats),
    )
    def test_mean_difference_bounded_by_chebyshev(self, a, b):
        # The KV-Index filter property (Section 4.1).
        assert abs(a.mean() - b.mean()) <= chebyshev_distance(a, b) + 1e-9

    @given(
        hnp.arrays(np.float64, 24, elements=finite_floats),
        hnp.arrays(np.float64, 24, elements=finite_floats),
        st.integers(min_value=1, max_value=8),
    )
    def test_paa_difference_bounded_by_chebyshev(self, a, b, segments):
        # The iSAX filter property (Section 4.2).
        diff = np.abs(paa_transform(a, segments) - paa_transform(b, segments))
        assert np.all(diff <= chebyshev_distance(a, b) + 1e-9)


class TestMBTSProperties:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=2, max_value=20),
            ),
            elements=finite_floats,
        ),
        hnp.arrays(np.float64, 20, elements=finite_floats),
    )
    def test_eq2_lower_bounds_members(self, matrix, query):
        query = query[: matrix.shape[1]]
        box = MBTS.from_sequences(matrix)
        bound = box.distance_to_sequence(query)
        for row in matrix:
            assert bound <= chebyshev_distance(query, row) + 1e-9

    @given(
        hnp.arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=6),
                st.integers(min_value=2, max_value=12),
            ),
            elements=finite_floats,
        )
    )
    def test_union_contains_parts(self, matrix):
        half = max(1, matrix.shape[0] // 2)
        first = MBTS.from_sequences(matrix[:half])
        second = MBTS.from_sequences(matrix[half:]) if matrix[half:].size else first
        union = first.union(second)
        assert union.contains_mbts(first)
        assert union.contains_mbts(second)


class TestNormalizationProperties:
    @given(series_strategy(min_size=3, max_size=100))
    def test_znormalize_statistics(self, values):
        z = znormalize(values)
        assert np.all(np.isfinite(z))
        if values.std() > 1e-9:
            assert abs(z.mean()) < 1e-7
            assert abs(z.std() - 1.0) < 1e-7

    @given(series_and_window())
    def test_rolling_stats_match_naive(self, data):
        values, length = data
        means = rolling_mean(values, length)
        stds = rolling_std(values, length)
        # One-pass rolling variance carries an absolute error of about
        # eps_mach * scale^2; stds below that resolution legitimately
        # fall to the floor convention, so only resolvable stds are
        # compared against the two-pass reference.
        scale = max(1.0, float(np.max(np.abs(values))))
        resolution = 1e-6 * scale
        for i in range(0, values.size - length + 1, 7):
            window = values[i : i + length]
            assert abs(means[i] - window.mean()) < 1e-6 * scale
            naive_std = window.std()
            if naive_std > resolution:
                assert abs(stds[i] - naive_std) < 1e-6 * scale


class TestSAXProperties:
    @given(
        hnp.arrays(np.float64, 50, elements=finite_floats),
        st.sampled_from([2, 4, 8, 16]),
    )
    def test_symbol_ranges_cover_values(self, values, cardinality):
        alphabet = SAXAlphabet.gaussian(16)
        symbols = alphabet.symbols(values, cardinality)
        for value, symbol in zip(values, symbols):
            low, high = alphabet.symbol_range(int(symbol), cardinality)
            assert low <= value <= high

    @given(hnp.arrays(np.float64, 50, elements=finite_floats))
    def test_bit_prefix_invariant(self, values):
        alphabet = SAXAlphabet.gaussian(16)
        fine = alphabet.symbols(values, 16)
        for bits in (1, 2, 3):
            assert np.array_equal(
                alphabet.symbols(values, 1 << bits), fine >> (4 - bits)
            )


class TestSegmentBoundsProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=1, max_value=60),
    )
    def test_bounds_partition(self, length, segments):
        if segments > length:
            segments = length
        bounds = segment_bounds(length, segments)
        sizes = np.diff(bounds)
        assert bounds[0] == 0
        assert bounds[-1] == length
        assert np.all(sizes >= 1)
        assert sizes.max() - sizes.min() <= 1


class TestSearchEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        series_strategy(min_size=80, max_size=200),
        st.integers(min_value=4, max_value=25),
        st.floats(min_value=0.0, max_value=20.0),
        st.randoms(use_true_random=False),
    )
    def test_indices_match_sweepline(self, values, length, epsilon, rnd):
        if np.ptp(values) == 0.0:
            values = values + np.arange(values.size) * 1e-3
        source = WindowSource(values, length, "none")
        sweepline = SweeplineSearch.from_source(source)
        tsindex = TSIndex.from_source(
            source, params=TSIndexParams(min_children=2, max_children=4)
        )
        kvindex = KVIndex.from_source(source, params=KVIndexParams(num_bins=16))
        isax = ISAXIndex.from_source(
            source,
            params=ISAXParams(segments=min(4, length), leaf_capacity=8),
        )
        # The live ingestion plane, segmented small so the invariant
        # also covers delta + sealed-segment + compaction fan-out.
        live = LiveTwinIndex.from_source(
            source,
            params=TSIndexParams(min_children=2, max_children=4),
            seal_threshold=16,
            max_segments=2,
            background_compaction=False,
        )
        position = rnd.randrange(source.count)
        query = np.array(source.window_block(position, position + 1)[0])
        expected = sweepline.search(query, epsilon).positions
        assert position in expected
        for index in (tsindex, kvindex, isax, live):
            actual = index.search(query, epsilon).positions
            assert np.array_equal(actual, expected), type(index).__name__

    @settings(max_examples=15, deadline=None)
    @given(
        series_strategy(min_size=80, max_size=160),
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=1, max_value=10),
    )
    def test_knn_matches_brute_force(self, values, length, k):
        if np.ptp(values) == 0.0:
            values = values + np.arange(values.size) * 1e-3
        source = WindowSource(values, length, "none")
        index = TSIndex.from_source(
            source, params=TSIndexParams(min_children=2, max_children=4)
        )
        query = np.array(source.window_block(0, 1)[0])
        k = min(k, source.count)
        result = index.knn(query, k)
        block = source.window_block(0, source.count)
        profile = np.max(np.abs(block - query), axis=1)
        assert np.allclose(np.sort(result.distances), np.sort(profile)[:k])
