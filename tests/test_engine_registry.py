"""Tests for the named-index registry (ownership + persistence)."""

import numpy as np
import pytest

from repro.core.tsindex import TSIndex, TSIndexParams
from repro.engine import IndexRegistry, ShardedTSIndex
from repro.exceptions import IndexNotBuiltError, InvalidParameterError

PARAMS = TSIndexParams(min_children=4, max_children=10)


@pytest.fixture()
def series():
    return np.cumsum(np.random.default_rng(9).normal(size=1200))


@pytest.fixture()
def registry(series):
    registry = IndexRegistry()
    registry.build(
        "demo", series, 40, normalization="none", shards=3, params=PARAMS
    )
    return registry


class TestOwnership:
    def test_build_and_get(self, registry):
        engine = registry.get("demo")
        assert isinstance(engine, ShardedTSIndex)
        assert engine.shard_count == 3
        assert registry.names() == ["demo"]
        assert "demo" in registry and len(registry) == 1

    def test_build_duplicate_rejected(self, registry, series):
        with pytest.raises(InvalidParameterError):
            registry.build("demo", series, 40, normalization="none", shards=2)

    def test_build_overwrite_allowed(self, registry, series):
        rebuilt = registry.build(
            "demo", series, 40, normalization="none", shards=2,
            params=PARAMS, overwrite=True,
        )
        assert registry.get("demo") is rebuilt
        assert rebuilt.shard_count == 2

    def test_get_unknown_raises(self, registry):
        with pytest.raises(IndexNotBuiltError, match="nope"):
            registry.get("nope")

    def test_evict_returns_engine(self, registry):
        engine = registry.evict("demo")
        assert isinstance(engine, ShardedTSIndex)
        assert registry.names() == []
        with pytest.raises(IndexNotBuiltError):
            registry.evict("demo")

    def test_add_rejects_non_engine(self, registry):
        with pytest.raises(InvalidParameterError):
            registry.add("bad", object())

    def test_bad_names_rejected(self, registry, series):
        for bad in ("", "   ", None, 7):
            with pytest.raises(InvalidParameterError):
                registry.build(bad, series, 40, normalization="none", shards=1)


class TestStats:
    def test_stats_shape(self, registry):
        stats = registry.stats("demo")
        assert stats["name"] == "demo"
        assert stats["shards"] == 3
        assert stats["windows"] == registry.get("demo").size
        assert stats["normalization"] == "none"
        assert len(stats["shard_stats"]) == 3
        assert stats["built_at"] > 0

    def test_stats_all(self, registry, series):
        registry.build("two", series, 30, normalization="global", shards=2,
                       params=PARAMS)
        rows = registry.stats_all()
        assert [row["name"] for row in rows] == ["demo", "two"]


class TestPersistence:
    def test_save_load_roundtrip(self, registry, tmp_path):
        path = tmp_path / "demo.npz"
        registry.save("demo", path)
        restored = registry.load("copy", path)
        original = registry.get("demo")
        assert restored.shard_count == original.shard_count
        assert restored.spans == original.spans
        query = original.source.window(321)
        expected = original.search(query, 0.4)
        actual = restored.search(query, 0.4)
        assert np.array_equal(expected.positions, actual.positions)
        assert np.array_equal(expected.distances, actual.distances)

    def test_roundtrip_per_window(self, tmp_path):
        series = np.cumsum(np.random.default_rng(4).normal(size=900))
        registry = IndexRegistry()
        original = registry.build(
            "pw", series, 30, normalization="per_window", shards=4,
            params=PARAMS,
        )
        registry.save("pw", tmp_path / "pw.npz")
        restored = registry.load("pw2", tmp_path / "pw.npz")
        query = np.array(series[100:130])  # raw query, normalized on entry
        expected = original.search(query, 0.2)
        actual = restored.search(query, 0.2)
        assert np.array_equal(expected.positions, actual.positions)
        assert np.array_equal(expected.distances, actual.distances)

    def test_load_rejects_non_sharded_archive(self, registry, tmp_path, series):
        from repro.persistence import save_index

        mono = TSIndex.build(series, 40, normalization="none", params=PARAMS)
        path = tmp_path / "mono.npz"
        save_index(mono, path)
        with pytest.raises(InvalidParameterError):
            registry.load("mono", path)

    def test_load_duplicate_name_rejected(self, registry, tmp_path):
        path = tmp_path / "demo.npz"
        registry.save("demo", path)
        with pytest.raises(InvalidParameterError):
            registry.load("demo", path)
        registry.load("demo", path, overwrite=True)  # explicit is fine
