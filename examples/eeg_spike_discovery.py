"""EEG scenario: find recurring epileptiform discharges with twin search.

The paper's introduction motivates Chebyshev matching for EEG/ECG:
a clinically meaningful match must track the query point-for-point —
a missing (or extra) spike disqualifies it, even if the Euclidean
average looks close.

During an epileptiform discharge the pathological rhythm *dominates*
the normal background, so recurrences of the same discharge are genuine
point-wise twins. This example plants four such discharges in an EEG
surrogate, indexes every window, queries with one occurrence and:

1. recovers all four occurrences (and nothing else) by twin search;
2. shows the equivalent Euclidean query burying them in false hits.

Run:  python examples/eeg_spike_discovery.py
"""

import numpy as np

from repro import Normalization, TSIndex, WindowSource
from repro.core.events import event_positions
from repro.data import synthetic
from repro.euclidean.mass import twin_vs_euclidean_comparison


def plant_discharges(series: np.ndarray, length: int, starts, seed=1):
    """Overwrite ``series`` at each start with one discharge waveform.

    The discharge is a 3 Hz spike-and-wave burst; the normal rhythm is
    suppressed to 10% during the event (as in real recordings), so the
    occurrences differ only by ~1.5% amplitude jitter.
    """
    rng = np.random.default_rng(seed)
    tt = np.arange(length)
    spike_wave = (
        4.0 * np.exp(-((tt % 33) - 6.0) ** 2 / 8.0)   # sharp spike
        - 2.0 * np.exp(-((tt % 33) - 20.0) ** 2 / 40.0)  # slow wave
    ) * np.hanning(length) * 2.0
    scale = float(series.std())
    for start in starts:
        jitter = 1.0 + rng.normal(0.0, 0.015)
        series[start : start + length] = (
            0.1 * series[start : start + length]
            + spike_wave * scale * jitter
        )
    return series


def main() -> None:
    length = 100
    starts = (9_000, 21_500, 38_000, 52_400)
    series = synthetic.eeg_like(60_000, seed=7)
    series = plant_discharges(series, length, starts)
    print(f"EEG surrogate: {series.size} samples (~2 min at 500 Hz); "
          f"discharges planted at {starts}")

    source = WindowSource(series, length, Normalization.GLOBAL)
    index = TSIndex.from_source(source)
    print(f"indexed {index.size} windows "
          f"({index.build_stats.seconds:.1f}s, height {index.height})")

    query = np.array(source.window_block(starts[0], starts[0] + 1)[0])
    print(f"\nquery: the discharge at sample {starts[0]}")

    for epsilon in (0.2, 0.4, 0.8):
        result = index.search(query, epsilon)
        events = event_positions(result, min_gap=length)
        recovered = sum(
            any(abs(e - s) < 5 for e in events) for s in starts
        )
        print(f"  eps={epsilon}: {len(result):3d} twin windows -> "
              f"{len(events)} events {events}  "
              f"[{recovered}/{len(starts)} planted discharges]")

    # Why not Euclidean? On ordinary background activity (where clinical
    # review spends most of its time) the no-false-negative radius
    # admits hundreds of windows that are not point-wise matches.
    background_query = np.array(source.window_block(30_000, 30_001)[0])
    comparison = twin_vs_euclidean_comparison(source, background_query, 0.4)
    print("\nsame comparison on an ordinary background window:")
    print(f"  Chebyshev twins at eps=0.4:                 "
          f"{comparison.twin_count:6d}")
    print(f"  Euclidean matches at radius eps*sqrt(l)={comparison.euclidean_radius:.0f}: "
          f"{comparison.euclidean_count:6d}")
    print(f"  excess factor: {comparison.excess_factor:.0f}x "
          f"(false negatives: {comparison.missed_twins})")


if __name__ == "__main__":
    main()
