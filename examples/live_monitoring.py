"""Live monitoring: stream a traffic series, query while it grows.

Demonstrates the :mod:`repro.live` ingestion plane end to end — create
a durable :class:`~repro.live.LiveTwinIndex`, stream a synthetic
traffic series (daily periodicity + noise) in small batches while
alternating twin queries, watch the delta seal into frozen segments and
compact in the background, then simulate a crash and recover from the
write-ahead log.

Run:  python examples/live_monitoring.py
"""

import shutil
import tempfile

import numpy as np

from repro.data import synthetic
from repro.live import LiveTwinIndex


def traffic_series(n: int, seed: int = 0) -> np.ndarray:
    """A traffic-count surrogate: strong daily cycle, weekly swell,
    non-negative noisy counts."""
    base = synthetic.noisy_sines(
        n,
        seed=seed,
        frequencies=(1 / 288, 1 / 2016),  # 5-min samples: day + week
        amplitudes=(40.0, 12.0),
        noise_std=4.0,
    )
    return np.maximum(base + 60.0, 0.0)


def main() -> None:
    directory = tempfile.mkdtemp(prefix="repro-live-")
    series = traffic_series(40_000, seed=11)
    length = 288  # one day of 5-minute readings
    warmup, batch = 4_000, 250

    live = LiveTwinIndex.create(
        directory,
        series[:warmup],
        length=length,
        seal_threshold=4_096,
        max_segments=4,
    )
    print(f"initialized {live!r}\n  durable under {directory}")

    # --- stream the rest, alternating appends with twin queries --------
    yesterday = np.array(series[warmup - length : warmup])
    for start in range(warmup, len(series), batch):
        live.append(series[start : start + batch])
        if (start - warmup) % (batch * 40) == 0:
            now = live.series_length
            query = np.array(live.values[now - length : now])
            twins = live.search(query, epsilon=12.0)
            seen_before = live.exists(yesterday, epsilon=8.0)
            print(
                f"  t={now:6d}  segments={live.segment_count} "
                f"delta={live.delta_windows:4d}  "
                f"current-day twins={len(twins):3d}  "
                f"yesterday pattern seen={seen_before}"
            )
    print(
        f"streamed {live.series_length} readings: "
        f"{live.seal_count} seals, {live.compaction_count} compactions, "
        f"{live.segment_count} segments resident"
    )

    # --- most similar historical days to the latest one -----------------
    latest = np.array(live.values[-length:])
    nearest = live.knn(
        latest, 3, exclude=(live.window_count - length, live.window_count)
    )
    print("nearest historical days to the latest window:")
    for position, distance in nearest:
        print(f"  position {position:6d}  distance {distance:6.2f}")

    # --- the same plane behind the unified serving front door ------------
    # A live plane registers in a QueryEngine like any other plane; the
    # unified pipeline keys the cache by the plane's mutation generation,
    # so appends can never serve stale results.
    from repro import QueryEngine

    with QueryEngine() as serving:
        serving.add_live("traffic", live)
        served = serving.query("traffic", latest, epsilon=12.0)
        direct = live.search(latest, epsilon=12.0)
        assert np.array_equal(served.positions, direct.positions)
        print(
            f"served through QueryEngine: {len(served)} twins "
            f"(== direct call), "
            f"count={serving.count('traffic', latest, 12.0)}, "
            f"exists={serving.exists('traffic', latest, 12.0)}"
        )
        serving.append("traffic", series[:batch])  # ingest via the engine

    # --- crash and recover ----------------------------------------------
    # Drop the object without a clean close: everything journaled or
    # sealed must come back.
    readings_before = live.series_length
    answer_before = live.search(latest, epsilon=12.0)
    del live

    recovered = LiveTwinIndex.recover(directory)
    answer_after = recovered.search(latest, epsilon=12.0)
    assert recovered.series_length == readings_before
    assert np.array_equal(answer_before.positions, answer_after.positions)
    print(
        f"recovered {recovered!r} from the WAL — "
        f"{len(answer_after)} twins reproduced exactly"
    )
    recovered.append(series[:batch])  # the plane keeps ingesting
    recovered.close()
    shutil.rmtree(directory)


if __name__ == "__main__":
    main()
