"""Operational scenario: build once, save, reload, query.

Index construction dominates cost; real deployments build offline and
serve queries from a reloaded index. Every method in the library
round-trips through a single ``.npz`` archive.

Run:  python examples/index_persistence.py
"""

import os
import tempfile

import numpy as np

from repro import ISAXIndex, KVIndex, TSIndex
from repro.bench.timing import Timer
from repro.data import synthetic
from repro.persistence import load_index, save_index


def main() -> None:
    series = synthetic.insect_like(20_000, seed=5)
    length = 100
    query = series[2_500 : 2_500 + length]

    with tempfile.TemporaryDirectory() as workdir:
        for cls, label in (
            (TSIndex, "tsindex"),
            (KVIndex, "kvindex"),
            (ISAXIndex, "isax"),
        ):
            with Timer() as build_timer:
                index = cls.build(series, length, normalization="none")
            expected = index.search(query, epsilon=0.2)

            path = os.path.join(workdir, f"{label}.npz")
            with Timer() as save_timer:
                save_index(index, path)
            with Timer() as load_timer:
                restored = load_index(path)
            actual = restored.search(query, epsilon=0.2)

            assert np.array_equal(actual.positions, expected.positions)
            size_mb = os.path.getsize(path) / (1024 * 1024)
            print(f"{label:8s} build {build_timer.seconds:6.2f}s | "
                  f"save {save_timer.milliseconds:7.1f}ms | "
                  f"load {load_timer.milliseconds:7.1f}ms | "
                  f"archive {size_mb:6.2f} MB | "
                  f"{len(actual)} twins verified identical")

    print("\nall indices round-tripped with identical query answers.")


if __name__ == "__main__":
    main()
