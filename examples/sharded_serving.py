"""Serving twin queries: sharded build, concurrent callers, cache hits.

Demonstrates the :mod:`repro.engine` subsystem end to end — build a
sharded index through a :class:`~repro.engine.QueryEngine`, verify the
sharded answers match a monolithic TS-Index exactly, serve a repeated
workload from many threads, and inspect the cache hit rate. Every call
routes through the unified query pipeline (:mod:`repro.query`), so the
same front door also serves the paper's baselines — the final section
registers a sweepline plane and k-NN-queries it through the planner's
central synthesis (sweepline itself has no k-NN kernel).

Run:  python examples/sharded_serving.py
"""

import concurrent.futures
import time

import numpy as np

from repro import QueryEngine, TSIndex
from repro.data import synthetic


def main() -> None:
    series = synthetic.insect_like(20_000, seed=5)
    length, epsilon = 100, 0.6

    with QueryEngine(cache_capacity=256) as serving:
        # --- sharded build (parallel across shards) ---------------------
        started = time.perf_counter()
        engine = serving.build(
            "archive", series, length, normalization="global", shards=4
        )
        elapsed = time.perf_counter() - started
        print(f"built {engine} in {elapsed:.2f}s wall")
        for row in engine.shard_stats():
            print(f"  shard {row['span']:>16}  {row['windows']:5d} windows  "
                  f"{row['nodes']:4d} nodes  {row['build_seconds']:.2f}s")

        # --- sharded answers are exactly the monolithic answers ---------
        mono = TSIndex.build(series, length, normalization="global")
        query = engine.source.window(2500)
        sharded = serving.query("archive", query, epsilon)
        straight = mono.search(query, epsilon)
        identical = np.array_equal(sharded.positions, straight.positions) and \
            np.array_equal(sharded.distances, straight.distances)
        print(f"\nsharded == monolithic: {identical} "
              f"({len(sharded)} twins)")

        # --- a repeated workload from concurrent callers ----------------
        rng = np.random.default_rng(11)
        workload = [engine.source.window(int(p))
                    for p in rng.integers(0, engine.size, size=40)]
        workload *= 3  # repeats -> cache hits

        def call(values):
            return len(serving.query("archive", values, epsilon))

        started = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(8) as callers:
            totals = list(callers.map(call, workload))
        elapsed = time.perf_counter() - started

        stats = serving.stats()
        print(f"\nserved {len(workload)} queries from 8 threads "
              f"in {elapsed*1000:.0f}ms "
              f"({len(workload)/elapsed:.0f} q/s), "
              f"{sum(totals)} total twins")
        print(f"cache: {stats.cache.hits} hits / {stats.cache.lookups} "
              f"lookups (hit rate {stats.cache.hit_rate:.0%})")

        # --- the unified pipeline serves every plane ---------------------
        # A paper baseline registers through the same front door; modes
        # it lacks natively (k-NN, count) are synthesized by the planner
        # and agree exactly with the tree's native kernels.
        serving.build(
            "baseline", series, length, method="sweepline",
            normalization="global",
        )
        nearest_tree = serving.knn("archive", query, 5)
        nearest_scan = serving.knn("baseline", query, 5)
        agree = np.array_equal(
            nearest_tree.positions, nearest_scan.positions
        )
        print(f"\nsweepline served through the engine: "
              f"knn(synthesized) == knn(tree): {agree}")
        print(f"count without materializing: "
              f"{serving.count('baseline', query, epsilon)} twins, "
              f"exists: {serving.exists('baseline', query, epsilon)}")


if __name__ == "__main__":
    main()
