"""Figure 1 reproduction: what Euclidean matching gets wrong.

The paper's Figure 1 shows two failure modes of Euclidean subsequence
matching relative to Chebyshev: a returned match that (a) lacks a spike
the query has, or (b) has a spike the query lacks. This example scans a
sample of queries over the EEG surrogate, picks the one on which the
equivalent Euclidean query admits the most non-twins, and renders the
query, a true twin, and the worst Euclidean impostor as ASCII
sparklines with the worst-deviation diagnostics.

Run:  python examples/euclidean_false_positives.py
"""

import numpy as np

from repro import Normalization, WindowSource
from repro.core.distance import euclidean_threshold_for
from repro.data import synthetic
from repro.euclidean.mass import (
    chebyshev_distance_profile,
    euclidean_distance_profile,
    spike_discrepancy,
)

SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: np.ndarray, width: int = 68) -> str:
    """Downsample to ``width`` columns and render as a sparkline."""
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array(
            [values[a:b].mean() for a, b in zip(edges, edges[1:])]
        )
    low, high = values.min(), values.max()
    span = (high - low) or 1.0
    levels = ((values - low) / span * (len(SPARK) - 1)).astype(int)
    return "".join(SPARK[level] for level in levels)


def pick_illustrative_query(source, epsilon, radius, sample=40, seed=0):
    """The sampled query whose Euclidean ball admits the most non-twins."""
    rng = np.random.default_rng(seed)
    best = None
    for position in rng.integers(0, source.count, size=sample):
        query = np.array(source.window_block(int(position), int(position) + 1)[0])
        chebyshev = chebyshev_distance_profile(source, query)
        euclidean = euclidean_distance_profile(source, query)
        twins = chebyshev <= epsilon
        impostors = (euclidean <= radius) & ~twins
        record = (int(impostors.sum()), int(position), chebyshev, euclidean)
        if best is None or record[0] > best[0]:
            best = record
    return best


def main() -> None:
    length = 100
    epsilon = 0.4
    radius = euclidean_threshold_for(epsilon, length)
    series = synthetic.eeg_like(120_000, seed=7)
    source = WindowSource(series, length, Normalization.GLOBAL)

    impostor_count, query_start, chebyshev, euclidean = (
        pick_illustrative_query(source, epsilon, radius)
    )
    query = np.array(source.window_block(query_start, query_start + 1)[0])
    twins = chebyshev <= epsilon
    euclid_hits = euclidean <= radius
    false_positives = np.flatnonzero(euclid_hits & ~twins)

    print(f"query window at {query_start} "
          f"(eps={epsilon}, euclidean radius={radius:.2f})")
    print(f"chebyshev twins:       {int(twins.sum()):8d}")
    print(f"euclidean matches:     {int(euclid_hits.sum()):8d}")
    print(f"  of which NOT twins:  {false_positives.size:8d}  "
          f"(all false positives)\n")

    print(f"query        {sparkline(query)}")
    true_twins = np.flatnonzero(twins)
    others = true_twins[np.abs(true_twins - query_start) >= length]
    if others.size:
        other = int(others[0])
        window = np.array(source.window_block(other, other + 1)[0])
        print(f"twin @{other:<7d}{sparkline(window)}")

    if false_positives.size:
        impostor = int(false_positives[np.argmin(euclidean[false_positives])])
        window = np.array(source.window_block(impostor, impostor + 1)[0])
        print(f"fake @{impostor:<7d}{sparkline(window)}\n")
        report = spike_discrepancy(query, window)
        print("worst Euclidean impostor diagnostics (the Figure 1 cases):")
        print(f"  euclidean {report['euclidean']:.2f} <= radius {radius:.2f}"
              f"  BUT chebyshev {report['chebyshev']:.2f} > eps {epsilon}")
        for timestamp, diff in zip(
            report["worst_timestamps"], report["worst_differences"]
        ):
            case = (
                "query has a spike the match lacks (Fig. 1a)"
                if abs(query[timestamp]) > abs(window[timestamp])
                else "match has a spike the query lacks (Fig. 1b)"
            )
            print(f"  t={timestamp:3d}: |diff|={diff:.2f}  -> {case}")


if __name__ == "__main__":
    main()
