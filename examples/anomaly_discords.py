"""Anomaly detection: Chebyshev discords in an ECG-like stream.

The paper's introduction motivates twin search for "detecting irregular
patterns in medical applications like EEG or ECG sequences". The
matrix-profile view makes that concrete: a window whose nearest
neighbour (outside its own neighbourhood) is *far* has no twin anywhere
— it is a **discord**, the signature of an arrhythmic beat.

This example builds an ECG-like series of repeating heartbeats, injects
two arrhythmic beats, computes the exact Chebyshev matrix profile with
TS-Index 1-NN self joins, and reads off motifs (normal beats) and
discords (the arrhythmias). It also shows the streaming variant:
appending new readings and asking "has this beat shape occurred
before?" with `exists`.

Run:  python examples/anomaly_discords.py
"""

import numpy as np

from repro.extensions.profile import chebyshev_matrix_profile
from repro.extensions.streaming import StreamingTwinIndex


def ecg_like(beats: int = 40, beat_length: int = 80, seed: int = 4):
    """Repeating PQRST-ish beats with small jitter + 2 arrhythmias."""
    rng = np.random.default_rng(seed)
    tt = np.arange(beat_length)
    normal_beat = (
        6.0 * np.exp(-((tt - 30) ** 2) / 6.0)        # R spike
        - 1.5 * np.exp(-((tt - 38) ** 2) / 10.0)     # S dip
        + 0.8 * np.exp(-((tt - 58) ** 2) / 40.0)     # T wave
        + 0.4 * np.exp(-((tt - 15) ** 2) / 30.0)     # P wave
    )
    arrhythmic_beat = (
        2.0 * np.exp(-((tt - 25) ** 2) / 80.0)       # widened, low R
        + 3.0 * np.exp(-((tt - 50) ** 2) / 15.0)     # ectopic bump
    )
    arrhythmia_at = {12, 29}
    segments = []
    for beat in range(beats):
        template = arrhythmic_beat if beat in arrhythmia_at else normal_beat
        jitter = 1.0 + rng.normal(0.0, 0.02)
        noise = rng.normal(0.0, 0.08, size=beat_length)
        segments.append(template * jitter + noise)
    series = np.concatenate(segments)
    anomaly_positions = sorted(b * beat_length for b in arrhythmia_at)
    return series, anomaly_positions, normal_beat


def main() -> None:
    beat_length = 80
    series, anomalies, normal_beat = ecg_like()
    print(f"ECG-like series: {series.size} samples, "
          f"arrhythmias injected at {anomalies}")

    profile = chebyshev_matrix_profile(
        series, beat_length, normalization="none"
    )
    print(f"computed Chebyshev matrix profile over {len(profile)} windows "
          f"(exclusion zone ±{profile.exclusion})")

    position, neighbor, distance = profile.motif()
    print(f"\nmotif (most repeated beat): windows {position} and "
          f"{neighbor} at distance {distance:.3f}")

    print("\ntop discords (least repeatable windows):")
    recovered = set()
    for rank, (discord, score) in enumerate(profile.discords(3), start=1):
        nearest_truth = min(anomalies, key=lambda a: abs(a - discord))
        is_hit = abs(discord - nearest_truth) < beat_length
        if is_hit:
            recovered.add(nearest_truth)
        print(f"  #{rank}: window {discord:5d}  profile distance {score:.2f}"
              f"  -> {'ARRHYTHMIA at ' + str(nearest_truth) if is_hit else 'normal variation'}")
    print(f"recovered {len(recovered)}/{len(anomalies)} injected arrhythmias "
          f"in the top discords")

    # Streaming: monitor new beats as they arrive.
    stream = StreamingTwinIndex(series, beat_length)
    rng = np.random.default_rng(99)
    normal_again = normal_beat * 1.01 + rng.normal(0.0, 0.08, beat_length)
    novel_shape = normal_beat[::-1] * 1.5
    print("\nstreaming monitor (epsilon = 1.0):")
    for label, beat in (("familiar beat", normal_again), ("novel shape", novel_shape)):
        seen = stream.exists(beat, epsilon=1.0)
        print(f"  {label:14s}: {'seen before' if seen else 'NEVER SEEN -> alert'}")
        stream.append(beat)
    print("after appending, both shapes are indexed:")
    for label, beat in (("familiar beat", normal_again), ("novel shape", novel_shape)):
        print(f"  {label:14s}: exists now = {stream.exists(beat, epsilon=1e-9)}")


if __name__ == "__main__":
    main()
