"""Cross-archive scenario: which sensor saw this pattern, and when?

A deployment rarely has one series — it has an archive: many sensors,
each with its own history. This example builds a `CollectionIndex`
(one TS-Index per sensor) over a fleet of vibration-like sensor
recordings, plants one fault signature in two of them, and then:

1. searches the whole archive with one query — results are tagged with
   their series of origin;
2. ranks sensors by how often the pattern occurs;
3. runs the k-NN variant to find the globally closest occurrences even
   where no threshold match exists;
4. scores a whole batch of recent event templates at once.

Run:  python examples/archive_collection.py
"""

import numpy as np

from repro import CollectionIndex, search_batch
from repro.core.events import event_positions
from repro.data import synthetic


def sensor_fleet(sensors: int = 6, n: int = 4000, seed: int = 10):
    """Per-sensor baseline vibration + a fault signature in two of them."""
    rng = np.random.default_rng(seed)
    tt = np.arange(120)
    fault = (
        np.hanning(120)
        * np.sin(2 * np.pi * 0.09 * tt)
        * 3.0
    )
    fleet = []
    planted = {}
    for sensor in range(sensors):
        base = synthetic.ar1(n, seed=seed + sensor, phi=0.8, sigma=0.15)
        base += 0.3 * np.sin(2 * np.pi * np.arange(n) / rng.uniform(180, 260))
        if sensor in (1, 4):  # the faulty pair
            starts = sorted(rng.integers(0, n - 120, size=2).tolist())
            for start in starts:
                base[start : start + 120] += fault * (1 + rng.normal(0, 0.01))
            planted[sensor] = starts
        fleet.append(base)
    return fleet, fault, planted


def main() -> None:
    length = 120
    fleet, fault, planted = sensor_fleet()
    archive = CollectionIndex(fleet, length, normalization="none")
    print(f"archive: {archive.series_count} sensors, "
          f"{archive.window_count} windows of length {length}")
    print(f"fault signature planted in sensors {sorted(planted)} "
          f"at {planted}\n")

    # 1. one query, whole archive
    epsilon = 1.2
    matches = archive.search(fault, epsilon)
    by_sensor: dict[int, list[int]] = {}
    for match in matches:
        by_sensor.setdefault(match.series_id, []).append(match.position)
    print(f"threshold search (eps={epsilon}): {len(matches)} matching "
          f"windows across {len(by_sensor)} sensor(s)")

    # 2. rank sensors by occurrence count
    counts = archive.count_per_series(fault, epsilon)
    ranking = sorted(
        range(archive.series_count), key=lambda s: -counts[s]
    )
    print("sensor ranking by twin count:",
          [(sensor, counts[sensor]) for sensor in ranking if counts[sensor]])

    for sensor, positions in sorted(by_sensor.items()):
        result = archive.member(sensor).search(fault, epsilon)
        events = event_positions(result, min_gap=length)
        truth = planted.get(sensor, [])
        print(f"  sensor {sensor}: events at {events}  (planted: {truth})")

    # 3. global k-NN: closest occurrences anywhere
    top = archive.knn(fault, 4)
    print("\nglobal 4-NN of the fault signature:")
    for match in top:
        print(f"  sensor {match.series_id} @ {match.position:5d}  "
              f"distance {match.distance:.3f}")

    # 4. batch scoring of several templates against one sensor
    templates = [fault, fault * 0.5, np.roll(fault, 30)]
    batch = search_batch(archive.member(1), templates, epsilon)
    print("\nbatch scoring against sensor 1 "
          f"(matches per template): {batch.match_counts()}")
    print(f"aggregate candidates verified: {batch.stats.candidates}")


if __name__ == "__main__":
    main()
