"""Variable-length twin queries: one engine, every query length.

Demonstrates query length ``m <= l`` as a first-class capability of
the unified query plane — a mixed-length workload served by a sharded
engine through :class:`~repro.engine.QueryEngine`, answers checked
against the brute-force prefix scan (tail positions at the end of the
series included), k-NN/exists/count on prefixes, and a live ingestion
plane finding a short pattern that spans a freshly appended tail no
full-length window covers yet.

Run:  python examples/varlength_queries.py
"""

import numpy as np

from repro import QueryEngine
from repro.data import synthetic
from repro.live import LiveTwinIndex


def prefix_scan(values, query, epsilon):
    """The oracle: every m-window of the series, checked exactly."""
    windows = np.lib.stride_tricks.sliding_window_view(values, query.size)
    distances = np.max(np.abs(windows - query), axis=1)
    return np.flatnonzero(distances <= epsilon)


def main() -> None:
    series = synthetic.insect_like(20_000, seed=9)
    length, epsilon = 100, 0.5

    with QueryEngine(cache_capacity=128) as serving:
        engine = serving.build(
            "archive", series, length, normalization="global", shards=4
        )
        values = engine.source.values

        # --- a mixed-length workload through one front door -------------
        pattern = np.array(values[4200 : 4200 + length])
        workload = [pattern, pattern[:50], pattern[:25], pattern[:12]]
        print("mixed-length workload against the sharded engine:")
        batch = serving.batch("archive", workload, epsilon, use_cache=False)
        for query, result in zip(workload, batch.results):
            expected = prefix_scan(values, query, epsilon)
            exact = np.array_equal(result.positions, expected)
            print(f"  m={query.size:3d}  {len(result):6d} twins  "
                  f"(== prefix scan: {exact})")

        # --- tail positions: matches past the last indexed window -------
        m = 40
        tail_start = values.size - m  # no l-window starts here
        tail_query = np.array(values[tail_start:])
        found = serving.query("archive", tail_query, 0.0, use_cache=False)
        print(f"\ntail query (m={m}): start {tail_start} is past the last "
              f"indexed window ({engine.size - 1}); "
              f"found at {tail_start in found.positions}")

        # --- knn / exists / count on prefixes ---------------------------
        short = pattern[:30]
        nearest = serving.knn("archive", short, k=3)
        print(f"\nknn on m=30 prefix: positions {nearest.positions.tolist()}"
              f" distances {[round(d, 4) for d in nearest.distances]}")
        print(f"exists(m=30, eps=0.2): "
              f"{serving.exists('archive', short, 0.2)}  "
              f"count: {serving.count('archive', short, 0.2)}")

    # --- live plane: a short pattern across the appended tail -----------
    live = LiveTwinIndex(series[:5000], length, seal_threshold=1024,
                         background_compaction=False)
    try:
        motif = np.array(series[100:130])      # m=30 pattern
        live.append(motif)                     # lands in the tail
        result = live.search_varlength(motif, 0.0)
        newest = int(result.positions[-1])
        print(f"\nlive plane: m={motif.size} motif re-appears at "
              f"{newest} (series length {live.series_length}, "
              f"windows {live.window_count}) — a position only the "
              f"tail scan can serve: {newest >= live.window_count}")
    finally:
        live.close()


if __name__ == "__main__":
    main()
