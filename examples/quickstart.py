"""Quickstart: build a TS-Index, run threshold and k-NN twin queries.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import TSIndex, twin_search
from repro.data import synthetic


def main() -> None:
    # A synthetic series with a planted repetition: the pattern at
    # position 1200 recurs (with small jitter) at position 4700.
    rng = np.random.default_rng(7)
    series = synthetic.insect_like(6000, seed=21)
    series[4700:4800] = series[1200:1300] + rng.normal(0.0, 0.01, size=100)

    # --- one-call convenience -----------------------------------------
    query = series[1200:1300]
    result = twin_search(series, query, epsilon=0.05)
    print(f"twin_search: {len(result)} twins of series[1200:1300] at eps=0.05")
    for position, distance in result:
        print(f"  position {position:5d}  chebyshev distance {distance:.4f}")

    # --- explicit index (build once, query many times) -----------------
    index = TSIndex.build(series, length=100, normalization="none")
    print(f"\nbuilt {index}")
    print(f"  height={index.height}  nodes={index.node_count}  "
          f"splits={index.build_stats.splits}  "
          f"build={index.build_stats.seconds:.2f}s")

    result = index.search(query, epsilon=0.05)
    print(f"\nindex.search: {len(result)} twins "
          f"(candidates={result.stats.candidates}, "
          f"nodes pruned={result.stats.nodes_pruned})")

    nearest = index.knn(query, k=5)
    print("\nindex.knn(k=5):")
    for position, distance in nearest:
        print(f"  position {position:5d}  distance {distance:.4f}")

    # Tighter thresholds return fewer twins; the planted copy survives.
    for epsilon in (0.5, 0.1, 0.05, 0.02):
        print(f"eps={epsilon:<5}: {index.count(query, epsilon):4d} twins")


if __name__ == "__main__":
    main()
