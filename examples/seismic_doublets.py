"""Seismology scenario: doublet earthquakes as twin subsequences.

"Doublets" are pairs of earthquakes with nearly identical waveforms —
the same rupture process observed twice. The paper's introduction names
finding doublets as a twin-search application: two waveforms qualify
only if they agree everywhere (Chebyshev), not just on average.

Pipeline (mirroring seismological practice):

1. build a synthetic seismogram — microseism background plus two event
   families, each recurring twice with ~1% amplitude jitter;
2. screen for candidate events with a simple energy detector (quiet
   background windows would otherwise trivially twin each other);
3. twin-search each detected event against a TS-Index over *all*
   windows; non-overlapping matches are doublets.

Run:  python examples/seismic_doublets.py
"""

import numpy as np

from repro import TSIndex


def synthetic_seismogram(n: int, seed: int = 3):
    """Background noise + two event families, each recurring twice."""
    rng = np.random.default_rng(seed)
    trace = rng.normal(0.0, 0.03, size=n)
    t = np.arange(n)
    trace += 0.04 * np.sin(2 * np.pi * t / 900 + rng.uniform(0, 6))

    def event_waveform(duration, dominant_period, seed):
        local = np.random.default_rng(seed)
        tt = np.arange(duration)
        envelope = tt / 6.0 * np.exp(-tt / (duration / 4.0))
        phase = local.uniform(0, 2 * np.pi)
        return envelope * np.sin(2 * np.pi * tt / dominant_period + phase)

    families = {
        "A": event_waveform(120, 11.0, seed=101),
        "B": event_waveform(120, 17.0, seed=202),
    }
    occurrences = {"A": (800, 3100), "B": (1700, 4200)}
    for family, starts in occurrences.items():
        waveform = families[family]
        for start in starts:
            jitter = 1.0 + rng.normal(0.0, 0.01)
            trace[start : start + waveform.size] += waveform * jitter
    return trace, occurrences


def detect_events(trace: np.ndarray, length: int, threshold: float):
    """Energy screening: window starts whose peak amplitude is loud.

    Returns non-overlapping detections (greedy, loudest-aligned).
    """
    loud = np.abs(trace) > threshold
    detections = []
    position = 0
    while position < trace.size - length:
        if loud[position]:
            onset = max(0, position - 10)  # include a pre-event margin
            detections.append(min(onset, trace.size - length))
            position = onset + length
        else:
            position += 1
    return detections


def main() -> None:
    length = 120
    trace, occurrences = synthetic_seismogram(5000)
    print(f"seismogram: {trace.size} samples; "
          f"planted doublets: {occurrences}")

    index = TSIndex.build(trace, length, normalization="none")
    print(f"indexed {index.size} windows in "
          f"{index.build_stats.seconds:.1f}s")

    detections = detect_events(trace, length, threshold=0.5)
    print(f"energy detector: {len(detections)} candidate events at "
          f"{detections}")

    epsilon = 0.15
    doublets = []
    for onset in detections:
        query = trace[onset : onset + length]
        result = index.search(query, epsilon)
        for position in result.positions.tolist():
            if position >= onset + length:  # non-overlapping, dedup by order
                doublets.append((onset, position))

    print(f"\ndiscovered {len(doublets)} doublet(s) at eps={epsilon}:")
    for first, second in doublets:
        distance = float(np.max(np.abs(
            trace[first : first + length] - trace[second : second + length]
        )))
        print(f"  events at {first:5d} and {second:5d}  "
              f"(chebyshev distance {distance:.3f})")

    for family, (first, second) in occurrences.items():
        recovered = any(
            abs(a - first) < length and abs(b - second) < length
            for a, b in doublets
        )
        print(f"planted doublet {family} ({first}, {second}): "
              f"{'RECOVERED' if recovered else 'missed'}")


if __name__ == "__main__":
    main()
