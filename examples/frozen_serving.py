"""The dynamic → frozen index lifecycle: build, freeze, serve, persist.

Demonstrates :class:`repro.core.frozen.FrozenTSIndex` end to end —
build a dynamic TS-Index (the structure that accepts inserts), freeze
it into the flat array-backed query plane, check the answers are
byte-identical, run a batched workload through one shared traversal,
and round-trip the flat arrays through the ``.npz`` serializer.

Run:  python examples/frozen_serving.py
"""

import os
import tempfile
import time

import numpy as np

from repro import TSIndex
from repro.data import synthetic
from repro.persistence import load_index, save_index


def main() -> None:
    series = synthetic.noisy_sines(30_000, seed=9, noise_std=0.2)
    length, epsilon = 100, 0.35

    # --- build (dynamic: optimized for insertion) ---------------------
    started = time.perf_counter()
    dynamic = TSIndex.build(series, length, normalization="global")
    print(f"built {dynamic!r} in {time.perf_counter() - started:.2f}s")

    # --- freeze (read-optimized: flat arrays, vectorized frontiers) ---
    frozen = dynamic.freeze()
    print(f"frozen to {frozen!r} in {frozen.freeze_seconds * 1e3:.1f}ms")

    # --- identical answers --------------------------------------------
    query = frozen.source.window(4242)
    a = dynamic.search(query, epsilon)
    b = frozen.search(query, epsilon)
    identical = np.array_equal(a.positions, b.positions) and np.array_equal(
        a.distances, b.distances
    )
    print(f"frozen == dynamic: {identical} ({len(b)} twins)")
    print(f"nearest 5: {frozen.knn(query, 5).positions.tolist()}")
    print(f"any twin within 0.05? {frozen.exists(query, 0.05)}")

    # --- a batched workload shares one traversal ----------------------
    rng = np.random.default_rng(3)
    workload = [
        frozen.source.window(int(p))
        for p in rng.integers(0, frozen.size, size=50)
    ]
    started = time.perf_counter()
    batch = frozen.search_batch(workload, epsilon)
    elapsed = time.perf_counter() - started
    print(
        f"batched {len(workload)} queries in {elapsed * 1e3:.1f}ms "
        f"({batch.total_matches} twins, "
        f"{len(workload) / elapsed:.0f} q/s)"
    )

    # --- persistence: the flat arrays round-trip natively -------------
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "frozen.npz")
        save_index(frozen, path)
        restored = load_index(path)
        again = restored.search(query, epsilon)
        print(
            f"reloaded {restored!r}: answers match = "
            f"{np.array_equal(again.positions, b.positions)}"
        )

    # --- thaw when the index must grow again --------------------------
    thawed = frozen.thaw()
    print(f"thawed back to {thawed!r} (accepts inserts again)")


if __name__ == "__main__":
    main()
