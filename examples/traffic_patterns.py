"""Road-traffic scenario: find days with matching congestion patterns.

The paper's introduction lists "identifying similar traffic patterns in
road networks" as a twin-search application. This example builds a
month of synthetic loop-detector readings (daily rush-hour structure
with day-to-day variation plus incident days) and asks: *which days
contain a rush-hour pattern interchangeable with today's?* — then
compares how all four search methods handle the same query.

Run:  python examples/traffic_patterns.py
"""

import numpy as np

from repro import create_method
from repro.bench.timing import Timer

SAMPLES_PER_DAY = 288  # 5-minute readings


def synthetic_traffic(days: int = 30, seed: int = 12) -> np.ndarray:
    rng = np.random.default_rng(seed)
    day_profile = np.zeros(SAMPLES_PER_DAY)
    t = np.arange(SAMPLES_PER_DAY)
    # Morning and evening rush-hour peaks (Gaussian bumps).
    day_profile += 60.0 * np.exp(-((t - 96) ** 2) / 300.0)   # ~08:00
    day_profile += 75.0 * np.exp(-((t - 210) ** 2) / 400.0)  # ~17:30
    day_profile += 20.0  # base flow

    series = []
    for day in range(days):
        scale = rng.uniform(0.9, 1.1)
        shift = rng.integers(-6, 7)  # rush hour drifts up to 30 min
        profile = np.roll(day_profile, int(shift)) * scale
        noise = rng.normal(0.0, 2.0, size=SAMPLES_PER_DAY)
        if rng.random() < 0.15:  # incident day: afternoon collapse
            profile[170:230] *= rng.uniform(0.3, 0.6)
        series.append(profile + noise)
    return np.concatenate(series)


def main() -> None:
    series = synthetic_traffic()
    length = 96  # an 8-hour pattern
    query_day = 17
    query_start = query_day * SAMPLES_PER_DAY + 168  # afternoon window
    query = series[query_start : query_start + length]
    epsilon = 12.0  # vehicles: pointwise tolerance

    print(f"30 days of 5-minute readings ({series.size} samples)")
    print(f"query: day {query_day} afternoon pattern, eps={epsilon} vehicles\n")

    reference = None
    for name in ("sweepline", "kvindex", "isax", "tsindex"):
        method = create_method(name, series, length, normalization="none")
        with Timer() as timer:
            result = method.search(query, epsilon)
        days = sorted({int(p) // SAMPLES_PER_DAY for p in result.positions})
        if reference is None:
            reference = days
            print(f"days with an interchangeable pattern: {days}\n")
        assert days == reference, f"{name} disagrees with ground truth!"
        print(f"  {name:10s}  {timer.milliseconds:7.1f} ms   "
              f"{len(result):4d} matching windows, "
              f"{result.stats.candidates:6d} candidates verified")

    print("\nall four methods returned identical matches.")


if __name__ == "__main__":
    main()
