"""Observability: metrics, per-stage traces and both export formats.

`repro.obs` instruments the whole serving stack with zero external
dependencies. This example runs a mixed workload — twin queries, k-NN,
cache hits, live ingestion with sealing — against a `QueryEngine` and
a durable `LiveTwinIndex`, then:

* prints the engine's per-mode query counts and cache hit rate from
  `engine.stats()`;
* prints a per-stage trace of the last query (prepare → plan →
  execute per shard → merge);
* dumps the metrics registry in the Prometheus text exposition format
  (what a `/metrics` endpoint would serve) and as a JSON snapshot with
  derived p50/p90/p99 latencies.

Run:  python examples/observability.py
"""

import json
import tempfile

import numpy as np

from repro import LiveTwinIndex, QueryEngine, configure_logging
from repro.obs import to_json, to_prometheus

# The library is silent by default (NullHandler); one call turns on
# structured INFO logs — watch for the seal/compaction lines below.
configure_logging("INFO")


def main() -> None:
    rng = np.random.default_rng(11)
    series = np.cumsum(rng.normal(size=20_000))

    # One engine; its metrics land in the process-default registry so
    # library-level instrumentation (planner, WAL, live plane) shares
    # the same exported scrape.
    with QueryEngine() as engine:
        engine.build(
            "history", series, length=100, shards=4, normalization="none"
        )

        # --- mixed query workload ---------------------------------
        for start in range(200, 1200, 100):
            engine.query(
                "history", series[start : start + 100], epsilon=0.5
            )
        engine.query("history", series[200:300], epsilon=0.5)  # cache hit
        engine.knn("history", series[400:500], k=5)
        engine.exists("history", series[600:700], epsilon=0.5)

        # --- live ingestion (WAL + sealing, all instrumented) ------
        with tempfile.TemporaryDirectory() as tmp:
            with LiveTwinIndex.create(
                f"{tmp}/stream",
                series[:2_000],
                length=100,
                normalization="none",
                seal_threshold=512,
            ) as live:
                engine.add_live("stream", live)
                for start in range(2_000, 6_000, 400):
                    engine.append(
                        "stream", series[start : start + 400]
                    )
                engine.query(
                    "stream", series[500:600], epsilon=0.5
                )

                # --- engine-level snapshot -------------------------
                stats = engine.stats().as_dict()
                print("\nengine stats:")
                print(f"  queries by mode: {stats['queries_by_mode']}")
                print(
                    "  cache hit rate: "
                    f"{stats['cache']['hit_rate']:.0%}"
                )

                # --- the last query's per-stage trace --------------
                trace = engine.traces()[-1]
                print(f"\nlast trace ({trace.mode}):")
                for span in trace.spans:
                    meta = f" {span.meta}" if span.meta else ""
                    print(
                        f"  {span.name:<10s}"
                        f"{1e3 * span.duration:8.3f} ms{meta}"
                    )

                # --- both export formats ---------------------------
                registry = engine.metrics()
                exposition = to_prometheus(registry)
                print("\nPrometheus exposition (excerpt):")
                for line in exposition.splitlines():
                    if line.startswith(
                        ("repro_engine_qps", "repro_engine_cache_hit",
                         "repro_live_ingest_lag", "repro_live_seals")
                    ):
                        print(f"  {line}")

                snapshot = json.loads(to_json(registry))
                latency = next(
                    metric
                    for metric in snapshot["metrics"]
                    if metric["name"] == "repro_engine_query_seconds"
                )
                search = next(
                    sample
                    for sample in latency["samples"]
                    if sample["labels"] == {"mode": "search"}
                )
                print(
                    f"\nJSON snapshot: search latency over "
                    f"{search['count']} queries: "
                    f"p50={1e3 * search['p50']:.3f}ms "
                    f"p99={1e3 * search['p99']:.3f}ms"
                )


if __name__ == "__main__":
    main()
