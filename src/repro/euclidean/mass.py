"""FFT-based Euclidean distance profiles (MASS-style) and the
Chebyshev-vs-Euclidean comparison of the paper's introduction.

Section 1 reports that, on the EEG series, a Chebyshev threshold query
returns 1,034 twins while the *equivalent* Euclidean query — radius
``ε' = ε · sqrt(|Q|)``, the smallest radius guaranteeing no false
negatives (Section 3.1) — returns 127,887 subsequences, i.e. two orders
of magnitude of false positives. Figure 1 visualizes why: Euclidean
averages away localized spikes that Chebyshev must match point-wise.

The Euclidean profile is computed with the convolution identity
``d2²(p) = Σ Q² + Σ_p T² - 2 (Q ⋆ T)(p)`` (raw values) or the MASS
formula over rolling statistics (per-window z-normalization), both
O(n log n) via :func:`scipy.signal.fftconvolve`.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from scipy.signal import fftconvolve

from .._util import FLOAT_DTYPE, as_float_array, check_non_negative
from ..core.distance import euclidean_threshold_for
from ..core.normalization import (
    Normalization,
    rolling_mean,
    rolling_std,
)
from ..core.windows import WindowSource
from ..exceptions import InvalidParameterError
from ..query.spec import prepare_values


def _sliding_dot(values: np.ndarray, query: np.ndarray) -> np.ndarray:
    """``(Q ⋆ T)(p) = Σ_i Q_i · T_{p+i}`` for every start ``p``."""
    return fftconvolve(values, query[::-1], mode="valid")


def euclidean_distance_profile(source: WindowSource, query) -> np.ndarray:
    """Euclidean distance from ``query`` to every window of ``source``.

    Respects the source's normalization regime: raw/global profiles use
    the convolution identity on the (possibly globally normalized)
    buffer; ``PER_WINDOW`` uses the MASS formulation with rolling window
    statistics. Small negative squared distances from floating-point
    cancellation are clamped to zero.
    """
    query = prepare_values(source, query)
    values = source.values
    length = source.length

    if source.normalization is Normalization.PER_WINDOW:
        means = rolling_mean(values, length)
        stds = rolling_std(values, length)
        dot = _sliding_dot(values, query)
        # With ŵ = (w - μ)/σ and Σ ŵ² = l exactly (population std):
        # d² = Σ q² + l - 2 q·ŵ, and q·ŵ = (q·w - μ Σq) / σ.
        query_ssq = float(np.sum(query * query))
        normalized_dot = (dot - query.sum() * means) / stds
        squared = query_ssq + length - 2.0 * normalized_dot
        # Windows whose std was floored normalize to ~zero vectors, so
        # their distance is Σ q². Detect them from the actual variance,
        # not the floored std (a true std of exactly 1.0 is legitimate).
        mean_sq = rolling_mean(values * values, length)
        variance = np.maximum(mean_sq - means * means, 0.0)
        degenerate = np.sqrt(variance) < 1e-12
        if np.any(degenerate):
            squared = np.where(degenerate, query_ssq, squared)
    else:
        csum2 = np.concatenate(
            ([0.0], np.cumsum(values * values, dtype=FLOAT_DTYPE))
        )
        window_ssq = csum2[length:] - csum2[:-length]
        query_ssq = float(np.sum(query * query))
        squared = query_ssq + window_ssq - 2.0 * _sliding_dot(values, query)

    return np.sqrt(np.maximum(squared, 0.0))


def chebyshev_distance_profile(source: WindowSource, query) -> np.ndarray:
    """Exact Chebyshev distance to every window (O(n·l), vectorized in
    chunks). The ground-truth counterpart of the Euclidean profile —
    the same blockwise kernel the query planner's exact-scan synthesis
    uses (:func:`repro.query.planner.scan_distances`)."""
    from ..query.planner import scan_distances

    query = prepare_values(source, query)
    return scan_distances(source, query)


def euclidean_threshold_search(
    source: WindowSource, query, radius: float
) -> np.ndarray:
    """Positions whose Euclidean distance to ``query`` is ≤ ``radius``."""
    radius = check_non_negative(radius, name="radius")
    profile = euclidean_distance_profile(source, query)
    return np.flatnonzero(profile <= radius)


@dataclasses.dataclass(frozen=True)
class TwinVsEuclidean:
    """Result counts of the intro experiment for one query."""

    epsilon: float
    euclidean_radius: float
    twin_count: int
    euclidean_count: int
    missed_twins: int

    @property
    def excess_factor(self) -> float:
        """How many times more results Euclidean returns than there are
        actual twins (the paper's 127,887 / 1,034 ≈ 124×)."""
        if self.twin_count == 0:
            return float("inf") if self.euclidean_count else 1.0
        return self.euclidean_count / self.twin_count


def twin_vs_euclidean_comparison(
    source: WindowSource, query, epsilon: float
) -> TwinVsEuclidean:
    """Run the intro experiment for one query.

    Returns both counts plus ``missed_twins`` — the number of true twins
    the Euclidean query at radius ``ε·sqrt(l)`` fails to return, which
    Section 3.1 proves is always zero (asserted here as a property).
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    radius = euclidean_threshold_for(epsilon, source.length)
    query_prepared = prepare_values(source, query)

    chebyshev = chebyshev_distance_profile(source, query_prepared)
    euclidean = euclidean_distance_profile(source, query_prepared)
    twins = chebyshev <= epsilon
    # Guard the no-false-negative bound against FFT round-off with a
    # relative tolerance before counting misses.
    tolerance = radius * 1e-9 + 1e-9
    euclid_hits = euclidean <= radius + tolerance
    missed = int(np.count_nonzero(twins & ~euclid_hits))
    return TwinVsEuclidean(
        epsilon=float(epsilon),
        euclidean_radius=float(radius),
        twin_count=int(np.count_nonzero(twins)),
        euclidean_count=int(np.count_nonzero(euclid_hits)),
        missed_twins=missed,
    )


def spike_discrepancy(query, window, *, top: int = 3) -> dict:
    """Figure 1 diagnostic: where a Euclidean match deviates most from
    the query. Returns the ``top`` timestamps with the largest absolute
    difference plus the Chebyshev and Euclidean distances."""
    query = as_float_array(query, name="query")
    window = as_float_array(window, name="window")
    if query.size != window.size:
        raise InvalidParameterError(
            f"query and window lengths differ: {query.size} vs {window.size}"
        )
    differences = np.abs(query - window)
    worst = np.argsort(-differences)[:top]
    return {
        "chebyshev": float(differences.max()),
        "euclidean": float(np.sqrt(np.sum((query - window) ** 2))),
        "worst_timestamps": [int(i) for i in worst],
        "worst_differences": [float(differences[i]) for i in worst],
    }
