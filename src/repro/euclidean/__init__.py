"""Euclidean subsequence search, used to reproduce the paper's intro
experiment and Figure 1 (Chebyshev vs Euclidean result quality)."""

from .mass import (
    chebyshev_distance_profile,
    euclidean_distance_profile,
    euclidean_threshold_search,
    twin_vs_euclidean_comparison,
)

__all__ = [
    "chebyshev_distance_profile",
    "euclidean_distance_profile",
    "euclidean_threshold_search",
    "twin_vs_euclidean_comparison",
]
