"""Background compaction machinery for the live ingestion plane.

Sealing produces one segment per ``seal_threshold`` windows; left alone,
query fan-out cost would grow linearly with ingest time. Compaction
keeps the segment count bounded: whenever it exceeds ``max_segments``,
the adjacent pair with the smallest combined window count is merged
(:func:`repro.live.segments.merge_segments`) until the bound holds —
the classic size-tiered LSM policy, restricted to adjacent runs because
segments partition the position axis.

The merge itself reads only the two segments' immutable sources, so the
:class:`Compactor` runs it on a single background thread while appends
and queries proceed; only the final list splice takes the live plane's
lock.
"""

from __future__ import annotations

import concurrent.futures
import threading


def select_adjacent_pair(segments) -> int:
    """Index ``i`` such that merging ``segments[i]`` and
    ``segments[i + 1]`` costs least (smallest combined window count —
    ties resolve to the oldest pair, keeping the policy deterministic).
    """
    best, best_cost = 0, None
    for i in range(len(segments) - 1):
        cost = segments[i].size + segments[i + 1].size
        if best_cost is None or cost < best_cost:
            best, best_cost = i, cost
    return best


class Compactor:
    """A lazily started, single-threaded driver for one work function.

    ``work`` is expected to loop until the plane is quiescent (segment
    count within bounds) and return; :meth:`schedule` guarantees a run
    begins at or after the call, coalescing bursts into one run. The
    thread is only created on first use, so short-lived in-memory
    indexes never pay for it.
    """

    def __init__(self, work):
        self._work = work
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None
        self._future: concurrent.futures.Future | None = None
        self._lock = threading.Lock()
        self._shutdown = False

    def schedule(self) -> None:
        """Ensure a compaction run is in flight (no-op after close)."""
        with self._lock:
            if self._shutdown:
                return
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-live-compact"
                )
            if self._future is None or self._future.done():
                self._future = self._pool.submit(self._work)

    def wait(self, timeout: float | None = None) -> None:
        """Block until the in-flight run (if any) finishes; re-raises
        any error the background merge hit."""
        with self._lock:
            future = self._future
        if future is not None:
            future.result(timeout)

    def close(self) -> None:
        """Wait for in-flight work and shut the thread down
        (idempotent; background errors surface here)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            future, pool = self._future, self._pool
            self._future = None
            self._pool = None
        if future is not None:
            future.result()
        if pool is not None:
            pool.shutdown(wait=True)
