"""Background compaction machinery for the live ingestion plane.

Sealing produces one segment per ``seal_threshold`` windows; left alone,
query fan-out cost would grow linearly with ingest time. Compaction
keeps the segment count bounded: whenever it exceeds ``max_segments``,
the adjacent pair with the smallest combined window count is merged
(:func:`repro.live.segments.merge_segments`) until the bound holds —
the classic size-tiered LSM policy, restricted to adjacent runs because
segments partition the position axis.

The merge itself reads only the two segments' immutable sources, so the
:class:`Compactor` runs it on a single background thread while appends
and queries proceed; only the final list splice takes the live plane's
lock.

Failure handling: a failed merge is retried with bounded exponential
backoff (``repro_compaction_retries_total``). When the retry budget is
exhausted the run is abandoned — surfaced once through the log and
:meth:`Compactor.stats`, never latched into the next :meth:`wait` or
:meth:`close` — and the next :meth:`schedule` (every seal schedules)
starts a fresh run with a fresh budget, so one bad merge cannot poison
the plane.
"""

from __future__ import annotations

import concurrent.futures
import threading
from typing import Any

from ..exceptions import SimulatedCrashError
from ..faults.failpoints import failpoint
from ..obs.logsetup import get_logger
from ..obs.metrics import HandleCache

_log = get_logger("repro.live.compaction")

_metrics = HandleCache(
    lambda registry: (
        registry.counter(
            "repro_compaction_retries_total",
            "Background compaction merge retries after a failure.",
        ),
        registry.counter(
            "repro_compaction_failures_total",
            "Background compaction runs abandoned after the retry "
            "budget was exhausted.",
        ),
    )
)

#: Retries per scheduled run before the run is abandoned.
DEFAULT_MAX_RETRIES = 4

#: First backoff delay, seconds; doubles per retry up to the cap.
DEFAULT_BACKOFF = 0.05
DEFAULT_BACKOFF_CAP = 2.0


def select_adjacent_pair(segments: Any) -> int:
    """Index ``i`` such that merging ``segments[i]`` and
    ``segments[i + 1]`` costs least (smallest combined window count —
    ties resolve to the oldest pair, keeping the policy deterministic).
    """
    best, best_cost = 0, None
    for i in range(len(segments) - 1):
        cost = segments[i].size + segments[i + 1].size
        if best_cost is None or cost < best_cost:
            best, best_cost = i, cost
    return best


class Compactor:
    """A lazily started, single-threaded driver for one work function.

    ``work`` is expected to loop until the plane is quiescent (segment
    count within bounds) and return; :meth:`schedule` guarantees a run
    begins at or after the call, coalescing bursts into one run. The
    thread is only created on first use, so short-lived in-memory
    indexes never pay for it.

    ``work`` failures are retried up to ``max_retries`` times with
    exponential backoff (``backoff`` seconds doubling to
    ``backoff_cap``); an exhausted budget abandons the run without
    poisoning the compactor — the error is logged once and kept in
    :meth:`stats` / :attr:`last_error` until a later run succeeds.
    """

    def __init__(
        self,
        work: Any,
        *,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff: float = DEFAULT_BACKOFF,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
    ):
        self._work = work
        self._max_retries = int(max_retries)
        self._backoff = float(backoff)
        self._backoff_cap = float(backoff_cap)
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None  # lint: guarded-by(_lock)
        self._future: concurrent.futures.Future | None = None  # lint: guarded-by(_lock)
        self._lock = threading.Lock()
        self._shutdown = False  # lint: guarded-by(_lock)
        #: Interrupts a backoff sleep when close() is called.
        self._wake = threading.Event()
        self._retries = 0  # lint: guarded-by(_lock)
        self._failures = 0  # lint: guarded-by(_lock)
        self._last_error: BaseException | None = None  # lint: guarded-by(_lock)
        self._crashed = False  # lint: guarded-by(_lock)

    # ------------------------------------------------------------------
    @property
    def retry_count(self) -> int:
        """Lifetime merge retries across all runs."""
        with self._lock:
            return self._retries

    @property
    def failure_count(self) -> int:
        """Runs abandoned after the retry budget was exhausted."""
        with self._lock:
            return self._failures

    @property
    def last_error(self) -> BaseException | None:
        """The most recent merge error (cleared by the next clean run)."""
        with self._lock:
            return self._last_error

    @property
    def crashed(self) -> bool:
        """Whether a simulated crash killed the background thread."""
        with self._lock:
            return self._crashed

    def stats(self) -> dict:
        with self._lock:
            return {
                "retries": self._retries,
                "failures": self._failures,
                "crashed": self._crashed,
                "last_error": (
                    repr(self._last_error) if self._last_error else None
                ),
            }

    # ------------------------------------------------------------------
    def _run(self) -> None:
        """One scheduled run: the work function under a bounded
        retry/backoff loop. Never raises — errors are accounted, not
        latched (a :class:`SimulatedCrashError` stops the thread cold,
        like the process kill it stands in for)."""
        delay = self._backoff
        attempt = 0
        retries_total, failures_total = _metrics()
        while True:
            try:
                failpoint("compaction.merge", attempt=attempt)
                self._work()
            except SimulatedCrashError as exc:
                with self._lock:
                    self._crashed = True
                    self._last_error = exc
                return
            except Exception as exc:
                with self._lock:
                    self._last_error = exc
                    shutdown = self._shutdown
                if attempt >= self._max_retries or shutdown:
                    failures_total.inc()
                    with self._lock:
                        self._failures += 1
                    _log.error(
                        "background compaction abandoned after %d "
                        "retries (next schedule starts fresh): %r",
                        attempt, exc,
                    )
                    return
                attempt += 1
                retries_total.inc()
                with self._lock:
                    self._retries += 1
                _log.warning(
                    "background compaction failed (attempt %d/%d), "
                    "retrying in %.3fs: %r",
                    attempt, self._max_retries, delay, exc,
                )
                if self._wake.wait(delay):
                    return  # shutting down; don't burn the close() path
                delay = min(delay * 2.0, self._backoff_cap)
            else:
                with self._lock:
                    self._last_error = None
                return

    def schedule(self) -> None:
        """Ensure a compaction run is in flight (no-op after close)."""
        with self._lock:
            if self._shutdown or self._crashed:
                return
            if self._pool is None:
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-live-compact"
                )
            if self._future is None or self._future.done():
                self._future = self._pool.submit(self._run)

    def wait(self, timeout: float | None = None) -> None:
        """Block until the in-flight run (if any) finishes. Merge errors
        do not re-raise here — they surface through :meth:`stats` and
        the log, and the plane stays serviceable."""
        with self._lock:
            future = self._future
        if future is not None:
            future.result(timeout)

    def close(self) -> None:
        """Wait for in-flight work and shut the thread down (idempotent;
        pending backoff sleeps are interrupted, not served)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            future, pool = self._future, self._pool
            self._future = None
            self._pool = None
        self._wake.set()
        if future is not None:
            concurrent.futures.wait([future])
        if pool is not None:
            pool.shutdown(wait=True)
