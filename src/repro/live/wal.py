"""Write-ahead log and segment manifest for the live ingestion plane.

Durability model (classic LSM):

* every appended reading is written to ``wal.log`` **before** it is
  indexed — a crash loses at most the bytes of one in-flight record;
* sealing a delta writes the frozen segment to its own ``.npz`` archive
  (through :mod:`repro.persistence`), commits it to ``MANIFEST.json``
  (atomic tmp + rename), then rewrites the WAL to hold only the
  readings past the sealed frontier;
* :meth:`recovery <repro.live.index.LiveTwinIndex.recover>` loads the
  manifest's segments, replays the WAL tail, and re-inserts only the
  un-sealed windows.

WAL format: a fixed header (magic + the global value offset of the
first reading in the file) followed by length-prefixed, CRC-guarded
records::

    b"RLWAL1" | <Q start_offset>
    record := <I count> <I crc32(payload)> | payload (count float64 LE)

Replay stops at the first incomplete or CRC-mismatched record (a torn
tail write) and reports whether the file ended cleanly; a corrupted
*header* fails loudly instead — a WAL whose provenance cannot be
established must never be silently treated as empty.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any

import numpy as np

from .._util import FLOAT_DTYPE
from ..exceptions import (
    SerializationError,
    SimulatedCrashError,
    StorageError,
    wrap_os_errors,
)
from ..faults.failpoints import failpoint, make_error
from ..obs.logsetup import get_logger
from ..obs.metrics import HandleCache

_log = get_logger("repro.live.wal")

#: Journal latency instrumentation (process default registry): the
#: full record append (serialize + write + flush [+ fsync]) and the
#: fsync syscall alone, which dominates in power-loss mode.
_metrics = HandleCache(
    lambda registry: (
        registry.histogram(
            "repro_live_wal_append_seconds",
            "WAL record append latency (write + flush + optional "
            "fsync), in seconds.",
        ),
        registry.histogram(
            "repro_live_wal_fsync_seconds",
            "WAL fsync latency, in seconds (power-loss durability "
            "mode only).",
        ),
    )
)

#: WAL file magic (6 bytes; the trailing digit is the format version).
WAL_MAGIC = b"RLWAL1"

#: Header layout after the magic: the global value index of the first
#: reading stored in this file.
_HEADER = struct.Struct("<Q")

#: Record layout: reading count, CRC32 of the payload bytes.
_RECORD = struct.Struct("<II")

#: Manifest file name inside a live directory.
MANIFEST_NAME = "MANIFEST.json"

#: Manifest format marker.
MANIFEST_FORMAT = 1


class WriteAheadLog:
    """An append-only journal of readings with crash-tolerant replay.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "wal.log")
    >>> wal = WriteAheadLog.create(path, start=0)
    >>> wal.append([1.0, 2.0, 3.0])
    >>> wal.close()
    >>> start, values, clean = WriteAheadLog.replay(path)
    >>> (start, values.tolist(), clean)
    (0, [1.0, 2.0, 3.0], True)
    """

    def __init__(self, path: Any, *, fsync: bool = False):
        self._path = os.fspath(path)
        self._fsync = bool(fsync)
        self._file = None

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        """The journal file path."""
        return self._path

    @property
    def fsync(self) -> bool:
        """Whether every journal write is fsynced (power-loss mode)."""
        return self._fsync

    @classmethod
    def create(cls, path: Any, *, start: int = 0, fsync: bool = False) -> "WriteAheadLog":
        """Create a fresh journal whose first reading will be the global
        value index ``start``; truncates any existing file."""
        wal = cls(path, fsync=fsync)
        with wrap_os_errors("WAL create", path):
            wal._file = open(wal._path, "wb")
            wal._file.write(WAL_MAGIC + _HEADER.pack(int(start)))
            wal._flush()
        return wal

    @classmethod
    def open(cls, path: Any, *, fsync: bool = False) -> "WriteAheadLog":
        """Open an existing journal for appending (no replay; callers
        replay first, then open)."""
        wal = cls(path, fsync=fsync)
        with wrap_os_errors("WAL open", path):
            wal._file = open(wal._path, "ab")
        return wal

    # ------------------------------------------------------------------
    def append(self, values: Any) -> None:
        """Durably journal one batch of readings (before indexing).

        A failed write (disk full, I/O error) is rolled back by
        truncating the journal to its pre-append size, so a *survivable*
        mid-record failure never leaves a torn record in the middle of
        the log — the typed :class:`~repro.exceptions.StorageError`
        propagates and the journal stays appendable.
        """
        if self._file is None:
            raise SerializationError(f"WAL {self._path!r} is closed")
        append_seconds, _ = _metrics()
        with append_seconds.time():
            payload = np.ascontiguousarray(
                values, dtype=FLOAT_DTYPE
            ).tobytes()
            record = _RECORD.pack(len(payload) // 8, zlib.crc32(payload))
            data = record + payload
            durable = self._durable_size()
            try:
                torn = failpoint("wal.append", path=self._path, size=len(data))
                if torn is not None:
                    self._torn_write(torn, data)
                self._file.write(data)
                self._flush()
            except SimulatedCrashError:
                raise
            except OSError as exc:
                self._rollback(durable)
                raise StorageError(
                    f"WAL append to {self._path!r} failed: {exc}"
                ) from exc

    def _durable_size(self) -> int | None:
        """Current on-disk journal size (the append rollback point).
        The write buffer is empty between appends — every append ends
        in a flush — so ``fstat`` is exact here."""
        try:
            return os.fstat(self._file.fileno()).st_size
        except OSError:
            return None

    def _torn_write(self, spec, data: bytes) -> None:
        """Armed ``wal.append`` torn-write protocol: write the first
        ``torn_after_bytes`` of the record, then fail — with the payload's
        ``error`` class when given (a survivable partial write the
        rollback must clean up), else a simulated crash that leaves the
        torn tail on disk for replay to drop."""
        keep = int(spec.get("torn_after_bytes", 0)) if isinstance(spec, dict) else 0
        self._file.write(data[:keep])
        self._file.flush()
        if isinstance(spec, dict) and spec.get("error"):
            raise make_error(spec["error"])
        raise SimulatedCrashError(
            f"injected crash: torn WAL append at {self._path!r} "
            f"({keep}/{len(data)} bytes written)"
        )

    def _rollback(self, durable: int | None) -> None:
        """Best-effort truncation back to the last durable record
        boundary after a failed append."""
        if durable is None:
            return
        try:
            self._file.flush()
        except OSError:  # lint: disable=crash-safety flush is advisory before the rollback truncate
            pass
        try:
            self._file.truncate(durable)
            self._file.seek(durable)
        except OSError as exc:
            _log.warning(
                "could not roll back failed WAL append on %r: %s",
                self._path, exc,
            )

    def rewrite(self, *, start: int, values: Any) -> None:
        """Atomically replace the journal with one holding ``values``
        from global offset ``start`` (the post-seal truncation)."""
        failpoint("wal.rewrite", path=self._path, start=int(start))
        was_open = self._file is not None
        if was_open:
            self._file.close()
            self._file = None
        tmp = self._path + ".tmp"
        payload = np.ascontiguousarray(values, dtype=FLOAT_DTYPE).tobytes()
        with wrap_os_errors("WAL rewrite", self._path):
            with open(tmp, "wb") as handle:
                handle.write(WAL_MAGIC + _HEADER.pack(int(start)))
                if payload:
                    handle.write(
                        _RECORD.pack(len(payload) // 8, zlib.crc32(payload))
                    )
                    handle.write(payload)
                handle.flush()
                if self._fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, self._path)
            if self._fsync:
                fsync_directory(os.path.dirname(self._path) or ".")
            if was_open:
                self._file = open(self._path, "ab")

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    def _flush(self) -> None:
        self._file.flush()
        failpoint("wal.fsync", path=self._path, fsync=self._fsync)
        if self._fsync:
            _, fsync_seconds = _metrics()
            with fsync_seconds.time():
                os.fsync(self._file.fileno())

    def __repr__(self) -> str:
        state = "closed" if self._file is None else "open"
        return f"WriteAheadLog(path={self._path!r}, {state})"

    # ------------------------------------------------------------------
    @staticmethod
    def replay(path: Any) -> tuple[int, np.ndarray, bool]:
        """Read ``(start_offset, readings, clean)`` from a journal.

        ``readings`` holds every fully durable reading in order;
        ``clean`` is False when the file ended mid-record (a torn tail
        write — the truncated record's readings are dropped, which is
        exactly the durability contract: a reading is durable once its
        record is fully on disk). A missing or corrupted *header* raises
        :class:`~repro.exceptions.SerializationError` loudly.
        """
        path = os.fspath(path)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise SerializationError(
                f"cannot read WAL {path!r}: {exc}"
            ) from exc
        head = len(WAL_MAGIC) + _HEADER.size
        if len(blob) < head or blob[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise SerializationError(
                f"WAL {path!r} has a missing or corrupted header"
            )
        (start,) = _HEADER.unpack_from(blob, len(WAL_MAGIC))
        chunks: list[np.ndarray] = []
        offset = head
        clean = True
        while offset < len(blob):
            if offset + _RECORD.size > len(blob):
                clean = False  # torn header
                break
            count, crc = _RECORD.unpack_from(blob, offset)
            offset += _RECORD.size
            payload = blob[offset : offset + count * 8]
            if len(payload) < count * 8 or zlib.crc32(payload) != crc:
                clean = False  # torn or corrupted payload
                break
            chunks.append(np.frombuffer(payload, dtype=FLOAT_DTYPE))
            offset += count * 8
        values = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=FLOAT_DTYPE)
        )
        if not clean:
            _log.warning(
                "WAL %r ended in a torn or corrupted record; dropping "
                "the tail (replayed %d durable readings from offset %d)",
                path, values.size, int(start),
            )
        return int(start), values, clean


# ----------------------------------------------------------------------
# Segment manifest
# ----------------------------------------------------------------------
def fsync_directory(directory: Any) -> None:
    """fsync a directory so renames/creations inside it are durable
    (best-effort: some filesystems refuse directory fds)."""
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # lint: disable=crash-safety some filesystems refuse fsync on a directory fd
        pass
    finally:
        os.close(fd)


def fsync_file(path: Any) -> None:
    """fsync an already-written file's contents to disk."""
    with wrap_os_errors("fsync", path):
        fd = os.open(os.fspath(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)


def manifest_path(directory: Any) -> str:
    """The manifest file path inside a live directory."""
    return os.path.join(os.fspath(directory), MANIFEST_NAME)


def save_manifest(directory: Any, manifest: dict) -> None:
    """Atomically write ``manifest`` (tmp file + fsync + rename + dir
    fsync, so a crash leaves either the old or the new manifest, never
    a torn one — and the rename itself is durable). Manifest writes
    happen only at init/seal/compaction, so the extra fsyncs are off
    the append hot path."""
    path = manifest_path(directory)
    tmp = path + ".tmp"
    with wrap_os_errors("manifest commit", path):
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
            handle.flush()
            os.fsync(handle.fileno())
        spec = failpoint("manifest.commit", path=path)
        if spec is not None:
            if isinstance(spec, dict) and "truncate_tmp_to" in spec:
                # Leave a *partially written* tmp file behind, as a
                # crash mid-write would.
                with open(tmp, "r+b") as handle:
                    handle.truncate(int(spec["truncate_tmp_to"]))
            raise SimulatedCrashError(
                f"injected crash before manifest commit at {path!r}"
            )
        os.replace(tmp, path)
        fsync_directory(directory)


def load_manifest(directory: Any) -> dict:
    """Read and validate a live directory's manifest.

    Every failure mode — missing file, invalid JSON, wrong format
    marker, missing keys, malformed segment entries — raises
    :class:`~repro.exceptions.SerializationError`: recovery must fail
    loudly rather than serve from a half-understood directory.
    """
    path = manifest_path(directory)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise SerializationError(
            f"cannot read live manifest {path!r}: {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise SerializationError(
            f"live manifest {path!r} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(manifest, dict):
        raise SerializationError(f"live manifest {path!r} must be an object")
    if manifest.get("format") != MANIFEST_FORMAT:
        raise SerializationError(
            f"unsupported live manifest format {manifest.get('format')!r} "
            f"in {path!r}"
        )
    for key in ("length", "normalization", "params", "segments"):
        if key not in manifest:
            raise SerializationError(
                f"live manifest {path!r} is missing {key!r}"
            )
    segments = manifest["segments"]
    if not isinstance(segments, list):
        raise SerializationError(
            f"live manifest {path!r}: segments must be a list"
        )
    for entry in segments:
        if not isinstance(entry, dict) or not {
            "start",
            "stop",
            "file",
        } <= set(entry):
            raise SerializationError(
                f"live manifest {path!r}: malformed segment entry {entry!r}"
            )
    return manifest
