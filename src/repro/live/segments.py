"""Sealed segments of the live ingestion plane.

A :class:`Segment` is an immutable, self-contained slice of the live
series: a :class:`~repro.core.frozen.FrozenTSIndex` over the global
window span ``[start, stop)`` whose window source owns a copy of the
value chunk ``[start, stop + l - 1)`` (consecutive segments therefore
overlap by ``l - 1`` values, so no window is lost at a boundary — the
same invariant :class:`repro.engine.ShardedTSIndex` maintains). Under
the per-window regime the source also carries copies of the *monolithic*
rolling statistics for its span; because those statistics are
prefix-stable under appends (see
:func:`~repro.core.normalization.rolling_std`), segment windows stay
bitwise identical to the corresponding windows of a from-scratch index
over the whole grown series.

:func:`merge_segments` is the compaction primitive: two adjacent
segments become one, rebuilt with the bulk loader over the concatenated
chunk (dropping the duplicated ``l - 1`` overlap values) — results are
unchanged because twin answers are exact post-verification and window
values carry over bitwise.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..core.bulkload import bulk_load_source
from ..core.frozen import FrozenTSIndex
from ..core.normalization import Normalization
from ..core.tsindex import TSIndexParams
from ..core.windows import WindowSource, assemble_source
from ..exceptions import InvalidParameterError


@dataclasses.dataclass
class Segment:
    """One sealed, immutable span of the live index.

    ``index`` answers queries in segment-local positions (0-based within
    the span); callers re-offset by ``start``. ``file`` is the archive
    name under the live directory for durable planes, ``None`` for
    in-memory ones.
    """

    start: int
    index: FrozenTSIndex
    file: str | None = None

    @property
    def stop(self) -> int:
        """Global position one past the last window of this segment."""
        return self.start + self.index.size

    @property
    def size(self) -> int:
        """Number of windows in this segment."""
        return self.index.size

    def stats_row(self) -> dict:
        """One diagnostics row (for ``live stats`` and the registry)."""
        build = self.index.build_stats
        return {
            "span": f"[{self.start}, {self.stop})",
            "windows": self.size,
            "height": self.index.height,
            "nodes": self.index.node_count,
            "file": self.file or "<memory>",
            "build_seconds": round(build.seconds, 4),
        }

    def __repr__(self) -> str:
        return f"Segment(span=[{self.start}, {self.stop}), file={self.file!r})"


def merge_segments(
    first: Segment, second: Segment, params: TSIndexParams
) -> Segment:
    """Compact two *adjacent* segments into one.

    Self-contained: reads only the two segments' own sources (never the
    live plane's mutable state), so it is safe to run on a background
    thread while appends proceed. The merged tree is bulk loaded — tree
    shape differs from sequential insertion, but twin answers are exact
    post-verification, so results are unchanged.
    """
    if first.stop != second.start:
        raise InvalidParameterError(
            f"can only merge adjacent segments, got [{first.start}, "
            f"{first.stop}) and [{second.start}, {second.stop})"
        )
    src_a: WindowSource = first.index.source
    src_b: WindowSource = second.index.source
    length = src_a.length
    # src_a covers values [start_a, stop_a + l - 1); src_b covers
    # [stop_a, stop_b + l - 1). Dropping src_b's first l - 1 values
    # (the shared overlap) yields the contiguous chunk.
    values = np.concatenate([src_a.values, src_b.values[length - 1:]])
    if src_a.normalization is Normalization.PER_WINDOW:
        means = np.concatenate([src_a._means, src_b._means])
        stds = np.concatenate([src_a._stds, src_b._stds])
    else:
        means = stds = None
    merged_source = assemble_source(
        values,
        length,
        src_a.normalization,
        means=means,
        stds=stds,
        name=f"live[{first.start}:{second.stop + length - 1}]",
    )
    tree = bulk_load_source(merged_source, params=params)
    return Segment(start=first.start, index=tree.freeze())
