"""repro.live — LSM-style live ingestion plane for twin search.

The paper's indexes (and :mod:`repro.engine`'s serving plane) are built
over a *static* series; monitoring workloads — the intro's traffic /
EEG / seismic scenarios — need the series to grow while staying
queryable. This subsystem provides the missing write path:

* :class:`LiveTwinIndex` — appends readings into a growable buffer,
  indexes each newly completed window in a small mutable **delta**
  TS-Index, seals the delta into immutable
  :class:`~repro.core.frozen.FrozenTSIndex` **segments** (value chunks
  overlapping by ``l - 1``, so no window is lost), and compacts
  adjacent segments on a background thread. Queries fan out over
  delta + segments and merge exactly — results are byte-identical to a
  from-scratch TS-Index over the full series, in both the raw and the
  per-window normalization regimes.
* :class:`WriteAheadLog` — a CRC-guarded append journal plus an atomic
  segment manifest; :meth:`LiveTwinIndex.create` makes a plane durable
  and :meth:`LiveTwinIndex.recover` replays un-sealed readings after a
  crash.
* :class:`Segment` / :func:`merge_segments` / :class:`Compactor` — the
  sealed-run representation and the size-tiered merge policy.

Serve a live plane through :class:`repro.engine.QueryEngine` via
:meth:`IndexRegistry.add_live <repro.engine.IndexRegistry.add_live>`
and :meth:`QueryEngine.append <repro.engine.QueryEngine.append>`
(cached results are keyed on the plane's mutation generation, so an
append can never serve a stale result), or from the command line with
``repro-twin live init|append|query|stats``.
"""

from .compaction import Compactor, select_adjacent_pair
from .index import (
    DEFAULT_MAX_SEGMENTS,
    DEFAULT_SEAL_THRESHOLD,
    LiveTwinIndex,
)
from .segments import Segment, merge_segments
from .wal import WriteAheadLog, load_manifest, save_manifest

__all__ = [
    "Compactor",
    "DEFAULT_MAX_SEGMENTS",
    "DEFAULT_SEAL_THRESHOLD",
    "LiveTwinIndex",
    "Segment",
    "WriteAheadLog",
    "load_manifest",
    "merge_segments",
    "save_manifest",
    "select_adjacent_pair",
]
