"""LiveTwinIndex — the LSM-style live ingestion plane.

The paper motivates twin search with monitoring workloads (traffic,
EEG, seismic) where readings arrive continuously; this module serves
them with a log-structured lifecycle:

* **append** — readings land in a growable buffer (journaled to a
  :class:`~repro.live.wal.WriteAheadLog` first when the plane is
  durable); each newly completed window is inserted into a small
  mutable **delta** :class:`~repro.core.tsindex.TSIndex` (the
  memtable);
* **seal** — once the delta holds ``seal_threshold`` windows it is
  flattened into an immutable
  :class:`~repro.core.frozen.FrozenTSIndex` **segment**
  (:class:`~repro.live.segments.Segment`) whose value chunk overlaps
  its neighbour by ``l - 1`` readings, so no window is lost at a
  boundary;
* **compact** — a background thread merges adjacent segments whenever
  more than ``max_segments`` accumulate, keeping query fan-out bounded
  (:mod:`repro.live.compaction`);
* **recover** — :meth:`LiveTwinIndex.recover` reloads sealed segments
  from their archives and replays the journal's un-sealed readings
  after a crash.

``search`` / ``knn`` / ``exists`` / ``search_batch`` fan out across
delta + segments and merge with the library's ``(distance, position)``
tie-breaks, so results are **byte-identical to a from-scratch TSIndex
over the full series** — enforced by the randomized interleaving suite
in ``tests/test_live_index.py``. Both the raw and the per-window
normalization regimes are supported (per-window scaling depends only on
each window's own values, and the library's rolling statistics are
prefix-stable under appends — see
:func:`~repro.core.normalization.rolling_std`); only global
z-normalization stays rejected, because appends shift the series
moments under every already-indexed window.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from typing import Any

import numpy as np

from .._util import (
    FLOAT_DTYPE,
    POSITION_DTYPE,
    call_task,
    check_non_negative,
    check_positive_int,
    fan_out,
    is_process_executor,
    map_with_executor,
)
from ..core.batch import BatchResult
from ..core.frozen import FrozenTSIndex
from ..core.normalization import Normalization, rolling_std, std_block_size
from ..core.series import TimeSeries
from ..core.stats import BuildStats, SearchResult
from ..core.tsindex import TSIndex, TSIndexParams
from ..core.verification import verify
from ..core.windows import WindowSource, assemble_source
from ..exceptions import (
    IndexNotBuiltError,
    InvalidParameterError,
    SerializationError,
    StorageError,
    UnsupportedNormalizationError,
    wrap_os_errors,
)
from ..faults.failpoints import failpoint
from ..indices.base import SubsequenceIndex
from ..obs.logsetup import get_logger
from ..obs.metrics import HandleCache
from ..obs.trace import current_trace
from ..query.capabilities import (
    CAP_COUNT,
    CAP_EXECUTOR,
    CAP_EXISTS,
    CAP_FANOUT_TIMEOUT,
    CAP_KNN,
    CAP_SEARCH,
    CAP_SEARCH_BATCH,
    CAP_VARLENGTH,
    CAP_VERIFICATION,
)
from ..query.merge import batch_result, merge_knn, merge_offset_search
from ..query.registration import register_plane
from ..query.spec import (
    check_varlength_query,
    normalize_exclude,
    prepare_values,
)
from ..query.varlength import (
    is_prefix_query,
    prefix_search_part,
    scan_prefix_knn,
)
from .compaction import Compactor, select_adjacent_pair
from .segments import Segment, merge_segments
from .wal import MANIFEST_FORMAT, WriteAheadLog, load_manifest, manifest_path, save_manifest

#: Delta windows accumulated before the memtable is sealed into a
#: frozen segment. Large enough that segment trees amortize their
#: freeze cost, small enough that the insert-heavy delta stays shallow.
DEFAULT_SEAL_THRESHOLD = 4096

#: Segment count above which background compaction kicks in.
DEFAULT_MAX_SEGMENTS = 8

#: Journal file name inside a live directory.
WAL_NAME = "wal.log"

#: Segment archive name suffix per on-disk container format:
#: ``npz`` writes one compressed file, ``raw`` an uncompressed
#: mmap-able directory (see :mod:`repro.persistence.serializer`).
SEGMENT_SUFFIXES = {"npz": ".npz", "raw": ".rts"}

_log = get_logger("repro.live")

#: Lifecycle instrumentation (process default registry). The ingest-lag
#: gauge and the lifecycle counters are process-wide: a process serving
#: several live planes should give each its own registry via
#: :func:`repro.obs.set_default_registry`, or read per-plane numbers
#: from :meth:`LiveTwinIndex.stats`.
_metrics = HandleCache(
    lambda registry: {
        "readings": registry.counter(
            "repro_live_readings_total",
            "Readings accepted by live-plane appends.",
        ),
        "lag": registry.gauge(
            "repro_live_ingest_lag_readings",
            "Ingest lag: readings buffered past the sealed frontier "
            "(indexed in the delta or still completing windows, not "
            "yet sealed into a segment).",
        ),
        "seal_seconds": registry.histogram(
            "repro_live_seal_seconds",
            "Delta seal duration (freeze + archive + manifest commit "
            "+ WAL truncation), in seconds.",
        ),
        "seals": registry.counter(
            "repro_live_seals_total", "Delta seals performed."
        ),
        "compaction_seconds": registry.histogram(
            "repro_live_compaction_seconds",
            "Adjacent-segment merge duration, in seconds.",
        ),
        "compactions": registry.counter(
            "repro_live_compactions_total",
            "Segment compactions committed.",
        ),
        "recoveries": registry.counter(
            "repro_live_recoveries_total",
            "Live-plane recoveries completed.",
        ),
        "quarantined": registry.counter(
            "repro_segments_quarantined_total",
            "Segment archives moved aside by non-strict recovery "
            "(corrupt archive plus the non-contiguous suffix behind it).",
        ),
    }
)


@register_plane(
    "live",
    aliases=("livetwinindex",),
    summary="LSM-style durable ingestion plane (repro.live)",
)
class LiveTwinIndex(SubsequenceIndex):
    """An appendable twin-search index with an LSM segment lifecycle.

    Build an in-memory plane with the constructor (or
    :meth:`from_source`), a durable one with :meth:`create`, and reopen
    a durable one with :meth:`recover`. All public methods are safe to
    call from multiple threads; queries snapshot the segment list and
    never block on background compaction.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.live import LiveTwinIndex
    >>> live = LiveTwinIndex(np.zeros(32), length=16, seal_threshold=8)
    >>> live.append(np.ones(24))
    24
    >>> live.window_count
    41
    >>> bool(live.exists(np.zeros(16), epsilon=0.0))
    True
    >>> live.segment_count >= 1  # the delta sealed at least once
    True
    """

    method_name = "live"

    #: Native kernels the query planner may call directly.
    capabilities = frozenset(
        {
            CAP_SEARCH,
            CAP_KNN,
            CAP_EXISTS,
            CAP_COUNT,
            CAP_SEARCH_BATCH,
            CAP_EXECUTOR,
            CAP_FANOUT_TIMEOUT,
            CAP_VARLENGTH,
            CAP_VERIFICATION,
        }
    )

    def __init__(
        self,
        initial_values: Any = None,
        length: int | None = None,
        *,
        normalization: Any = Normalization.NONE,
        params: TSIndexParams | None = None,
        seal_threshold: int | None = DEFAULT_SEAL_THRESHOLD,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        background_compaction: bool = True,
        _directory: Any = None,
        _wal: WriteAheadLog | None = None,
        _archive_format: str = "npz",
    ):
        self._init_config(
            length,
            normalization,
            params,
            seal_threshold,
            max_segments,
            background_compaction,
            directory=_directory,
            wal=_wal,
            fsync=_wal.fsync if _wal is not None else False,
            archive_format=_archive_format,
        )
        values = _coerce_readings(initial_values, allow_empty=True)
        self._init_buffer(values)
        with self._lock:
            self._absorb(0)

    def _init_config(  # lint: holds(_lock) constructor helper, object not yet shared
        self,
        length,
        normalization,
        params,
        seal_threshold,
        max_segments,
        background_compaction,
        *,
        directory,
        wal,
        fsync,
        archive_format: str = "npz",
    ) -> None:
        if archive_format not in SEGMENT_SUFFIXES:
            raise InvalidParameterError(
                f"unknown archive format {archive_format!r}; expected one "
                f"of {tuple(SEGMENT_SUFFIXES)}"
            )
        self._archive_format = archive_format
        self._length = check_positive_int(length, name="length")
        self._normalization = Normalization.coerce(normalization)
        if self._normalization is Normalization.GLOBAL:
            raise UnsupportedNormalizationError(
                "global z-normalization is undefined for a growing series "
                "(appends shift the series moments under every "
                "already-indexed window); use 'none' or 'per_window'"
            )
        self._params = params or TSIndexParams()
        self._seal_threshold = (
            None
            if seal_threshold is None
            else check_positive_int(seal_threshold, name="seal_threshold")
        )
        self._max_segments = check_positive_int(
            max_segments, name="max_segments"
        )
        self._background = bool(background_compaction)
        self._directory = None if directory is None else os.fspath(directory)
        self._wal = wal
        #: fsync segment archives (and, inside the WAL, every journal
        #: write) — the power-loss durability mode.
        self._fsync = bool(fsync)
        self._lock = threading.RLock()
        # Per-window rolling statistics, maintained incrementally (see
        # _extend_window_stats): prefix-stability makes extending the
        # cached arrays bitwise identical to recomputing from scratch,
        # turning the per-append source refresh O(batch), not O(series).
        self._csum: np.ndarray | None = None  # lint: guarded-by(_lock)
        self._csum_count = 0  # lint: guarded-by(_lock)
        self._win_means: np.ndarray | None = None  # lint: guarded-by(_lock)
        self._win_stds: np.ndarray | None = None  # lint: guarded-by(_lock)
        self._stats_count = 0  # lint: guarded-by(_lock)
        self._segments: list[Segment] = []  # lint: guarded-by(_lock)
        self._delta: TSIndex | None = None  # lint: guarded-by(_lock)
        self._delta_start = 0  # lint: guarded-by(_lock)
        self._delta_count = 0  # lint: guarded-by(_lock)
        self._source: WindowSource | None = None  # lint: guarded-by(_lock)
        self._mutations = 0  # lint: guarded-by(_lock)
        self._seals = 0  # lint: guarded-by(_lock)
        self._compactions = 0  # lint: guarded-by(_lock)
        self._closed = False  # lint: guarded-by(_lock)
        self._quarantined: tuple[str, ...] = ()  # lint: guarded-by(_lock)
        self._compactor = Compactor(self._compact_loop)

    def _init_buffer(self, values: np.ndarray) -> None:  # lint: holds(_lock) constructor helper, object not yet shared
        self._capacity = max(1024, int(values.size) * 2, self._length * 2)
        self._buffer = np.empty(self._capacity, dtype=FLOAT_DTYPE)  # lint: guarded-by(_lock)
        self._buffer[: values.size] = values
        self._size = int(values.size)  # lint: guarded-by(_lock)

    # ------------------------------------------------------------------
    # Alternate constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_source(
        cls,
        source: WindowSource,
        *,
        params: TSIndexParams | None = None,
        seal_threshold: int | None = DEFAULT_SEAL_THRESHOLD,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        background_compaction: bool = True,
    ) -> "LiveTwinIndex":
        """Build a live plane preloaded with a prepared source's series
        (the :func:`~repro.indices.base.create_method` entry point)."""
        if source.normalization is Normalization.GLOBAL:
            raise UnsupportedNormalizationError(
                "live indexes cannot serve globally z-normalized windows; "
                "use 'none' or 'per_window'"
            )
        return cls(
            source.series.values,
            source.length,
            normalization=source.normalization,
            params=params,
            seal_threshold=seal_threshold,
            max_segments=max_segments,
            background_compaction=background_compaction,
        )

    @classmethod
    def create(
        cls,
        path: Any,
        initial_values: Any = None,
        *,
        length: int,
        normalization: Any = Normalization.NONE,
        params: TSIndexParams | None = None,
        seal_threshold: int | None = DEFAULT_SEAL_THRESHOLD,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        background_compaction: bool = True,
        fsync: bool = False,
        archive_format: str = "npz",
    ) -> "LiveTwinIndex":
        """Initialize a **durable** live plane under directory ``path``.

        Every subsequent :meth:`append` is journaled to the write-ahead
        log before it is indexed; sealed segments are archived
        (``archive_format="npz"`` — compressed single files, the
        default — or ``"raw"`` — uncompressed mmap-able directories
        that recover in O(metadata) and support process fan-out with a
        single page-cache copy) and committed to the manifest.
        ``fsync=True`` additionally fsyncs each journal write
        (crash-safe against power loss, at a heavy per-append cost;
        the default survives process crashes).
        """
        path = os.fspath(path)
        os.makedirs(path, exist_ok=True)
        if os.path.exists(manifest_path(path)):
            raise InvalidParameterError(
                f"{path!r} already holds a live index; open it with "
                "LiveTwinIndex.recover()"
            )
        values = _coerce_readings(initial_values, allow_empty=True)
        wal = WriteAheadLog.create(
            os.path.join(path, WAL_NAME), start=0, fsync=fsync
        )
        if values.size:
            wal.append(values)
        index = cls(
            values,
            length,
            normalization=normalization,
            params=params,
            seal_threshold=seal_threshold,
            max_segments=max_segments,
            background_compaction=background_compaction,
            _directory=path,
            _wal=wal,
            _archive_format=archive_format,
        )
        with index._lock:
            index._write_manifest_locked()
        return index

    @classmethod
    def recover(
        cls,
        path: Any,
        *,
        fsync: bool | None = None,
        background_compaction: bool = True,
        strict: bool = True,
    ) -> "LiveTwinIndex":
        """Reopen a durable live plane after a shutdown or crash.

        ``fsync`` defaults to the mode the plane was created with (it is
        recorded in the manifest), so a durability choice made at
        :meth:`create` time survives every reopen; pass an explicit
        value to override.

        Sealed segments are restored from their archives (pure array
        reads — no re-insertion); the journal is replayed up to its
        last fully durable record, and only the un-sealed windows are
        re-inserted into a fresh delta. A torn tail record (the
        in-flight append a crash interrupted) is dropped, which is the
        durability contract; a corrupted manifest, a broken segment
        chain, or a segment archive that fails its structural
        validation raises
        :class:`~repro.exceptions.SerializationError` /
        :class:`~repro.exceptions.InvalidParameterError` loudly.

        ``strict=False`` switches corrupt-**archive** handling from
        fail-loud to quarantine-and-continue: the first unreadable
        archive *and every archive behind it* (segments partition the
        position axis, so nothing past a hole is position-addressable)
        are moved into a ``quarantine/`` subdirectory — never deleted —
        a WARNING is logged, and the plane recovers the longest intact
        prefix, byte-identical to a from-scratch index over those
        readings. A journal that no longer abuts the truncated frontier
        is quarantined with them. Manifest damage stays loud in both
        modes: quarantine is for losing *data files*, not for trusting
        a directory whose catalog cannot be parsed.
        """
        from ..persistence import load_index  # lazy: avoids import cost

        path = os.fspath(path)
        manifest = load_manifest(path)
        try:
            length = int(manifest["length"])
            normalization = Normalization.coerce(manifest["normalization"])
            params = TSIndexParams(**manifest["params"])
            seal_threshold = manifest.get(
                "seal_threshold", DEFAULT_SEAL_THRESHOLD
            )
            if seal_threshold is not None:
                seal_threshold = int(seal_threshold)
            max_segments = int(manifest.get("max_segments", DEFAULT_MAX_SEGMENTS))
            archive_format = str(manifest.get("archive_format", "npz"))
            if archive_format not in SEGMENT_SUFFIXES:
                raise ValueError(
                    f"unknown archive_format {archive_format!r}"
                )
        except (TypeError, ValueError, InvalidParameterError) as exc:
            raise SerializationError(
                f"live manifest in {path!r} holds invalid configuration: {exc}"
            ) from exc
        if fsync is None:
            fsync = bool(manifest.get("fsync", False))

        loaded: list[tuple[int, int, str, FrozenTSIndex]] = []
        frontier = 0
        quarantined: list[str] = []
        entries = manifest["segments"]
        for position, entry in enumerate(entries):
            start, stop = int(entry["start"]), int(entry["stop"])
            if start != frontier or stop <= start:
                raise SerializationError(
                    f"segment chain broken at [{start}, {stop}) "
                    f"(expected a segment starting at {frontier})"
                )
            try:
                with wrap_os_errors("segment read", entry["file"]):
                    failpoint("segment.read", file=str(entry["file"]))
                    archive = load_index(os.path.join(path, str(entry["file"])))
                if not isinstance(archive, FrozenTSIndex):
                    raise SerializationError(
                        f"{entry['file']}: not a frozen segment archive "
                        f"(got {type(archive).__name__})"
                    )
                if archive.size != stop - start or archive.length != length:
                    raise SerializationError(
                        f"{entry['file']}: archive shape disagrees with "
                        f"the manifest span [{start}, {stop})"
                    )
            except (StorageError, InvalidParameterError) as exc:
                if strict:
                    raise
                quarantined = [str(e["file"]) for e in entries[position:]]
                _quarantine_files(path, quarantined, reason=exc)
                break
            loaded.append((start, stop, str(entry["file"]), archive))
            frontier = stop
        wal_offset = manifest.get("wal_offset")
        if (
            not quarantined
            and wal_offset is not None
            and int(wal_offset) != frontier
        ):
            raise SerializationError(
                f"manifest wal_offset {wal_offset} disagrees with the "
                f"sealed frontier {frontier}"
            )

        wal_path = os.path.join(path, WAL_NAME)
        wal_dropped = False
        wal_start, wal_values, _clean = WriteAheadLog.replay(wal_path)
        if wal_start > frontier:
            if not quarantined:
                raise SerializationError(
                    f"WAL begins at value {wal_start}, past the sealed "
                    f"frontier {frontier}; readings are missing"
                )
            # The journal starts past the truncated frontier — its
            # readings are not contiguous with the surviving prefix.
            # Preserve it alongside the quarantined archives.
            _quarantine_files(path, [WAL_NAME], reason=None)
            wal_dropped = True
            wal_start = frontier
            wal_values = np.empty(0, dtype=FLOAT_DTYPE)

        # Reconstruct the full series: sealed chunks cover
        # [0, frontier + l - 1), the journal covers [wal_start, ...).
        pieces = [
            archive.source.series.values[: stop - start]
            for start, stop, _, archive in loaded
        ]
        if loaded:
            last_start, last_stop, _, last_archive = loaded[-1]
            pieces.append(
                last_archive.source.series.values[last_stop - last_start :]
            )
        known = (
            np.concatenate(pieces)
            if pieces
            else np.empty(0, dtype=FLOAT_DTYPE)
        )
        overlap = min(known.size, wal_start + wal_values.size) - wal_start
        if overlap > 0 and not np.array_equal(
            known[wal_start : wal_start + overlap], wal_values[:overlap]
        ):
            raise SerializationError(
                "WAL readings disagree with sealed segment values; "
                "refusing to recover from an inconsistent directory"
            )
        if wal_start + wal_values.size > known.size:
            series = np.concatenate(
                [known, wal_values[known.size - wal_start :]]
            )
        else:
            series = known

        index = cls.__new__(cls)
        index._init_config(
            length,
            normalization,
            params,
            seal_threshold,
            max_segments,
            background_compaction,
            directory=path,
            wal=None,
            fsync=fsync,
            archive_format=archive_format,
        )
        index._init_buffer(series)
        with index._lock:
            if index._size >= length:
                index._refresh_source()
            # Re-source each sealed segment against the recovered
            # monolith: prefix-stable rolling statistics make the
            # re-derived chunk sources bitwise equal to the pre-crash
            # ones, and from_arrays re-validates the flat structure.
            for start, stop, file, archive in loaded:
                detached = index._source.detach(start, stop)
                index._segments.append(
                    Segment(
                        start=start,
                        index=FrozenTSIndex.from_arrays(
                            detached,
                            params,
                            dataclasses.replace(archive.build_stats),
                            # Timestamp-major form: the re-sourced
                            # segment adopts the loaded envelopes
                            # (mmap views for raw archives) without a
                            # transpose copy per segment.
                            archive.raw_arrays(),
                        ),
                        file=file,
                    )
                )
            index._delta_start = frontier
            if wal_dropped:
                index._wal = WriteAheadLog.create(
                    wal_path, start=frontier, fsync=fsync
                )
            else:
                index._wal = WriteAheadLog.open(wal_path, fsync=fsync)
            index._quarantined = tuple(quarantined)
            index._absorb(frontier)
            # Normalize the journal to the recovered state: drops any
            # torn tail record and re-anchors at the sealed frontier.
            index._wal.rewrite(
                start=index._delta_start,
                values=index._buffer[index._delta_start : index._size],
            )
            index._write_manifest_locked()
            # Sweep archives a crash orphaned (written but never
            # committed to the manifest, or superseded by a compaction
            # whose unlink step was interrupted).
            referenced = {segment.file for segment in index._segments}
            for name in os.listdir(path):
                if (
                    name.startswith("seg-")
                    and name.endswith(tuple(SEGMENT_SUFFIXES.values()))
                    and name not in referenced
                ):
                    _remove_archive(os.path.join(path, name))
        _metrics()["recoveries"].inc()
        _log.info(
            "recovered live plane at %r: %d segments, %d journal "
            "readings replayed%s%s",
            path, len(loaded), wal_values.size,
            "" if _clean else " (torn WAL tail dropped)",
            f" ({len(quarantined)} archives quarantined)"
            if quarantined else "",
        )
        return index

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Indexed window length ``l``."""
        return self._length

    @property
    def normalization(self) -> Normalization:
        """The active regime (``NONE`` or ``PER_WINDOW``)."""
        return self._normalization

    @property
    def params(self) -> TSIndexParams:
        """Tree construction parameters shared by delta and segments."""
        return self._params

    @property
    def series_length(self) -> int:
        """Number of readings appended so far."""
        with self._lock:
            return self._size

    @property
    def window_count(self) -> int:
        """Number of indexed windows (0 until ``length`` readings)."""
        with self._lock:
            return max(0, self._size - self._length + 1)

    @property
    def size(self) -> int:
        """Alias of :attr:`window_count` (the index-surface name)."""
        return self.window_count

    @property
    def values(self) -> np.ndarray:
        """The series so far (a read-only view)."""
        with self._lock:
            view = self._buffer[: self._size]
        view.setflags(write=False)
        return view

    @property
    def source(self) -> WindowSource:
        """The monolithic window source over everything appended."""
        with self._lock:
            if self._source is None:
                raise IndexNotBuiltError(
                    f"no windows yet: {self._size} readings < "
                    f"length {self._length}"
                )
            return self._source

    @property
    def segments(self) -> tuple[Segment, ...]:
        """The sealed segments, ascending by span (snapshot)."""
        with self._lock:
            return tuple(self._segments)

    @property
    def segment_count(self) -> int:
        """Number of sealed segments."""
        with self._lock:
            return len(self._segments)

    @property
    def delta(self) -> TSIndex | None:
        """The mutable delta tree (``None`` right after a seal)."""
        with self._lock:
            return self._delta

    @property
    def delta_windows(self) -> int:
        """Windows currently held by the delta."""
        with self._lock:
            return self._delta_count

    @property
    def mutations(self) -> int:
        """Count of accepted appends — the cache-invalidation
        generation :class:`repro.engine.QueryEngine` keys results on."""
        with self._lock:
            return self._mutations

    @property
    def seal_count(self) -> int:
        """Seals performed over this plane's lifetime (this process)."""
        with self._lock:
            return self._seals

    @property
    def compaction_count(self) -> int:
        """Segment merges performed (this process)."""
        with self._lock:
            return self._compactions

    @property
    def directory(self) -> str | None:
        """The durability directory (``None`` for in-memory planes)."""
        return self._directory

    @property
    def durable(self) -> bool:
        """Whether appends are journaled to a write-ahead log."""
        return self._directory is not None

    @property
    def build_stats(self) -> BuildStats:
        """Aggregate build counters (seconds: max over parts; counters
        summed), mirroring :attr:`ShardedTSIndex.build_stats
        <repro.engine.sharding.ShardedTSIndex.build_stats>`."""
        merged = BuildStats()
        with self._lock:
            parts = [segment.index for segment in self._segments]
            if self._delta is not None:
                parts.append(self._delta)
        for tree in parts:
            stats = tree.build_stats
            merged.seconds = max(merged.seconds, stats.seconds)
            merged.windows += stats.windows
            merged.splits += stats.splits
            merged.height = max(merged.height, stats.height)
            merged.nodes += stats.nodes
        return merged

    def stats(self) -> dict:
        """One structural stats snapshot (for ``live stats`` and the
        engine registry)."""
        with self._lock:
            return {
                "windows": max(0, self._size - self._length + 1),
                "readings": self._size,
                "length": self._length,
                "normalization": self._normalization.value,
                "segments": len(self._segments),
                "delta_windows": self._delta_count,
                "seal_threshold": self._seal_threshold,
                "seals": self._seals,
                "compactions": self._compactions,
                "mutations": self._mutations,
                "durable": self._directory is not None,
                "directory": self._directory,
                "archive_format": self._archive_format,
                "quarantined_files": list(self._quarantined),
                "compaction": self._compactor.stats(),
                "segment_stats": [
                    segment.stats_row() for segment in self._segments
                ],
            }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LiveTwinIndex(readings={self._size}, "
                f"windows={max(0, self._size - self._length + 1)}, "
                f"length={self._length}, segments={len(self._segments)}, "
                f"delta={self._delta_count})"
            )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, readings: Any) -> int:
        """Durably append one reading or a batch; returns the number of
        newly indexed windows.

        The journal write (durable planes) happens *before* any
        in-memory mutation, so a crash mid-append loses at most the
        un-journaled batch. May seal the delta and schedule background
        compaction on the way out.
        """
        readings = _coerce_readings(readings, allow_empty=False)
        metrics = _metrics()
        with self._lock:
            if self._closed:
                raise InvalidParameterError(
                    "live index is closed; reopen with LiveTwinIndex.recover()"
                )
            if self._wal is not None:
                self._wal.append(readings)
            previous_windows = max(0, self._size - self._length + 1)
            needed = self._size + readings.size
            if needed > self._capacity:
                while self._capacity < needed:
                    self._capacity *= 2
                grown = np.empty(self._capacity, dtype=FLOAT_DTYPE)
                grown[: self._size] = self._buffer[: self._size]
                self._buffer = grown
            self._buffer[self._size : needed] = readings
            self._size = needed
            added = self._absorb(previous_windows)
            self._mutations += 1
            metrics["readings"].inc(readings.size)
            metrics["lag"].set(self._size - self._delta_start)
            return added

    def seal(self) -> bool:
        """Force-seal the current delta into a segment (normally the
        ``seal_threshold`` does this automatically); returns whether a
        seal happened."""
        with self._lock:
            if self._delta_count == 0:
                return False
            self._seal_locked()
            return True

    def compact(self, timeout: float | None = None) -> None:
        """Compact until at most ``max_segments`` segments remain,
        waiting for the background worker when one is in use."""
        if self._background:
            self._compactor.schedule()
            self._compactor.wait(timeout)
        else:
            self._compact_loop()

    def wait_for_compaction(self, timeout: float | None = None) -> None:
        """Block until any in-flight background compaction finishes."""
        self._compactor.wait(timeout)

    def close(self) -> None:
        """Seal nothing, stop background work, close the journal
        (idempotent). The plane rejects further appends; reopen durable
        planes with :meth:`recover`. A background-compaction error
        surfaces here — after the journal has been closed, so shutdown
        side effects happen even on the failure path."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._compactor.close()
        finally:
            with self._lock:
                if self._wal is not None:
                    self._wal.close()

    def abandon(self) -> None:
        """Drop the plane as a crash would: stop accepting work and
        release file handles **without** flushing, sealing, or letting
        in-flight background compaction commit anything.

        For fault testing (the chaos harness calls this after a
        :class:`~repro.exceptions.SimulatedCrashError`): after
        ``abandon()`` the only way back is :meth:`recover`, exactly as
        after a real kill. Idempotent, like :meth:`close`.
        """
        with self._lock:
            if self._closed:
                return
            # _closed makes the compaction loop bail before its next
            # splice/manifest commit, so the background thread cannot
            # mutate durable state past the "crash".
            self._closed = True
        self._compactor.close()
        with self._lock:
            if self._wal is not None:
                # Every append ends in a flush, so closing the handle
                # writes nothing a crash would not have written.
                self._wal.close()

    def __enter__(self) -> "LiveTwinIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internal lifecycle (all callers hold the lock)
    # ------------------------------------------------------------------
    def _refresh_source(self) -> None:  # lint: holds(_lock) called with the plane lock held
        """Point the monolithic source (and the delta's shard view) at
        the grown buffer. Already-extracted window values never change:
        the regime is raw or per-window, and the rolling statistics are
        prefix-stable (see :func:`~repro.core.normalization.rolling_std`).

        Under the per-window regime the rolling statistics are extended
        incrementally rather than recomputed — prefix-stability makes
        the extension bitwise identical, and it keeps each append
        O(batch + block) instead of O(series)."""
        view = self._buffer[: self._size]
        if self._normalization is Normalization.PER_WINDOW:
            self._extend_window_stats()
            count = self._size - self._length + 1
            self._source = assemble_source(
                view,
                self._length,
                self._normalization,
                means=self._win_means[:count],
                stds=self._win_stds[:count],
                name="live",
            )
        else:
            series = TimeSeries(view, name="live", copy=False)
            self._source = WindowSource(
                series, self._length, self._normalization
            )
        if self._delta is not None:
            self._delta._source = self._source.shard(
                self._delta_start, self._source.count
            )

    def _extend_window_stats(self) -> None:  # lint: holds(_lock) called with the plane lock held
        """Extend the cached per-window rolling statistics to the
        current size — bitwise identical to recomputing
        ``rolling_mean``/``rolling_std`` over the full buffer, because
        the cumulative sum continues sequentially and the std kernel's
        block boundaries sit at fixed absolute positions."""
        size = self._size
        if self._csum is None or self._csum.size < size + 1:
            grown = np.zeros(self._capacity + 1, dtype=FLOAT_DTYPE)
            if self._csum is not None:
                grown[: self._csum_count + 1] = self._csum[
                    : self._csum_count + 1
                ]
            self._csum = grown
        if size > self._csum_count:
            new = self._buffer[self._csum_count : size]
            # cumsum seeded with the running total continues the exact
            # sequential accumulation one cumsum over the whole buffer
            # would perform — same order, same rounding.
            tail = np.cumsum(
                np.concatenate(([self._csum[self._csum_count]], new)),
                dtype=FLOAT_DTYPE,
            )
            self._csum[self._csum_count + 1 : size + 1] = tail[1:]
            self._csum_count = size
        count = size - self._length + 1
        if self._win_means is None or self._win_means.size < count:
            grown_means = np.empty(self._capacity, dtype=FLOAT_DTYPE)
            grown_stds = np.empty(self._capacity, dtype=FLOAT_DTYPE)
            if self._win_means is not None:
                grown_means[: self._stats_count] = self._win_means[
                    : self._stats_count
                ]
                grown_stds[: self._stats_count] = self._win_stds[
                    : self._stats_count
                ]
            self._win_means = grown_means
            self._win_stds = grown_stds
        if count <= self._stats_count:
            return
        lo = self._stats_count
        length = self._length
        self._win_means[lo:count] = (
            self._csum[lo + length : count + length] - self._csum[lo:count]
        ) / length
        # Only std blocks touching new windows change; recomputing from
        # the containing block's absolute boundary reproduces the global
        # kernel's chunks (and centers) exactly.
        block_start = (lo // std_block_size(length)) * std_block_size(length)
        self._win_stds[block_start:count] = rolling_std(
            self._buffer[block_start:size], length
        )
        self._stats_count = count

    def _absorb(self, previous_windows: int) -> int:
        """Index every window completed since ``previous_windows``,
        sealing whenever the delta crosses the threshold."""
        if self._size < self._length:
            return 0
        self._refresh_source()
        total = self._source.count
        for position in range(previous_windows, total):
            self._insert_window(position)
            if (
                self._seal_threshold is not None
                and self._delta_count >= self._seal_threshold
            ):
                self._seal_locked()
        return total - previous_windows

    def _insert_window(self, position: int) -> None:  # lint: holds(_lock) called with the plane lock held
        if self._delta is None:
            view = self._source.shard(self._delta_start, self._source.count)
            self._delta = TSIndex(view, self._params)
        self._delta._insert_position(position - self._delta_start)
        self._delta._build_stats.windows += 1
        self._delta_count += 1

    def _seal_locked(self) -> None:  # lint: holds(_lock) called with the plane lock held
        """Flatten the delta into an immutable segment.

        The segment's source is **detached** (owns copies of its value
        chunk and statistics slices), so sealed segments never pin the
        historical append buffer alive. Durable planes write the
        archive, then the manifest, then truncate the journal — each
        step atomic, so a crash between any two recovers cleanly.
        """
        metrics = _metrics()
        start = self._delta_start
        stop = self._delta_start + self._delta_count
        failpoint("live.seal", start=start, stop=stop)
        with metrics["seal_seconds"].time():
            detached = self._source.detach(self._delta_start, stop)
            frozen = FrozenTSIndex.from_tree(
                detached,
                self._delta._root,
                self._params,
                dataclasses.replace(self._delta._build_stats),
            )
            segment = Segment(start=self._delta_start, index=frozen)
            if self._directory is not None:
                segment.file = self._segment_file(segment.start, stop)
                self._save_segment_archive(frozen, segment.file)
            self._segments.append(segment)
            self._delta = None
            self._delta_count = 0
            self._delta_start = stop
            self._seals += 1
            if self._directory is not None:
                self._write_manifest_locked()
                self._wal.rewrite(
                    start=stop, values=self._buffer[stop : self._size]
                )
        metrics["seals"].inc()
        metrics["lag"].set(self._size - self._delta_start)
        _log.info(
            "sealed segment [%d, %d) (%d windows, %d segments total)",
            start, stop, stop - start, len(self._segments),
        )
        if len(self._segments) > self._max_segments:
            if self._background:
                _log.debug(
                    "scheduling background compaction (%d segments > "
                    "max %d)", len(self._segments), self._max_segments,
                )
                self._compactor.schedule()
            else:
                self._compact_loop()

    def _compact_loop(self) -> None:
        """Merge adjacent segments until at most ``max_segments``
        remain. The expensive merge runs without the lock (its inputs
        are immutable); only the list splice and manifest commit are
        locked."""
        while True:
            with self._lock:
                if self._closed or len(self._segments) <= self._max_segments:
                    return
                pair = select_adjacent_pair(self._segments)
                first, second = (
                    self._segments[pair],
                    self._segments[pair + 1],
                )
            metrics = _metrics()
            with metrics["compaction_seconds"].time():
                merged = merge_segments(first, second, self._params)
            if self._directory is not None:
                merged.file = self._segment_file(merged.start, merged.stop)
                self._save_segment_archive(merged.index, merged.file)
            with self._lock:
                if self._closed:
                    return
                # Appends only ever add segments at the tail and this
                # loop is the only remover, so the pair is still
                # adjacent — located by identity for robustness.
                position = next(
                    (
                        i
                        for i, segment in enumerate(self._segments)
                        if segment is first
                    ),
                    None,
                )
                if (
                    position is None
                    or position + 1 >= len(self._segments)
                    or self._segments[position + 1] is not second
                ):
                    continue
                self._segments[position : position + 2] = [merged]
                self._compactions += 1
                metrics["compactions"].inc()
                _log.info(
                    "compacted segments [%d, %d) + [%d, %d) -> [%d, %d) "
                    "(%d segments remain)",
                    first.start, first.stop, second.start, second.stop,
                    merged.start, merged.stop, len(self._segments),
                )
                if self._directory is not None:
                    self._write_manifest_locked()
                    for stale in (first.file, second.file):
                        if stale and stale != merged.file:
                            _remove_archive(
                                os.path.join(self._directory, stale)
                            )

    def _segment_file(self, start: int, stop: int) -> str:
        """Archive name for the segment spanning ``[start, stop)``."""
        suffix = SEGMENT_SUFFIXES[self._archive_format]
        return f"seg-{start:012d}-{stop:012d}{suffix}"

    def _save_segment_archive(self, frozen: FrozenTSIndex, file: str) -> None:
        """Write one segment archive; in fsync mode the data (and its
        directory entry) must be durable *before* the manifest commits a
        reference to it — otherwise a power loss could leave a manifest
        pointing at a torn archive after the WAL was truncated. (Raw
        archives fsync-and-rename internally; their commit marker is
        ``meta.json``, written last.)"""
        from ..persistence import save_index  # lazy: avoids import cost
        from .wal import fsync_directory, fsync_file

        path = os.path.join(self._directory, file)
        with wrap_os_errors("segment write", path):
            failpoint("segment.write", file=file)
            if self._archive_format == "raw":
                save_index(frozen, path, format="raw", fsync=self._fsync)
            else:
                save_index(frozen, path)
        if self._fsync:
            if self._archive_format != "raw":
                fsync_file(path)
            fsync_directory(self._directory)

    def _write_manifest_locked(self) -> None:
        save_manifest(
            self._directory,
            {
                "format": MANIFEST_FORMAT,
                "length": self._length,
                "normalization": self._normalization.value,
                "params": {
                    "min_children": self._params.min_children,
                    "max_children": self._params.max_children,
                    "split_metric": self._params.split_metric,
                },
                "seal_threshold": self._seal_threshold,
                "max_segments": self._max_segments,
                "fsync": self._fsync,
                "archive_format": self._archive_format,
                "wal_offset": self._delta_start,
                "segments": [
                    {
                        "start": segment.start,
                        "stop": segment.stop,
                        "file": segment.file,
                    }
                    for segment in self._segments
                ],
            },
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _segment_tasks(
        self, segments, call: str, args: tuple, kwargs_for=None
    ) -> list | None:
        """Picklable per-segment archive tasks for process fan-out, or
        ``None`` when the snapshot cannot be served by path (in-memory
        plane, or a segment without an archive) — the caller then keeps
        its closure path and :func:`~repro._util.fan_out` degrades a
        process pool to the serial loop, byte-identical either way.
        Workers replay the thread closure's exact call against the
        segment archive, whose embedded rolling statistics (per-window
        regime) keep the standalone reload bitwise equal to the
        in-memory segment."""
        if self._directory is None or any(
            segment.file is None for segment in segments
        ):
            return None
        from ..engine.procpool import ArchiveTask  # lazy: process mode only

        return [
            ArchiveTask(
                os.path.join(self._directory, segment.file),
                call,
                args=args,
                kwargs=kwargs_for(segment) if kwargs_for is not None else {},
            )
            for segment in segments
        ]

    def search(
        self,
        query: Any,
        epsilon: float,
        *,
        verification: str = "bulk",
        executor: Any = None,
        timeout: float | None = None,
        degraded: bool = False,
    ) -> SearchResult:
        """All twins of ``query`` within Chebyshev ``ε`` over everything
        appended so far — byte-identical to a from-scratch
        :class:`~repro.core.tsindex.TSIndex` over the full series.

        Segments answer in parallel on ``executor`` when one is given;
        the delta is searched under the plane's lock (it is the only
        mutable part), segments from an immutable snapshot outside it.
        Queries shorter than ``l`` dispatch to :meth:`search_varlength`.

        ``timeout`` bounds the pooled segment fan-out, in seconds (the
        delta answers inline and is never dropped). On expiry the
        default is a typed
        :class:`~repro.exceptions.ShardTimeoutError`; ``degraded=True``
        instead serves the segments that answered, recording exactly
        which parts did on ``result.degraded``.
        """
        if is_prefix_query(query, self._length):
            return self.search_varlength(
                query, epsilon, verification=verification, executor=executor
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        with self._lock:
            if self._source is None:
                return SearchResult.empty()
            prepared = self._prepare(query)
            segments = list(self._segments)
            delta_start = self._delta_start
            delta_result = (
                None
                if self._delta is None
                else self._delta.search(
                    prepared, epsilon, verification=verification
                )
            )

        # Captured here because executor worker threads do not inherit
        # the trace context variable — the closure carries it across.
        trace = current_trace()

        def one(segment: Segment) -> SearchResult:
            with trace.span("execute", segment=segment.start):
                failpoint("segment.search", segment=segment.start)
                return segment.index.search(
                    prepared, epsilon, verification=verification
                )

        fn, items = one, segments
        if is_process_executor(executor):
            tasks = self._segment_tasks(
                segments,
                "search",
                (prepared, epsilon),
                lambda segment: {"verification": verification},
            )
            if tasks is not None:
                fn, items = call_task, tasks
        outcome = fan_out(
            executor,
            fn,
            items,
            labels=[segment.start for segment in segments],
            part="segment",
            timeout=timeout,
            degraded=degraded,
        )
        parts = [
            (segment.start, result)
            for segment, result in zip(segments, outcome.results)
            if result is not None
        ]
        if delta_result is not None:
            parts.append((delta_start, delta_result))
        # Segments ascend by span and the delta covers the tail, so the
        # shared offset merge yields a globally position-sorted result —
        # exactly the monolithic one.
        with trace.span("merge"):
            merged = merge_offset_search(parts)
        if outcome.degraded:
            answered = list(outcome.answered)
            if delta_result is not None:
                answered.append(delta_start)
            merged.degraded = {
                "answered": answered,
                "missing": list(outcome.missing),
                "timeout": timeout,
            }
        return merged

    def search_varlength(
        self,
        query: Any,
        epsilon: float,
        *,
        verification: str = "bulk",
        executor: Any = None,
    ) -> SearchResult:
        """All twins of a query of length ``m <= l`` over everything
        appended so far — including positions in the un-indexed series
        tail (and, before ``length`` readings have even arrived, over
        the raw readings themselves).

        Delta and segments each run the prefix-bounded traversal over
        their own span (their value chunks overlap by ``l - 1 >= m - 1``
        readings, so every ``m``-window of a part's window span lies
        inside its chunk); the tail — the last ``l - m`` starts — is a
        direct scan over a snapshot of the append buffer. Parts merge
        through the shared offset kernel, byte-identical to a prefix
        scan over the full series. ``m == l`` delegates to
        :meth:`search`; the per-window regime rejects shorter queries
        with a typed error.
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = check_varlength_query(
            query, self._length, self._normalization
        )
        m = query.size
        if m == self._length:
            return self.search(
                query, epsilon, verification=verification, executor=executor
            )
        with self._lock:
            size = self._size
            if size < m:
                return SearchResult.empty()
            segments = list(self._segments)
            delta_start = self._delta_start
            delta_result = None
            if self._delta is not None:
                delta_result = prefix_search_part(
                    self._delta, query, epsilon, verification=verification
                )
            tail_lo = max(0, size - self._length + 1)
            # Snapshot: the buffer may be swapped by a concurrent append.
            tail_chunk = np.array(self._buffer[tail_lo:size])

        def one(segment: Segment) -> SearchResult:
            return prefix_search_part(
                segment.index, query, epsilon, verification=verification
            )

        fn, items = one, segments
        if is_process_executor(executor):
            tasks = self._segment_tasks(
                segments,
                "prefix_search_part",
                (query, epsilon),
                lambda segment: {"verification": verification},
            )
            if tasks is not None:
                fn, items = call_task, tasks
        results = map_with_executor(executor, fn, items)
        parts = [
            (segment.start, result)
            for segment, result in zip(segments, results)
        ]
        if delta_result is not None:
            parts.append((delta_start, delta_result))
        tail_source = assemble_source(
            tail_chunk, m, Normalization.NONE, name="live-tail"
        )
        parts.append(
            (
                tail_lo,
                verify(
                    tail_source,
                    query,
                    np.arange(tail_source.count, dtype=POSITION_DTYPE),
                    epsilon,
                    mode=verification,
                ),
            )
        )
        return merge_offset_search(parts)

    def count(self, query: Any, epsilon: float, *, executor: Any = None) -> int:
        """Number of twins — summed per part (delta + segments), so the
        merged result arrays are never materialized (shorter queries
        derive from :meth:`search_varlength`)."""
        if is_prefix_query(query, self._length):
            return len(
                self.search_varlength(query, epsilon, executor=executor)
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        with self._lock:
            if self._source is None:
                return 0
            prepared = self._prepare(query)
            segments = list(self._segments)
            total = (
                0
                if self._delta is None
                else self._delta.count(prepared, epsilon)
            )

        def one(segment) -> int:
            return segment.index.count(prepared, epsilon)

        fn, items = one, segments
        if is_process_executor(executor):
            tasks = self._segment_tasks(segments, "count", (prepared, epsilon))
            if tasks is not None:
                fn, items = call_task, tasks
        return total + sum(map_with_executor(executor, fn, items))

    def knn(
        self,
        query: Any,
        k: int,
        *,
        exclude: tuple[int, int] | None = None,
        executor: Any = None,
    ) -> SearchResult:
        """The ``k`` globally nearest windows, merged across delta and
        segments by ``(distance, position)`` — the library-wide k-NN
        tie-break, so the answer equals the monolithic one exactly.
        Queries shorter than ``l`` run the exact prefix scan — served
        even before ``length`` readings have arrived (over the raw
        readings themselves)."""
        if is_prefix_query(query, self._length):
            return self._prefix_knn(query, k, exclude)
        k = check_positive_int(k, name="k")
        exclude = normalize_exclude(exclude)
        with self._lock:
            if self._source is None:
                return SearchResult.empty()
            prepared = self._prepare(query)
            segments = list(self._segments)
            delta_start = self._delta_start
            delta_result = None
            if self._delta is not None:
                delta_result = self._delta.knn(
                    prepared,
                    min(k, self._delta_count),
                    exclude=_local_exclude(
                        exclude, delta_start, self._delta_count
                    ),
                )

        def one(segment: Segment) -> SearchResult:
            return segment.index.knn(
                prepared,
                min(k, segment.size),
                exclude=_local_exclude(exclude, segment.start, segment.size),
            )

        fn, items = one, segments
        if is_process_executor(executor):
            tasks = self._segment_tasks(
                segments,
                "knn",
                (prepared,),
                lambda segment: {
                    "k": min(k, segment.size),
                    "exclude": _local_exclude(
                        exclude, segment.start, segment.size
                    ),
                },
            )
            if tasks is not None:
                fn, items = call_task, tasks
        results = map_with_executor(executor, fn, items)
        parts = [
            (segment.start, result)
            for segment, result in zip(segments, results)
        ]
        if delta_result is not None:
            parts.append((delta_start, delta_result))
        return merge_knn(parts, k)

    def _prefix_knn(self, query, k: int, exclude) -> SearchResult:
        """Exact prefix-scan k-NN for a query shorter than ``l`` —
        self-contained (no window source needed), so it serves even a
        plane holding fewer than ``length`` readings."""
        k = check_positive_int(k, name="k")
        exclude = normalize_exclude(exclude)
        query = check_varlength_query(
            query, self._length, self._normalization
        )
        with self._lock:
            values = np.array(self._buffer[: self._size])
        if values.size < query.size:
            return SearchResult.empty()
        snapshot = assemble_source(
            values, self._length if values.size >= self._length
            else values.size,
            Normalization.NONE,
            name="live",
        )
        return scan_prefix_knn(snapshot, query, k, exclude=exclude)

    def exists(self, query: Any, epsilon: float) -> bool:
        """Whether the pattern has occurred anywhere so far (early
        exit; the delta — the freshest data — is probed first; shorter
        queries derive from :meth:`search_varlength`)."""
        if is_prefix_query(query, self._length):
            return len(self.search_varlength(query, epsilon)) > 0
        epsilon = check_non_negative(epsilon, name="epsilon")
        with self._lock:
            if self._source is None:
                return False
            prepared = self._prepare(query)
            segments = list(self._segments)
            if self._delta is not None and self._delta.exists(
                prepared, epsilon
            ):
                return True
        return any(
            segment.index.exists(prepared, epsilon) for segment in segments
        )

    def search_batch(
        self,
        queries: Any,
        epsilon: float,
        *,
        executor: Any = None,
        **search_options: Any,
    ) -> BatchResult:
        """Run every query of ``queries`` at ``epsilon`` (queries fan
        out across ``executor`` when one is given); result order matches
        the input order."""
        epsilon = check_non_negative(epsilon, name="epsilon")
        queries = list(queries)

        if is_process_executor(executor):
            # Query closures cannot cross a process boundary; run the
            # query loop here and fan each query's *segments* across
            # the worker processes instead (identical results).
            results = [
                self.search(query, epsilon, executor=executor, **search_options)
                for query in queries
            ]
            return batch_result(results, epsilon)

        def one(query) -> SearchResult:
            return self.search(query, epsilon, **search_options)

        results = map_with_executor(executor, one, queries)
        return batch_result(results, epsilon)

    # ------------------------------------------------------------------
    def _prepare(self, query) -> np.ndarray:
        return prepare_values(self._source, query, expected=self._length)


# ----------------------------------------------------------------------
def _coerce_readings(readings, *, allow_empty: bool) -> np.ndarray:
    if readings is None:
        if allow_empty:
            return np.empty(0, dtype=FLOAT_DTYPE)
        raise InvalidParameterError("readings must be a non-empty 1-D batch")
    array = np.atleast_1d(np.asarray(readings, dtype=FLOAT_DTYPE))
    if array.ndim != 1 or (array.size == 0 and not allow_empty):
        raise InvalidParameterError("readings must be a non-empty 1-D batch")
    if not np.all(np.isfinite(array)):
        raise InvalidParameterError("readings contain NaN or infinity")
    return array


def _remove_archive(path: str) -> None:
    """Best-effort removal of a segment archive — a compressed file or
    a raw archive directory (stale-file cleanup must never fail a
    recovery or compaction commit)."""
    import shutil

    try:
        if os.path.isdir(path):
            shutil.rmtree(path)
        else:
            os.unlink(path)
    except OSError:  # lint: disable=crash-safety best-effort removal of an already-stale file
        pass


def _quarantine_files(directory, names, *, reason) -> None:
    """Move ``names`` from the live directory into ``quarantine/``
    (never deleted — preserved for forensics and manual repair)."""
    qdir = os.path.join(os.fspath(directory), "quarantine")
    os.makedirs(qdir, exist_ok=True)
    moved = 0
    for name in names:
        source = os.path.join(directory, name)
        try:
            os.replace(source, os.path.join(qdir, name))
            moved += 1
        except FileNotFoundError:
            continue
        except OSError as exc:
            _log.warning("could not quarantine %r: %s", source, exc)
    _metrics()["quarantined"].inc(len(names))
    _log.warning(
        "quarantined %d file(s) into %r%s: %s",
        moved, qdir,
        f" (first failure: {reason!r})" if reason is not None else "",
        list(names),
    )


def _local_exclude(
    exclude: tuple[int, int] | None, start: int, size: int
) -> tuple[int, int] | None:
    """Translate a global exclusion zone into a part's local frame."""
    if exclude is None:
        return None
    lo = max(0, exclude[0] - start)
    hi = min(size, exclude[1] - start)
    return (lo, hi) if lo < hi else None


