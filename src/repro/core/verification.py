"""The verification step of the filter-verification framework (§3.2).

Every index produces *candidate* window positions; verification computes
the exact Chebyshev distance of each candidate to the query and keeps the
twins. Three interchangeable strategies are provided:

* :func:`verify_positions` — fully vectorized: one NumPy reduction per
  chunk of candidates. Fastest when most candidates qualify or ``l`` is
  small.
* :func:`verify_positions_blocked` — *blocked reordering early
  abandoning*: timestamps are processed in blocks ordered by decreasing
  query magnitude, and candidates whose partial distance already exceeds
  ``ε`` are dropped between blocks. This is the vectorized analogue of
  the UCR-suite optimization the paper adopts; it wins when candidates
  are plentiful but matches are rare.
* :func:`verify_intervals` — verifies contiguous position runs directly
  against zero-copy window blocks (used by KV-Index, whose inverted lists
  store intervals).

All strategies return identical results; tests enforce this.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .._util import (
    POSITION_DTYPE,
    as_position_array,
    check_non_negative,
    iter_chunks,
)
from .distance import reorder_by_magnitude
from .stats import QueryStats, SearchResult
from .windows import WindowSource

#: Number of candidate windows verified per NumPy batch. Bounds peak
#: memory at roughly ``chunk * l * 8`` bytes per temporary.
DEFAULT_CHUNK = 4096

#: Timestamp block width for blocked early abandoning.
DEFAULT_BLOCK = 16

#: Verification strategies accepted by every method's ``search``:
#: ``bulk`` — vectorized batches (fastest in NumPy; the library default);
#: ``blocked`` — vectorized blocked reordering early abandoning;
#: ``per_candidate`` — one check per candidate, the paper's cost model
#: (their data lived on disk and each candidate was fetched by random
#: access, so verification cost scaled with the candidate count; the
#: benchmark harness uses this mode to reproduce the paper's figures).
VERIFICATION_MODES = ("bulk", "blocked", "per_candidate")


def verify_positions(
    source: WindowSource,
    query: np.ndarray,
    positions: npt.ArrayLike,
    epsilon: float,
    *,
    stats: QueryStats | None = None,
    chunk_size: int = DEFAULT_CHUNK,
) -> SearchResult:
    """Exactly verify ``positions`` against ``query`` at threshold ``ε``.

    ``query`` must already be expressed in the source's value domain
    (callers use :meth:`WindowSource.prepare_query`). Returns a
    :class:`SearchResult` with positions sorted ascending.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    positions = np.sort(as_position_array(positions))
    stats = stats if stats is not None else QueryStats()
    stats.candidates += int(positions.size)
    stats.verified += int(positions.size)

    matched_positions: list[np.ndarray] = []
    matched_distances: list[np.ndarray] = []
    for start, stop in iter_chunks(positions.size, chunk_size):
        chunk = positions[start:stop]
        block = source.windows(chunk)
        profile = np.max(np.abs(block - query), axis=1)
        keep = profile <= epsilon
        if np.any(keep):
            matched_positions.append(chunk[keep])
            matched_distances.append(profile[keep])

    return _collect(matched_positions, matched_distances, stats)


def verify_positions_blocked(
    source: WindowSource,
    query: np.ndarray,
    positions: npt.ArrayLike,
    epsilon: float,
    *,
    stats: QueryStats | None = None,
    chunk_size: int = DEFAULT_CHUNK,
    block_size: int = DEFAULT_BLOCK,
) -> SearchResult:
    """Verification with blocked reordering early abandoning.

    Timestamps are visited in blocks sorted by decreasing query magnitude
    (see :func:`~repro.core.distance.reorder_by_magnitude`); after each
    block, candidates whose running maximum difference exceeds ``ε`` are
    discarded, so later blocks touch progressively fewer rows.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    positions = np.sort(as_position_array(positions))
    stats = stats if stats is not None else QueryStats()
    stats.candidates += int(positions.size)
    stats.verified += int(positions.size)

    order = reorder_by_magnitude(query)
    matched_positions: list[np.ndarray] = []
    matched_distances: list[np.ndarray] = []
    for start, stop in iter_chunks(positions.size, chunk_size):
        # Keep the survivors *compacted*: ``survivors`` always holds only
        # the still-alive rows, so each block performs a single column
        # fancy-index (``survivors[:, idx]``) instead of the double
        # ``block[alive][:, idx]`` gather that copied the full alive
        # submatrix once per block.
        alive_positions = positions[start:stop]
        survivors = source.windows(alive_positions)
        running = np.zeros(alive_positions.size)
        for block_start, block_stop in iter_chunks(order.size, block_size):
            idx = order[block_start:block_stop]
            diffs = np.max(np.abs(survivors[:, idx] - query[idx]), axis=1)
            np.maximum(running, diffs, out=running)
            keep = running <= epsilon
            if not keep.all():
                survivors = survivors[keep]
                alive_positions = alive_positions[keep]
                running = running[keep]
            if alive_positions.size == 0:
                break
        if alive_positions.size:
            matched_positions.append(alive_positions)
            matched_distances.append(running)

    return _collect(matched_positions, matched_distances, stats)


def verify_intervals(
    source: WindowSource,
    query: np.ndarray,
    intervals: npt.ArrayLike,
    epsilon: float,
    *,
    stats: QueryStats | None = None,
    chunk_size: int = DEFAULT_CHUNK,
) -> SearchResult:
    """Verify half-open position runs ``[(start, stop), ...]``.

    Runs must be disjoint and sorted; window blocks are zero-copy views
    under the NONE/GLOBAL regimes, which makes this the cheapest path for
    interval-shaped candidate sets (KV-Index, sweepline).
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    stats = stats if stats is not None else QueryStats()

    matched_positions: list[np.ndarray] = []
    matched_distances: list[np.ndarray] = []
    for start, stop in intervals:
        run = stop - start
        stats.candidates += run
        stats.verified += run
        for offset, offset_stop in iter_chunks(run, chunk_size):
            lo = start + offset
            hi = start + offset_stop
            block = source.window_block(lo, hi)
            profile = np.max(np.abs(block - query), axis=1)
            keep = profile <= epsilon
            if np.any(keep):
                matched_positions.append(
                    np.arange(lo, hi, dtype=POSITION_DTYPE)[keep]
                )
                matched_distances.append(profile[keep])

    return _collect(matched_positions, matched_distances, stats)


def verify_positions_per_candidate(
    source: WindowSource,
    query: np.ndarray,
    positions: npt.ArrayLike,
    epsilon: float,
    *,
    stats: QueryStats | None = None,
) -> SearchResult:
    """Candidate-at-a-time verification (the paper's cost model).

    Every candidate window is fetched and checked individually, so the
    wall-clock cost is proportional to the number of candidates the
    filter step produced — mirroring the paper's setup where candidates
    were read from disk by random access one subsequence at a time.
    Results are identical to :func:`verify_positions`.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    positions = np.sort(as_position_array(positions))
    stats = stats if stats is not None else QueryStats()
    stats.candidates += int(positions.size)
    stats.verified += int(positions.size)

    matched: list[int] = []
    distances: list[float] = []
    view = source
    for position in positions.tolist():
        window = view.window(position)
        distance = float(np.max(np.abs(window - query)))
        if distance <= epsilon:
            matched.append(position)
            distances.append(distance)
    stats.matches += len(matched)
    return SearchResult(
        positions=np.asarray(matched, dtype=POSITION_DTYPE),
        distances=np.asarray(distances, dtype=float),
        stats=stats,
    )


def verify(
    source: WindowSource,
    query: np.ndarray,
    positions: npt.ArrayLike,
    epsilon: float,
    *,
    mode: str = "bulk",
    stats: QueryStats | None = None,
) -> SearchResult:
    """Dispatch to the verification strategy named by ``mode``."""
    if mode == "bulk":
        return verify_positions(source, query, positions, epsilon, stats=stats)
    if mode == "blocked":
        return verify_positions_blocked(
            source, query, positions, epsilon, stats=stats
        )
    if mode == "per_candidate":
        return verify_positions_per_candidate(
            source, query, positions, epsilon, stats=stats
        )
    from ..exceptions import InvalidParameterError

    raise InvalidParameterError(
        f"unknown verification mode {mode!r}; expected one of "
        f"{VERIFICATION_MODES}"
    )


def _collect(
    matched_positions: list[np.ndarray],
    matched_distances: list[np.ndarray],
    stats: QueryStats,
) -> SearchResult:
    if not matched_positions:
        result = SearchResult.empty(stats)
        stats.matches += 0
        return result
    positions = np.concatenate(matched_positions)
    distances = np.concatenate(matched_distances)
    order = np.argsort(positions, kind="stable")
    stats.matches += int(positions.size)
    return SearchResult(
        positions=positions[order], distances=distances[order], stats=stats
    )
