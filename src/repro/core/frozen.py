"""FrozenTSIndex — a read-optimized, array-flattened TS-Index snapshot.

The dynamic :class:`~repro.core.tsindex.TSIndex` is a pointer tree of
Python ``_Node`` objects: ideal for insertion, terrible for query
throughput, because every traversal chases object references and runs
per-node Python. Freezing converts the finished tree into a
structure-of-arrays *query plane*:

* ``uppers`` / ``lowers`` — ``(n_nodes, l)`` stacked envelope matrices
  (rows are node MBTS bounds, in BFS order, root first);
* ``children_offsets`` / ``children`` — a CSR adjacency: node ``i``'s
  children are ``children[children_offsets[i]:children_offsets[i+1]]``;
* ``leaf_offsets`` / ``positions`` — one contiguous array of all leaf
  window positions with per-node half-open spans (empty for internal
  nodes).

Queries then run *level-synchronously*: the Eq. 2 bound of the entire
frontier against the query is one broadcast NumPy reduction per level
(``max(max(Q - U, L - Q), axis=1)``) instead of one Python call per
node, and :meth:`FrozenTSIndex.search_batch` extends the same idea to a
``(query, node)`` pair frontier so many queries share one traversal.

Results are **exactly** those of the pointer tree — same positions,
same distances, the same deterministic ``(distance, position)`` k-NN
tie-break, and (for ``search`` / ``exists``) the same structural
counters — enforced by the randomized equivalence suite in
``tests/test_frozen.py``.

Lifecycle: **build** the dynamic tree (sequential insertion or
:mod:`~repro.core.bulkload`), **freeze** it once writes stop, then
**serve** queries from the flat form (a frozen index is immutable; to
add windows, build a new tree and freeze again). The serving layer
(:class:`repro.engine.ShardedTSIndex`) freezes its shards at build time
by default, and :mod:`repro.persistence` round-trips the arrays
natively, so loading a frozen archive is pure array reads.
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from typing import TYPE_CHECKING, Iterable

import numpy as np
import numpy.typing as npt

from .._util import (
    FLOAT_DTYPE,
    POSITION_DTYPE,
    check_non_negative,
    check_positive_int,
    iter_chunks,
)
from ..exceptions import InvalidParameterError
from ..query.capabilities import (
    CAP_COUNT,
    CAP_EXISTS,
    CAP_KNN,
    CAP_SEARCH,
    CAP_SEARCH_BATCH,
    CAP_VARLENGTH,
    CAP_VERIFICATION,
)
from ..query.registration import register_plane
from ..query.spec import prepare_values
from ..query.varlength import (
    is_prefix_query,
    merge_exists_stats,
    prefix_search_with_tail,
)
from .batch import BatchResult
from .normalization import Normalization
from .stats import BuildStats, QueryStats, SearchResult
from .verification import verify
from .windows import WindowSource

if TYPE_CHECKING:  # runtime import would be circular; tsindex imports us
    from .tsindex import TSIndex, TSIndexParams, _Node

#: Upper bound on the elements of one ``(pairs, l)`` bound temporary;
#: larger frontiers are processed in chunks so peak memory stays at
#: roughly ``_BOUND_CHUNK * 8`` bytes per temporary.
_BOUND_CHUNK = 1 << 20

#: Largest (query, node) pair count a batched level evaluates through
#: the gathered pair kernel; bigger levels switch to per-query passes
#: over contiguous envelope spans (less copying, same results).
_PAIR_KERNEL_LIMIT = 4096

#: Columns per early-abandoning block in the pruning kernels. Pruned
#: nodes usually reveal themselves within the first block, so the bound
#: arithmetic for the (vast) pruned majority touches ``_PRUNE_BLOCK``
#: timestamps instead of all ``l`` — the node-level analogue of the
#: blocked verification strategy, with identical prune decisions
#: (partial maxima only ever grow).
_PRUNE_BLOCK = 32

#: Names of the flat arrays a frozen index is made of (the serializer
#: round-trips exactly this set).
ARRAY_FIELDS = (
    "uppers",
    "lowers",
    "kinds",
    "children_offsets",
    "children",
    "leaf_offsets",
    "positions",
)

#: The same arrays with the envelopes in their *resident*
#: timestamp-major ``(l, n)`` layout (``uppers_t`` / ``lowers_t``).
#: Archives stored this way load zero-copy: :meth:`FrozenTSIndex`
#: adopts the matrices as-is (memmap views included) instead of
#: transposing ``(n, l)`` input into fresh private memory.
RAW_ARRAY_FIELDS = (
    "uppers_t",
    "lowers_t",
    "kinds",
    "children_offsets",
    "children",
    "leaf_offsets",
    "positions",
)


def _read_only(array: np.ndarray) -> np.ndarray:
    """A read-only view of ``array`` (the caller's own handle — and its
    write flag — is never touched)."""
    view = array.view()
    view.setflags(write=False)
    return view


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``[arange(s, s + c) for s, c in zip(starts, counts)]``
    without a Python loop (the standard cumsum run-expansion trick)."""
    nonzero = counts > 0
    if not nonzero.all():
        starts = starts[nonzero]
        counts = counts[nonzero]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    steps = np.ones(total, dtype=np.int64)
    steps[0] = starts[0]
    run_starts = np.cumsum(counts[:-1])
    steps[run_starts] = starts[1:] - (starts[:-1] + counts[:-1]) + 1
    return np.cumsum(steps)


class FrozenTSIndex:
    """An immutable, array-backed TS-Index answering the read-only query
    surface (``search`` / ``knn`` / ``exists`` / ``search_batch``).

    Create one with :meth:`TSIndex.freeze()
    <repro.core.tsindex.TSIndex.freeze>` (or the :meth:`build`
    convenience); convert back with :meth:`thaw` when the tree must grow
    again.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import TSIndex
    >>> rng = np.random.default_rng(7)
    >>> series = np.cumsum(rng.normal(size=2000))
    >>> index = TSIndex.build(series, length=50, normalization="none")
    >>> frozen = index.freeze()
    >>> result = frozen.search(series[100:150], epsilon=0.5)
    >>> 100 in result.positions
    True
    """

    method_name = "frozen"

    #: Native kernels the query planner may call directly (the whole
    #: read-only surface, including the batched traversal).
    capabilities = frozenset(
        {
            CAP_SEARCH,
            CAP_KNN,
            CAP_EXISTS,
            CAP_COUNT,
            CAP_SEARCH_BATCH,
            CAP_VARLENGTH,
            CAP_VERIFICATION,
        }
    )

    __slots__ = (
        "_source",
        "_params",
        "_build_stats",
        "_freeze_seconds",
        "_uppers",
        "_lowers",
        "_kinds",
        "_children_offsets",
        "_children",
        "_leaf_offsets",
        "_positions",
        "_bfs_layout",
        "_uppers_t",
        "_lowers_t",
    )

    def __init__(
        self,
        source: WindowSource,
        params: TSIndexParams,
        build_stats: BuildStats,
        arrays: dict,
        *,
        freeze_seconds: float = 0.0,
    ):
        self._source = source
        self._params = params
        self._build_stats = build_stats
        self._freeze_seconds = float(freeze_seconds)

        if "uppers_t" in arrays:
            # Timestamp-major input (raw archives): adopt the matrices
            # as-is — for a contiguous float64 memmap this is zero-copy,
            # which is what makes mmap cold starts O(1) in the envelope
            # size. The row-major handles below are transposed views.
            uppers_t = np.ascontiguousarray(
                arrays["uppers_t"], dtype=FLOAT_DTYPE
            )
            lowers_t = np.ascontiguousarray(
                arrays["lowers_t"], dtype=FLOAT_DTYPE
            )
            uppers = uppers_t.T
            lowers = lowers_t.T
        else:
            uppers_t = lowers_t = None
            uppers = np.ascontiguousarray(arrays["uppers"], dtype=FLOAT_DTYPE)
            lowers = np.ascontiguousarray(arrays["lowers"], dtype=FLOAT_DTYPE)
        kinds = np.ascontiguousarray(arrays["kinds"], dtype=np.int8)
        children_offsets = np.ascontiguousarray(
            arrays["children_offsets"], dtype=np.int64
        )
        children = np.ascontiguousarray(arrays["children"], dtype=np.int64)
        leaf_offsets = np.ascontiguousarray(
            arrays["leaf_offsets"], dtype=np.int64
        )
        positions = np.ascontiguousarray(
            arrays["positions"], dtype=POSITION_DTYPE
        )

        n = kinds.size
        length = source.length
        if uppers.shape != (n, length) or lowers.shape != (n, length):
            raise InvalidParameterError(
                f"envelope matrices must be ({n}, {length}), got "
                f"{uppers.shape} and {lowers.shape}"
            )
        if children_offsets.shape != (n + 1,):
            raise InvalidParameterError(
                f"children_offsets must have {n + 1} entries, got "
                f"{children_offsets.size}"
            )
        if int(children_offsets[-1]) != children.size:
            raise InvalidParameterError(
                "children_offsets[-1] must equal len(children), got "
                f"{int(children_offsets[-1])} vs {children.size}"
            )
        if leaf_offsets.shape != (n + 1,):
            raise InvalidParameterError(
                f"leaf_offsets must have {n + 1} entries, got "
                f"{leaf_offsets.size}"
            )
        if int(leaf_offsets[-1]) != positions.size:
            raise InvalidParameterError(
                "leaf_offsets[-1] must equal len(positions), got "
                f"{int(leaf_offsets[-1])} vs {positions.size}"
            )
        # Content checks: a corrupted or hand-built archive must fail
        # loudly here, not return silently wrong answers later (negative
        # ids, for instance, would wrap around under fancy indexing).
        if children.size and (
            int(children.min()) < 1 or int(children.max()) >= n
        ):
            raise InvalidParameterError(
                f"children ids must lie in [1, {n}), got range "
                f"[{int(children.min())}, {int(children.max())}]"
            )
        for name, offsets in (
            ("children_offsets", children_offsets),
            ("leaf_offsets", leaf_offsets),
        ):
            if offsets.size and (
                int(offsets[0]) != 0 or np.any(np.diff(offsets) < 0)
            ):
                raise InvalidParameterError(
                    f"{name} must start at 0 and be non-decreasing"
                )
        if positions.size and (
            int(positions.min()) < 0 or int(positions.max()) >= source.count
        ):
            raise InvalidParameterError(
                f"positions must lie in [0, {source.count}), got range "
                f"[{int(positions.min())}, {int(positions.max())}]"
            )

        # The whole point of freezing is immutability; every stored
        # handle is a read-only view, so accidental writes are loud —
        # without ever flipping the write flag on caller-owned arrays.
        self._kinds = _read_only(kinds)
        self._children_offsets = _read_only(children_offsets)
        self._children = _read_only(children)
        self._leaf_offsets = _read_only(leaf_offsets)
        self._positions = _read_only(positions)
        # The envelopes are stored timestamp-major: the pruning kernels
        # consume columns (timestamps) a block at a time, and on a
        # row-major layout a column block of every node touches the
        # same cache lines as the full matrix, so blocked early
        # abandoning would save ALU work but no memory traffic. The
        # contiguous ``(l, n)`` matrices make each block a contiguous
        # slab; the row-major ``(n, l)`` form (serialization, thaw,
        # per-node reads) is exposed as their transposed views — one
        # resident copy of the envelopes, not two.
        if uppers_t is None:
            uppers_t = np.ascontiguousarray(uppers.T)
            lowers_t = np.ascontiguousarray(lowers.T)
        self._uppers_t = _read_only(uppers_t)
        self._lowers_t = _read_only(lowers_t)
        self._uppers = self._uppers_t.T
        self._lowers = self._lowers_t.T
        # In the canonical BFS layout every node except the root is the
        # child of exactly one earlier node, appended in visit order, so
        # the adjacency values are just 1..n-1 and each node's children
        # (and each traversal frontier) occupy *contiguous* id ranges.
        # That unlocks zero-copy envelope slices for dense frontiers;
        # foreign layouts fall back to gathers.
        self._bfs_layout = bool(
            n == 0 or np.array_equal(children, np.arange(1, n))
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(
        cls,
        source: WindowSource,
        root: _Node | None,
        params: TSIndexParams,
        build_stats: BuildStats,
    ) -> "FrozenTSIndex":
        """Flatten a dynamic ``_Node`` tree (BFS order, root = id 0)."""
        started = time.perf_counter()
        length = source.length
        if root is None:
            arrays = {
                "uppers": np.empty((0, length), dtype=FLOAT_DTYPE),
                "lowers": np.empty((0, length), dtype=FLOAT_DTYPE),
                "kinds": np.empty(0, dtype=np.int8),
                "children_offsets": np.zeros(1, dtype=np.int64),
                "children": np.empty(0, dtype=np.int64),
                "leaf_offsets": np.zeros(1, dtype=np.int64),
                "positions": np.empty(0, dtype=POSITION_DTYPE),
            }
            return cls(source, params, build_stats, arrays)

        order = [root]
        head = 0
        while head < len(order):
            node = order[head]
            head += 1
            if not node.is_leaf:
                order.extend(node.children)

        n = len(order)
        ids = {id(node): i for i, node in enumerate(order)}
        uppers = np.empty((n, length), dtype=FLOAT_DTYPE)
        lowers = np.empty((n, length), dtype=FLOAT_DTYPE)
        kinds = np.zeros(n, dtype=np.int8)
        child_counts = np.zeros(n, dtype=np.int64)
        leaf_counts = np.zeros(n, dtype=np.int64)
        for i, node in enumerate(order):
            uppers[i] = node.mbts.upper
            lowers[i] = node.mbts.lower
            if node.is_leaf:
                kinds[i] = 1
                leaf_counts[i] = len(node.positions)
            else:
                child_counts[i] = len(node.children)

        children_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(child_counts, out=children_offsets[1:])
        leaf_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(leaf_counts, out=leaf_offsets[1:])

        children = np.empty(int(children_offsets[-1]), dtype=np.int64)
        positions = np.empty(int(leaf_offsets[-1]), dtype=POSITION_DTYPE)
        for i, node in enumerate(order):
            if node.is_leaf:
                positions[leaf_offsets[i]:leaf_offsets[i + 1]] = node.positions
            else:
                children[children_offsets[i]:children_offsets[i + 1]] = [
                    ids[id(child)] for child in node.children
                ]

        arrays = {
            "uppers": uppers,
            "lowers": lowers,
            "kinds": kinds,
            "children_offsets": children_offsets,
            "children": children,
            "leaf_offsets": leaf_offsets,
            "positions": positions,
        }
        return cls(
            source,
            params,
            build_stats,
            arrays,
            freeze_seconds=time.perf_counter() - started,
        )

    @classmethod
    def from_arrays(
        cls,
        source: WindowSource,
        params: TSIndexParams,
        build_stats: BuildStats,
        arrays: dict,
    ) -> "FrozenTSIndex":
        """Wrap previously flattened arrays (the persistence fast path:
        loading a frozen archive is array reads, no re-insertion)."""
        return cls(source, params, build_stats, arrays)

    @classmethod
    def build(
        cls,
        series: npt.ArrayLike,
        length: int,
        *,
        normalization: Normalization | str = Normalization.GLOBAL,
        params: TSIndexParams | None = None,
    ) -> "FrozenTSIndex":
        """Build a dynamic TS-Index and freeze it in one call."""
        from .tsindex import TSIndex

        return TSIndex.build(
            series, length, normalization=normalization, params=params
        ).freeze()

    def thaw(self) -> TSIndex:
        """Reconstruct a dynamic :class:`~repro.core.tsindex.TSIndex`
        (for further insertion; queries on the result match exactly)."""
        from .mbts import MBTS
        from .tsindex import TSIndex, _Node

        n = self.node_count
        if n == 0:
            return TSIndex._from_prebuilt_root(
                self._source,
                None,
                self._params,
                dataclasses.replace(self._build_stats),
            )
        nodes: list[_Node] = []
        for i in range(n):
            mbts = MBTS(self._uppers[i], self._lowers[i])
            if self._kinds[i] == 1:
                start, stop = self._leaf_offsets[i], self._leaf_offsets[i + 1]
                nodes.append(
                    _Node(mbts, positions=self._positions[start:stop].tolist())
                )
            else:
                nodes.append(_Node(mbts, children=[]))
        for i in range(n):
            if self._kinds[i] == 0:
                start, stop = (
                    self._children_offsets[i],
                    self._children_offsets[i + 1],
                )
                nodes[i].children = [
                    nodes[j] for j in self._children[start:stop].tolist()
                ]
        return TSIndex._from_prebuilt_root(
            self._source,
            nodes[0],
            self._params,
            dataclasses.replace(self._build_stats),
        )

    def arrays(self) -> dict:
        """The flat arrays (read-only views; see :data:`ARRAY_FIELDS`)."""
        return {
            "uppers": self._uppers,
            "lowers": self._lowers,
            "kinds": self._kinds,
            "children_offsets": self._children_offsets,
            "children": self._children,
            "leaf_offsets": self._leaf_offsets,
            "positions": self._positions,
        }

    def raw_arrays(self) -> dict:
        """The flat arrays with the envelopes in their resident
        timestamp-major layout (see :data:`RAW_ARRAY_FIELDS`) — the
        zero-copy serialization form: no transposes on save, and
        :meth:`from_arrays` adopts them (memmaps included) without
        copying on load."""
        return {
            "uppers_t": self._uppers_t,
            "lowers_t": self._lowers_t,
            "kinds": self._kinds,
            "children_offsets": self._children_offsets,
            "children": self._children,
            "leaf_offsets": self._leaf_offsets,
            "positions": self._positions,
        }

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def source(self) -> WindowSource:
        """The window source this index was built over."""
        return self._source

    @property
    def params(self) -> TSIndexParams:
        """Construction parameters of the tree that was frozen."""
        return self._params

    @property
    def build_stats(self) -> BuildStats:
        """Build counters carried over from the dynamic tree."""
        return self._build_stats

    @property
    def freeze_seconds(self) -> float:
        """Wall-clock cost of the freeze itself (0.0 when loaded)."""
        return self._freeze_seconds

    @property
    def length(self) -> int:
        """Indexed window length ``l``."""
        return self._source.length

    @property
    def size(self) -> int:
        """Number of indexed windows."""
        return self._source.count

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        return int(self._kinds.size)

    @property
    def leaf_count(self) -> int:
        """Number of leaf nodes."""
        return int(np.count_nonzero(self._kinds))

    @property
    def height(self) -> int:
        """Tree height in levels (a lone leaf root has height 1)."""
        if self.node_count == 0:
            return 0
        height = 1
        node = 0
        while self._kinds[node] == 0:
            node = int(self._children[self._children_offsets[node]])
            height += 1
        return height

    def __repr__(self) -> str:
        return (
            f"FrozenTSIndex(windows={self.size}, length={self.length}, "
            f"height={self.height}, nodes={self.node_count})"
        )

    # ------------------------------------------------------------------
    # Vectorized primitives over the flat arrays
    # ------------------------------------------------------------------
    def _node_bound(self, query: np.ndarray, node: int) -> float:
        """Exact (clamped) Eq. 2 bound of ``query`` against one node.

        Evaluated over the first ``query.size`` timestamps, so a
        shorter (prefix) query bounds against the envelope prefix — for
        full-length queries the slice is the whole row.
        """
        return max(
            float(
                np.max(
                    np.maximum(
                        query - self._uppers[node, : query.size],
                        self._lowers[node, : query.size] - query,
                    )
                )
            ),
            0.0,
        )

    @staticmethod
    def _prune_keep(
        query: np.ndarray,
        upper_t: np.ndarray,
        lower_t: np.ndarray,
        threshold: float,
    ) -> np.ndarray:
        """Boolean keep mask (exact Eq. 2 bound ``<= threshold``) over
        the columns of timestamp-major envelope matrices, via blocked
        early abandoning.

        ``upper_t`` / ``lower_t`` are ``(l, k)`` — one *row* per
        timestamp. Timestamps are consumed :data:`_PRUNE_BLOCK` rows at
        a time (contiguous memory) and nodes whose running maximum
        already exceeds ``threshold`` are compacted away between
        blocks, so pruned nodes — typically almost all of them — cost
        one block of traffic instead of all ``l`` timestamps. The
        surviving set is exactly the full computation's (partial maxima
        only ever grow).
        """
        total = upper_t.shape[1]
        keep = np.zeros(total, dtype=bool)
        if total == 0:
            return keep
        length = upper_t.shape[0]
        alive = np.arange(total)
        remaining_upper, remaining_lower = upper_t, lower_t
        consumed = 0
        while consumed < length and alive.size:
            width = min(_PRUNE_BLOCK, length - consumed)
            query_block = query[consumed:consumed + width, None]
            diffs = np.maximum(
                query_block - remaining_upper[:width],
                remaining_lower[:width] - query_block,
            ).max(axis=0)
            survive = diffs <= threshold
            consumed += width
            if survive.all():
                remaining_upper = remaining_upper[width:]
                remaining_lower = remaining_lower[width:]
            else:
                alive = alive[survive]
                remaining_upper = remaining_upper[width:, survive]
                remaining_lower = remaining_lower[width:, survive]
        keep[alive] = True
        return keep

    def _frontier_keep(
        self, query: np.ndarray, ids: np.ndarray, epsilon: float
    ) -> np.ndarray:
        """Keep mask for a whole (ascending) frontier of node ids.

        Under the BFS layout a dense frontier covers most of a
        contiguous id span, so the envelope columns come in as zero-copy
        *views* of the timestamp-major matrices (the handful of gap
        columns are evaluated too, harmlessly); sparse frontiers gather
        only their own columns.

        The bound runs over the first ``query.size`` timestamps — the
        timestamp-major layout makes the envelope *prefix* a zero-copy
        leading-row slice, which is what lets a shorter (prefix) query
        reuse this kernel (and its blocked early abandoning) unchanged.
        """
        prefix = query.size
        if self._bfs_layout and ids.size > 1:
            lo = int(ids[0])
            hi = int(ids[-1]) + 1
            if 2 * ids.size >= hi - lo:
                span_keep = self._prune_keep(
                    query,
                    self._uppers_t[:prefix, lo:hi],
                    self._lowers_t[:prefix, lo:hi],
                    epsilon,
                )
                return span_keep[ids - lo]
        upper = self._uppers_t[:prefix, ids]
        lower = self._lowers_t[:prefix, ids]
        if ids.size <= _PRUNE_BLOCK:
            # Tiny sparse frontiers: one unblocked evaluation beats the
            # blocked kernel's per-block dispatch overhead.
            column = query[:, None]
            return (
                np.maximum(column - upper, lower - column).max(axis=0)
                <= epsilon
            )
        return self._prune_keep(query, upper, lower, epsilon)

    def _pair_keep(
        self,
        queries_t: np.ndarray,
        q_idx: np.ndarray,
        node_idx: np.ndarray,
        epsilon: float,
    ) -> np.ndarray:
        """Keep mask for ``(query, node)`` pairs — the batched frontier
        bound, with the same blocked early-abandoning as
        :meth:`_prune_keep`. ``queries_t`` is the ``(l, q)``
        timestamp-major query matrix; pairs are outer-chunked so gather
        temporaries stay bounded."""
        total = q_idx.size
        keep = np.empty(total, dtype=bool)
        length = self.length
        chunk_pairs = max(1, _BOUND_CHUNK // max(1, _PRUNE_BLOCK))
        for start, stop in iter_chunks(total, chunk_pairs):
            alive_q = q_idx[start:stop]
            alive_n = node_idx[start:stop]
            alive = np.arange(alive_q.size)
            consumed = 0
            chunk_keep = np.zeros(alive_q.size, dtype=bool)
            while consumed < length and alive.size:
                rows = slice(consumed, consumed + _PRUNE_BLOCK)
                query_block = queries_t[rows, alive_q]
                upper_block = self._uppers_t[rows, alive_n]
                lower_block = self._lowers_t[rows, alive_n]
                diffs = np.maximum(
                    query_block - upper_block, lower_block - query_block
                ).max(axis=0)
                survive = diffs <= epsilon
                consumed = min(consumed + _PRUNE_BLOCK, length)
                if not survive.all():
                    alive = alive[survive]
                    alive_q = alive_q[survive]
                    alive_n = alive_n[survive]
            chunk_keep[alive] = True
            keep[start:stop] = chunk_keep
        return keep

    def _children_of(self, ids: np.ndarray) -> np.ndarray:
        """Concatenated child ids of every (internal) node in ``ids``."""
        starts = self._children_offsets[ids]
        counts = self._children_offsets[ids + 1] - starts
        return self._children[_concat_ranges(starts, counts)]

    def _leaf_positions(self, ids: np.ndarray) -> np.ndarray:
        """Concatenated stored positions of every leaf in ``ids``."""
        starts = self._leaf_offsets[ids]
        counts = self._leaf_offsets[ids + 1] - starts
        return self._positions[_concat_ranges(starts, counts)]

    def _leaf_span(self, node: int) -> np.ndarray:
        return self._positions[
            self._leaf_offsets[node]:self._leaf_offsets[node + 1]
        ]

    def _child_block(
        self, node: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(child_ids, upper_t, lower_t)`` for one internal node —
        timestamp-major ``(l, fanout)`` envelope matrices, zero-copy
        views under the BFS layout."""
        start = self._children_offsets[node]
        stop = self._children_offsets[node + 1]
        child_ids = self._children[start:stop]
        if self._bfs_layout and child_ids.size:
            lo = int(child_ids[0])
            hi = lo + child_ids.size
            return child_ids, self._uppers_t[:, lo:hi], self._lowers_t[:, lo:hi]
        return (
            child_ids,
            self._uppers_t[:, child_ids],
            self._lowers_t[:, child_ids],
        )

    # ------------------------------------------------------------------
    # Threshold search (Algorithm 1, level-synchronous)
    # ------------------------------------------------------------------
    def search(
        self,
        query: npt.ArrayLike,
        epsilon: float,
        *,
        verification: str = "bulk",
    ) -> SearchResult:
        """All twin subsequences of ``query`` within Chebyshev ``ε``.

        Same contract (and byte-identical results, including structural
        counters) as :meth:`TSIndex.search
        <repro.core.tsindex.TSIndex.search>`, but the traversal is
        level-synchronous: every level bounds the whole surviving
        frontier against the query in one broadcast reduction instead of
        one Python call per node.
        """
        if is_prefix_query(query, self._source.length):
            return self.search_varlength(
                query, epsilon, verification=verification
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = self._prepare_query(query)
        stats = QueryStats()
        candidates = self._collect_candidates(query, epsilon, stats)
        return verify(
            self._source, query, candidates, epsilon,
            mode=verification, stats=stats,
        )

    def count(self, query: npt.ArrayLike, epsilon: float) -> int:
        """Number of twins (convenience wrapper over :meth:`search`;
        shorter queries count their prefix twins, tail included)."""
        return len(self.search(query, epsilon))

    def search_varlength(
        self,
        query: npt.ArrayLike,
        epsilon: float,
        *,
        verification: str = "bulk",
    ) -> SearchResult:
        """All twins of a query of length ``m <= l``, tail included.

        Same contract as :meth:`TSIndex.search_varlength
        <repro.core.tsindex.TSIndex.search_varlength>`, executed
        level-synchronously: the whole frontier bounds against the
        zero-copy ``(m, k)`` leading-row spans of the timestamp-major
        envelope matrices, reusing the blocked early-abandoning pruning
        kernel unchanged. ``m == l`` delegates to :meth:`search`.
        """
        return prefix_search_with_tail(
            self, query, epsilon, verification=verification
        )

    def collect_varlength_candidates(
        self, query: np.ndarray, epsilon: float, stats: QueryStats
    ) -> np.ndarray:
        """Unverified candidate positions for a (prepared) prefix query
        — the fan-out hook composite planes call per shard/segment.

        The frontier kernels already evaluate bounds over the query's
        own length, so this is the fixed-length collection verbatim.
        """
        return self._collect_candidates(query, epsilon, stats)

    def _collect_candidates(
        self, query: np.ndarray, epsilon: float, stats: QueryStats
    ) -> np.ndarray:
        if self.node_count == 0:
            return np.empty(0, dtype=POSITION_DTYPE)

        stats.nodes_visited += 1
        if self._node_bound(query, 0) > epsilon:
            stats.nodes_pruned += 1
            return np.empty(0, dtype=POSITION_DTYPE)

        collected: list[np.ndarray] = []
        frontier = np.zeros(1, dtype=np.int64)
        while frontier.size:
            leaf_mask = self._kinds[frontier] == 1
            leaves = frontier[leaf_mask]
            if leaves.size:
                stats.leaves_accessed += int(leaves.size)
                collected.append(self._leaf_positions(leaves))
            internal = frontier[~leaf_mask]
            if internal.size == 0:
                break
            children = self._children_of(internal)
            keep = self._frontier_keep(query, children, epsilon)
            stats.nodes_visited += int(children.size)
            stats.nodes_pruned += int(children.size - np.count_nonzero(keep))
            frontier = children[keep]

        if not collected:
            return np.empty(0, dtype=POSITION_DTYPE)
        return np.concatenate(collected)

    # ------------------------------------------------------------------
    # Batched search: many queries share one traversal
    # ------------------------------------------------------------------
    def search_batch(
        self,
        queries: Iterable[npt.ArrayLike],
        epsilon: float,
        *,
        verification: str = "bulk",
    ) -> BatchResult:
        """Run every query of ``queries`` at ``epsilon`` in one pass.

        The traversal keeps a frontier of alive ``(query, node)`` pairs
        and bounds all of them per level with one broadcast reduction —
        the ``(q, frontier, l)`` evaluation — so the per-level NumPy
        dispatch cost is shared by the whole workload instead of paid
        per query. Each returned :class:`SearchResult` (positions,
        distances *and* structural counters) is exactly what
        :meth:`search` returns for that query alone. Workloads holding
        any query shorter than ``l`` dispatch to the pipeline's
        per-query loop (the shared pair traversal assumes one length).
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        queries = list(queries)
        if any(
            is_prefix_query(query, self._source.length)
            for query in queries
        ):
            from ..query import QuerySpec, execute

            return execute(
                self,
                QuerySpec(
                    query=queries,
                    mode="batch",
                    epsilon=epsilon,
                    options={"verification": verification},
                ),
            )
        prepared = [self._prepare_query(query) for query in queries]
        nq = len(prepared)
        candidates: list[list[np.ndarray]] = [[] for _ in range(nq)]
        visited = np.zeros(nq, dtype=np.int64)
        pruned = np.zeros(nq, dtype=np.int64)
        leaves_seen = np.zeros(nq, dtype=np.int64)

        if nq and self.node_count:
            matrix = np.stack(prepared)
            matrix_t = np.ascontiguousarray(matrix.T)
            visited += 1
            root_bounds = np.maximum(
                matrix - self._uppers[0], self._lowers[0] - matrix
            ).max(axis=1)
            dead = root_bounds > epsilon
            pruned += dead
            alive = np.flatnonzero(~dead).astype(np.int64)
            leaf_q: list[np.ndarray] = []
            leaf_nodes: list[np.ndarray] = []
            q_idx = alive
            node_idx = np.zeros(alive.size, dtype=np.int64)
            while q_idx.size:
                leaf_mask = self._kinds[node_idx] == 1
                if leaf_mask.any():
                    leaf_q.append(q_idx[leaf_mask])
                    leaf_nodes.append(node_idx[leaf_mask])
                internal = ~leaf_mask
                q_idx = q_idx[internal]
                node_idx = node_idx[internal]
                if q_idx.size == 0:
                    break
                starts = self._children_offsets[node_idx]
                counts = self._children_offsets[node_idx + 1] - starts
                child_nodes = self._children[_concat_ranges(starts, counts)]
                child_q = np.repeat(q_idx, counts)
                # Two evaluation shapes for the level's (query, node)
                # pairs: small pair sets amortize best through one
                # gathered pair kernel; large ones (dense frontiers)
                # are cheaper per query over contiguous envelope spans.
                if child_q.size <= _PAIR_KERNEL_LIMIT:
                    keep = self._pair_keep(
                        matrix_t, child_q, child_nodes, epsilon
                    )
                else:
                    keep = np.empty(child_q.size, dtype=bool)
                    bounds_of = np.searchsorted(
                        child_q, np.arange(nq + 1)
                    )
                    for qi in range(nq):
                        segment = slice(
                            int(bounds_of[qi]), int(bounds_of[qi + 1])
                        )
                        if segment.stop > segment.start:
                            keep[segment] = self._frontier_keep(
                                prepared[qi], child_nodes[segment], epsilon
                            )
                visited += np.bincount(child_q, minlength=nq)
                if not keep.all():
                    pruned += np.bincount(child_q[~keep], minlength=nq)
                    child_q = child_q[keep]
                    child_nodes = child_nodes[keep]
                q_idx, node_idx = child_q, child_nodes

            if leaf_q:
                all_q = np.concatenate(leaf_q)
                all_leaves = np.concatenate(leaf_nodes)
                leaves_seen += np.bincount(all_q, minlength=nq)
                grouping = np.argsort(all_q, kind="stable")
                all_q = all_q[grouping]
                all_leaves = all_leaves[grouping]
                splits = np.searchsorted(all_q, np.arange(nq + 1))
                for qi in range(nq):
                    chunk = all_leaves[splits[qi]:splits[qi + 1]]
                    if chunk.size:
                        candidates[qi].append(self._leaf_positions(chunk))

        per_query_stats = [
            QueryStats(
                nodes_visited=int(visited[qi]),
                nodes_pruned=int(pruned[qi]),
                leaves_accessed=int(leaves_seen[qi]),
            )
            for qi in range(nq)
        ]
        per_query_candidates = [
            np.concatenate(candidates[qi])
            if candidates[qi]
            else np.empty(0, dtype=POSITION_DTYPE)
            for qi in range(nq)
        ]
        if verification == "bulk":
            results = self._verify_batch(
                prepared, per_query_candidates, epsilon, per_query_stats
            )
        else:
            results = [
                verify(
                    self._source, prepared[qi], per_query_candidates[qi],
                    epsilon, mode=verification, stats=per_query_stats[qi],
                )
                for qi in range(nq)
            ]
        from ..query.merge import batch_result

        return batch_result(results, epsilon)

    def _verify_batch(
        self,
        queries: list[np.ndarray],
        candidates: list[np.ndarray],
        epsilon: float,
        stats_list: list[QueryStats],
    ) -> list[SearchResult]:
        """Exact verification of every query's candidates in one sweep.

        All ``(query, candidate)`` pairs are verified together with a
        handful of chunked reductions instead of one :func:`verify` call
        per query; results (and counters) are exactly those of the
        per-query ``"bulk"`` verifier.
        """
        nq = len(candidates)
        counts = np.asarray([c.size for c in candidates], dtype=np.int64)
        total = int(counts.sum())
        if total == 0:
            return [SearchResult.empty(stats) for stats in stats_list]

        all_positions = np.concatenate(candidates)
        all_q = np.repeat(np.arange(nq, dtype=np.int64), counts)
        # Sort by (query, position) so each query's segment comes out
        # position-ascending, matching verify_positions' output order.
        order = np.lexsort((all_positions, all_q))
        all_positions = all_positions[order]
        all_q = all_q[order]

        matrix = np.stack(queries)
        profile = np.empty(total, dtype=FLOAT_DTYPE)
        rows = max(1, _BOUND_CHUNK // max(1, self.length))
        for start, stop in iter_chunks(total, rows):
            block = self._source.windows(all_positions[start:stop])
            np.abs(block - matrix[all_q[start:stop]], out=block)
            block.max(axis=1, out=profile[start:stop])
        keep = profile <= epsilon

        boundaries = np.searchsorted(all_q, np.arange(nq + 1))
        results: list[SearchResult] = []
        for qi, stats in enumerate(stats_list):
            segment = slice(int(boundaries[qi]), int(boundaries[qi + 1]))
            segment_keep = keep[segment]
            stats.candidates += int(counts[qi])
            stats.verified += int(counts[qi])
            positions = all_positions[segment][segment_keep]
            stats.matches += int(positions.size)
            results.append(
                SearchResult(
                    positions=positions,
                    distances=profile[segment][segment_keep],
                    stats=stats,
                )
            )
        return results

    # ------------------------------------------------------------------
    # k-NN (best-first over the flat arrays)
    # ------------------------------------------------------------------
    def knn(
        self, query: npt.ArrayLike, k: int, *, exclude: tuple[int, int] | None = None
    ) -> SearchResult:
        """The ``k`` windows nearest to ``query`` in Chebyshev distance.

        Best-first over the flat arrays; one vectorized bound reduction
        per expanded node instead of one call per child. The answer —
        ranked by ``(distance, position)`` — is exactly
        :meth:`TSIndex.knn <repro.core.tsindex.TSIndex.knn>`'s. Queries
        shorter than ``l`` dispatch to the pipeline's exact prefix scan.
        """
        if is_prefix_query(query, self._source.length):
            from ..query import QuerySpec, execute

            return execute(
                self,
                QuerySpec(query=query, mode="knn", k=k, exclude=exclude),
            )
        k = check_positive_int(k, name="k")
        query = self._prepare_query(query)
        if exclude is not None:
            exclude_start, exclude_stop = int(exclude[0]), int(exclude[1])
            if exclude_start > exclude_stop:
                raise InvalidParameterError(
                    f"exclude range must satisfy start <= stop, got {exclude}"
                )
        stats = QueryStats()
        if self.node_count == 0:
            return SearchResult.empty(stats)

        frontier: list[tuple[float, int]] = [(self._node_bound(query, 0), 0)]
        # Max-heap of the best k ((distance, position) both negated, so
        # ties at the k-th distance resolve to the smallest positions).
        best: list[tuple[float, int]] = []

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while frontier:
            bound, node = heapq.heappop(frontier)
            if bound > kth():
                stats.nodes_pruned += 1
                continue
            stats.nodes_visited += 1
            if self._kinds[node] == 1:
                stats.leaves_accessed += 1
                positions = self._leaf_span(node)
                if exclude is not None:
                    keep = (positions < exclude_start) | (
                        positions >= exclude_stop
                    )
                    positions = positions[keep]
                    if positions.size == 0:
                        continue
                block = self._source.windows(positions)
                profile = np.max(np.abs(block - query), axis=1)
                stats.candidates += positions.size
                stats.verified += positions.size
                for distance, position in zip(
                    profile.tolist(), positions.tolist()
                ):
                    entry = (-float(distance), -int(position))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                child_ids, upper, lower = self._child_block(node)
                threshold = kth()
                if np.isinf(threshold):
                    survivors = np.arange(child_ids.size)
                else:
                    survivors = np.flatnonzero(
                        self._prune_keep(query, upper, lower, threshold)
                    )
                stats.nodes_pruned += int(child_ids.size - survivors.size)
                if survivors.size == 0:
                    continue
                bounds = np.maximum(
                    np.maximum(
                        query[:, None] - upper[:, survivors],
                        lower[:, survivors] - query[:, None],
                    ).max(axis=0),
                    0.0,
                )
                for child_bound, child in zip(
                    bounds.tolist(), child_ids[survivors].tolist()
                ):
                    heapq.heappush(frontier, (child_bound, child))

        ranked = sorted(
            (-negated, -negated_position)
            for negated, negated_position in best
        )
        stats.matches = len(ranked)
        return SearchResult(
            positions=np.asarray([p for _, p in ranked], dtype=POSITION_DTYPE),
            distances=np.asarray([d for d, _ in ranked], dtype=FLOAT_DTYPE),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Existence (early-exit decision procedure)
    # ------------------------------------------------------------------
    def exists(
        self, query: npt.ArrayLike, epsilon: float, *, stats: QueryStats | None = None
    ) -> bool:
        """Whether *any* twin exists, with early exit.

        Pass a :class:`QueryStats` to receive the traversal counters;
        they match the dynamic tree's :meth:`TSIndex.exists
        <repro.core.tsindex.TSIndex.exists>` exactly (same visit order).
        Queries shorter than ``l`` derive from :meth:`search_varlength`
        (its counters land in ``stats`` too).
        """
        if is_prefix_query(query, self._source.length):
            result = self.search_varlength(query, epsilon)
            merge_exists_stats(stats, result)
            return len(result) > 0
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = self._prepare_query(query)
        stats = stats if stats is not None else QueryStats()
        if self.node_count == 0:
            return False

        stats.nodes_visited += 1
        if self._node_bound(query, 0) > epsilon:
            stats.nodes_pruned += 1
            return False
        if self._kinds[0] == 1:
            return self._leaf_has_twin(0, query, epsilon, stats)

        stack = [0]
        while stack:
            node = stack.pop()
            child_ids, upper, lower = self._child_block(node)
            keep = self._prune_keep(query, upper, lower, epsilon)
            stats.nodes_visited += int(child_ids.size)
            for survives, child in zip(keep.tolist(), child_ids.tolist()):
                if not survives:
                    stats.nodes_pruned += 1
                    continue
                if self._kinds[child] == 1:
                    if self._leaf_has_twin(child, query, epsilon, stats):
                        return True
                else:
                    stack.append(child)
        return False

    def _leaf_has_twin(
        self, node: int, query: np.ndarray, epsilon: float, stats: QueryStats
    ) -> bool:
        stats.leaves_accessed += 1
        positions = self._leaf_span(node)
        block = self._source.windows(positions)
        stats.candidates += int(positions.size)
        stats.verified += int(positions.size)
        found = bool(
            np.any(np.max(np.abs(block - query), axis=1) <= epsilon)
        )
        if found:
            stats.matches += 1
        return found

    # ------------------------------------------------------------------
    def _prepare_query(self, query) -> np.ndarray:
        return prepare_values(
            self._source, query, expected=self._source.length
        )


@register_plane(
    "frozen",
    aliases=("frozentsindex",),
    summary="read-optimized flat TS-Index snapshot (vectorized frontier)",
)
def _frozen_plane(source: WindowSource, **kwargs) -> FrozenTSIndex:
    """Registry builder: a TS-Index built then frozen in place."""
    from .tsindex import TSIndex, TSIndexParams

    params = kwargs.pop("params", None)
    if kwargs:
        params = TSIndexParams(**kwargs)
    return TSIndex.from_source(source, params=params).freeze()
