"""Normalization regimes and rolling statistics.

The paper (Section 3.1) considers three ways of preparing values before
twin search, all of which are first-class here:

* ``Normalization.NONE`` — raw values (Figure 7 experiments);
* ``Normalization.GLOBAL`` — z-normalize the entire time series once
  (the default setting of Section 6, Figures 4 and 5);
* ``Normalization.PER_WINDOW`` — z-normalize each extracted subsequence
  independently (Figure 6 experiments; KV-Index is inapplicable here
  because all window means become zero).

Rolling means and standard deviations are computed with cumulative sums
so that per-window normalization costs O(n) preprocessing and O(l) per
window, never O(n·l).
"""

from __future__ import annotations

import enum

import numpy as np
import numpy.typing as npt

from .._util import FLOAT_DTYPE, as_float_array, check_window_length
from ..exceptions import InvalidParameterError

#: Standard deviations below this floor are clamped to 1.0 so that a
#: constant window normalizes to all-zeros instead of dividing by zero.
#: The same convention is used by the UCR suite.
STD_FLOOR = 1e-12


class Normalization(str, enum.Enum):
    """The three value-preparation regimes of Section 3.1."""

    NONE = "none"
    GLOBAL = "global"
    PER_WINDOW = "per_window"

    @classmethod
    def coerce(cls, value: Normalization | str) -> "Normalization":
        """Accept an enum member or its string value ("none", ...)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            valid = ", ".join(member.value for member in cls)
            raise InvalidParameterError(
                f"unknown normalization {value!r}; expected one of: {valid}"
            ) from exc


def znormalize(values: npt.ArrayLike) -> np.ndarray:
    """Z-normalize a full sequence: subtract its mean, divide by its std.

    A (near-)constant sequence maps to all-zeros rather than raising.
    """
    array = as_float_array(values)
    std = float(array.std())
    if std < STD_FLOOR:
        return np.zeros_like(array)
    return (array - array.mean()) / std


def znormalize_window(values: npt.ArrayLike) -> np.ndarray:
    """Alias of :func:`znormalize` for readability at call sites that
    normalize an individual window rather than a whole series."""
    return znormalize(values)


def rolling_mean(values: npt.ArrayLike, length: int) -> np.ndarray:
    """Mean of every ``length``-sized window of ``values``.

    Returns an array of ``len(values) - length + 1`` means, computed via a
    single cumulative sum.
    """
    array = as_float_array(values)
    length = check_window_length(length, array.size)
    csum = np.concatenate(([0.0], np.cumsum(array, dtype=FLOAT_DTYPE)))
    return (csum[length:] - csum[:-length]) / length


#: Minimum window positions per independently-centered block of the
#: rolling-std computation. Each block is centered on its own first
#: value, so the intermediate squares scale with the *local* value
#: range — far better conditioned than one global center on drifting
#: series — while block boundaries at fixed absolute positions keep the
#: result prefix-stable (see below). The effective block size is
#: :func:`std_block_size`.
STD_BLOCK = 256


def std_block_size(length: int) -> int:
    """Block size (in window positions) used by :func:`rolling_std`.

    At least :data:`STD_BLOCK`, but never smaller than the window
    length: each block's value span is ``block + length - 1`` points, so
    growing the block with ``length`` caps the blocked kernel's overlap
    overhead (memory and arithmetic) at 2x the series size regardless
    of ``length``. Deterministic in ``length`` alone, so the blocking —
    and with it prefix-stability — is identical however the series is
    grown.
    """
    return max(STD_BLOCK, int(length))


def rolling_std(values: npt.ArrayLike, length: int, *, floor: float = STD_FLOOR) -> np.ndarray:
    """Standard deviation of every ``length``-sized window of ``values``.

    Uses the cumulative-sum-of-squares identity on *centered* values —
    variance is shift-invariant, and centering keeps the intermediate
    squares small so large baselines (e.g. values around 1e6) do not
    suffer catastrophic cancellation. The computation runs in blocks of
    :func:`std_block_size` window positions, each centered on its own
    first value. That choice serves two masters at once:

    * **conditioning** — drifting series (random walks) stray far from
      any single global center, but within one block + window span the
      local range is small, so the squares stay small;
    * **prefix-stability** — block boundaries sit at fixed *absolute*
      positions and a block's center never changes when readings are
      appended, so ``rolling_std(x[:n], l)`` is bitwise equal to the
      first entries of ``rolling_std(x[:m], l)`` for any ``m > n``
      (cumulative sums are sequential). The live ingestion plane
      (:mod:`repro.live`) relies on this to keep sealed
      per-window-normalized segments byte-identical to a from-scratch
      index over the grown series; centering on the (ever-shifting)
      global mean would perturb every std on each append.

    Standard deviations below ``floor`` are clamped to 1.0, matching
    :data:`STD_FLOOR` semantics so constant windows z-normalize to zero
    vectors.
    """
    array = as_float_array(values)
    length = check_window_length(length, array.size)
    count = array.size - length + 1
    block = std_block_size(length)
    span = block + length - 1  # values feeding one block's windows
    blocks = (count + block - 1) // block
    # One (blocks, span) strided matrix holds every block's value chunk;
    # rows start `block` apart. Padding on the right feeds only the
    # discarded tail of the last row, so its content is irrelevant —
    # zeros keep it deterministic.
    padded = np.zeros((blocks - 1) * block + span, dtype=FLOAT_DTYPE)
    padded[: array.size] = array
    stride = padded.strides[0]
    chunks = np.lib.stride_tricks.as_strided(
        padded, shape=(blocks, span), strides=(block * stride, stride)
    )
    centered = chunks - chunks[:, :1]
    csum = np.zeros((blocks, span + 1), dtype=FLOAT_DTYPE)
    np.cumsum(centered, axis=1, out=csum[:, 1:])
    csum2 = np.zeros_like(csum)
    np.cumsum(centered * centered, axis=1, out=csum2[:, 1:])
    mean = (csum[:, length:] - csum[:, :-length]) / length
    mean_sq = (csum2[:, length:] - csum2[:, :-length]) / length
    variance = np.maximum(mean_sq - mean * mean, 0.0)
    std = np.sqrt(variance).reshape(-1)[:count]
    std[std < floor] = 1.0
    return std


def apply_global(values: npt.ArrayLike) -> np.ndarray:
    """Prepare a series for the ``GLOBAL`` regime (z-normalize once)."""
    return znormalize(values)


def prepare_series(values: npt.ArrayLike, normalization: Normalization | str) -> np.ndarray:
    """Return the value buffer a :class:`~repro.core.windows.WindowSource`
    should slide over under the given regime.

    ``NONE`` and ``PER_WINDOW`` keep raw values (per-window scaling happens
    at extraction time); ``GLOBAL`` normalizes the whole series up front.
    """
    normalization = Normalization.coerce(normalization)
    array = as_float_array(values)
    if normalization is Normalization.GLOBAL:
        return znormalize(array)
    return array
