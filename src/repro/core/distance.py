"""Distance kernels: Chebyshev (L-infinity), Euclidean and general Lp.

The Chebyshev distance is the matching criterion of the whole paper
(Definition 1): two length-``l`` sequences are *twins* w.r.t. ``ε`` when
``max_i |S_i - S'_i| <= ε``. This module provides scalar kernels, early
abandoning variants (Section 3.2), and vectorized batch forms used by the
verification stage of every index.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .._util import as_float_array, check_non_negative
from ..exceptions import InvalidParameterError


def _check_same_length(a: np.ndarray, b: np.ndarray) -> None:
    if a.size != b.size:
        raise InvalidParameterError(
            f"sequences must have equal length, got {a.size} and {b.size}"
        )


def chebyshev_distance(a: npt.ArrayLike, b: npt.ArrayLike) -> float:
    """Chebyshev (L∞) distance: ``max_i |a_i - b_i|`` (Definition 1)."""
    a = as_float_array(a, name="a")
    b = as_float_array(b, name="b")
    _check_same_length(a, b)
    return float(np.max(np.abs(a - b)))


def chebyshev_distance_early_abandon(a: npt.ArrayLike, b: npt.ArrayLike, epsilon: float) -> float:
    """Chebyshev distance with early abandoning at threshold ``epsilon``.

    Returns the exact distance if it is ``<= epsilon``; otherwise returns
    the first per-point difference found to exceed ``epsilon`` (a lower
    bound of the true distance, sufficient to reject the candidate).
    This is the scalar verification kernel of Section 3.2.
    """
    a = as_float_array(a, name="a")
    b = as_float_array(b, name="b")
    _check_same_length(a, b)
    epsilon = check_non_negative(epsilon, name="epsilon")
    best = 0.0
    for x, y in zip(a, b):
        diff = abs(float(x) - float(y))
        if diff > best:
            best = diff
            if best > epsilon:
                return best
    return best


def reorder_by_magnitude(query: npt.ArrayLike) -> np.ndarray:
    """Index permutation sorting query points by decreasing ``|value|``.

    The *reordering early abandoning* optimization of the UCR suite
    (Section 3.2): for z-normalized data, extreme query values are the
    least likely to match, so checking them first abandons sooner.
    """
    query = as_float_array(query, name="query")
    return np.argsort(-np.abs(query), kind="stable")


def chebyshev_distance_reordered(a: npt.ArrayLike, b: npt.ArrayLike, epsilon: float, order: npt.ArrayLike | None = None) -> float:
    """Early-abandoning Chebyshev distance probing points in ``order``.

    ``order`` defaults to :func:`reorder_by_magnitude` of ``a`` (the
    query). Semantics match :func:`chebyshev_distance_early_abandon`.
    """
    a = as_float_array(a, name="a")
    b = as_float_array(b, name="b")
    _check_same_length(a, b)
    epsilon = check_non_negative(epsilon, name="epsilon")
    if order is None:
        order = reorder_by_magnitude(a)
    best = 0.0
    for i in order:
        diff = abs(float(a[i]) - float(b[i]))
        if diff > best:
            best = diff
            if best > epsilon:
                return best
    return best


def euclidean_distance(a: npt.ArrayLike, b: npt.ArrayLike) -> float:
    """Euclidean (L2) distance ``sqrt(Σ (a_i - b_i)^2)``."""
    a = as_float_array(a, name="a")
    b = as_float_array(b, name="b")
    _check_same_length(a, b)
    return float(np.sqrt(np.sum((a - b) ** 2)))


def lp_distance(a: npt.ArrayLike, b: npt.ArrayLike, p: float) -> float:
    """General Lp distance; ``p = inf`` dispatches to Chebyshev."""
    if p == np.inf:
        return chebyshev_distance(a, b)
    if p < 1:
        raise InvalidParameterError(f"p must be >= 1 or inf, got {p}")
    a = as_float_array(a, name="a")
    b = as_float_array(b, name="b")
    _check_same_length(a, b)
    return float(np.sum(np.abs(a - b) ** p) ** (1.0 / p))


def euclidean_threshold_for(epsilon: float, length: int) -> float:
    """The Euclidean radius that loses no Chebyshev twins: ``ε·sqrt(l)``.

    Section 3.1: if ``d∞(S, S') <= ε`` then ``d2(S, S') <= ε·sqrt(l)``.
    Searching with this radius guarantees zero false negatives but (as the
    intro experiment shows) admits orders of magnitude more candidates.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    if length < 1:
        raise InvalidParameterError(f"length must be >= 1, got {length}")
    return epsilon * float(np.sqrt(length))


def chebyshev_profile(windows: npt.ArrayLike, query: npt.ArrayLike) -> np.ndarray:
    """Chebyshev distance from ``query`` to every row of ``windows``.

    ``windows`` is a ``(k, l)`` matrix; returns a length-``k`` vector.
    """
    windows = np.asarray(windows, dtype=float)
    query = as_float_array(query, name="query")
    if windows.ndim != 2 or windows.shape[1] != query.size:
        raise InvalidParameterError(
            f"windows must be (k, {query.size}), got {windows.shape}"
        )
    if windows.shape[0] == 0:
        return np.empty(0, dtype=float)
    return np.max(np.abs(windows - query), axis=1)


def chebyshev_matches(windows: npt.ArrayLike, query: npt.ArrayLike, epsilon: float) -> np.ndarray:
    """Boolean mask of rows of ``windows`` that are twins of ``query``."""
    epsilon = check_non_negative(epsilon, name="epsilon")
    return chebyshev_profile(windows, query) <= epsilon


def pairwise_chebyshev(windows: npt.ArrayLike) -> np.ndarray:
    """Dense ``(k, k)`` Chebyshev distance matrix between rows.

    Used by TS-Index leaf splits to pick the two farthest entries as
    seeds (Section 5.2). Quadratic in ``k``; callers keep ``k`` at node
    capacity (tens of entries).
    """
    windows = np.asarray(windows, dtype=float)
    if windows.ndim != 2:
        raise InvalidParameterError(
            f"windows must be a 2-D matrix, got shape {windows.shape}"
        )
    k = windows.shape[0]
    if k == 0:
        return np.zeros((0, 0), dtype=float)
    return np.max(np.abs(windows[:, None, :] - windows[None, :, :]), axis=2)
