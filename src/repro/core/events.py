"""Grouping overlapping twin matches into distinct events.

A twin query against a series almost always returns *runs* of adjacent
positions — every alignment of the query against one underlying event
matches. Downstream users (the EEG, seismic and ECG examples here; any
real monitoring application) want the events, not the alignments.
``group_matches`` collapses a :class:`SearchResult` into event groups:
maximal clusters of matches separated by less than ``min_gap``
positions, each summarized by its best-aligned (smallest-distance)
member.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .._util import check_positive_int
from .stats import SearchResult


@dataclasses.dataclass(frozen=True)
class MatchGroup:
    """One event: a maximal cluster of nearby twin matches."""

    #: first and last matching start positions in the cluster.
    first_position: int
    last_position: int
    #: the best-aligned member (smallest Chebyshev distance; earliest
    #: position on ties) and its distance.
    best_position: int
    best_distance: float
    #: number of matching alignments collapsed into this event.
    size: int

    @property
    def span(self) -> int:
        """Positions covered, ``last - first + 1``."""
        return self.last_position - self.first_position + 1


def group_matches(result: SearchResult, min_gap: int) -> list[MatchGroup]:
    """Collapse a search result into events separated by ``min_gap``.

    Two consecutive matching positions belong to the same event when
    they are less than ``min_gap`` apart; a natural choice is the query
    length (alignments of one event are at most ``l - 1`` apart).
    Returns groups in position order.
    """
    min_gap = check_positive_int(min_gap, name="min_gap")
    positions = np.asarray(result.positions)
    distances = np.asarray(result.distances)
    if positions.size == 0:
        return []

    breaks = np.flatnonzero(np.diff(positions) >= min_gap)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks + 1, [positions.size]))

    groups: list[MatchGroup] = []
    for start, stop in zip(starts, stops):
        cluster_positions = positions[start:stop]
        cluster_distances = distances[start:stop]
        best = int(np.argmin(cluster_distances))
        groups.append(
            MatchGroup(
                first_position=int(cluster_positions[0]),
                last_position=int(cluster_positions[-1]),
                best_position=int(cluster_positions[best]),
                best_distance=float(cluster_distances[best]),
                size=int(stop - start),
            )
        )
    return groups


def event_positions(result: SearchResult, min_gap: int) -> list[int]:
    """Just the best-aligned position of each event (common case)."""
    return [group.best_position for group in group_matches(result, min_gap)]
