"""Sliding-window extraction under the three normalization regimes.

Every search method in the library (sweepline, KV-Index, iSAX, TS-Index)
consumes windows through a single abstraction, :class:`WindowSource`, so
that all of them agree bit-for-bit on what "the subsequence starting at
position p" means under a given regime. The raw window matrix is a
zero-copy stride-tricks view; ``PER_WINDOW`` scaling is applied lazily
from precomputed rolling statistics.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .._util import (
    FLOAT_DTYPE,
    as_position_array,
    check_window_length,
)
from ..exceptions import InvalidParameterError
from .normalization import (
    Normalization,
    prepare_series,
    rolling_mean,
    rolling_std,
)
from .series import TimeSeries


class WindowSource:
    """All ``length``-sized windows of a series under one regime.

    Parameters
    ----------
    series:
        A :class:`~repro.core.series.TimeSeries` or any 1-D sequence.
    length:
        Window (subsequence) length ``l``.
    normalization:
        One of :class:`~repro.core.normalization.Normalization` or its
        string values ``"none"``, ``"global"``, ``"per_window"``.

    Notes
    -----
    Under ``GLOBAL`` the series is z-normalized once and windows are raw
    slices of the normalized buffer. Under ``PER_WINDOW`` each extracted
    window ``W_p`` is returned as ``(W_p - mean_p) / std_p`` using rolling
    statistics; near-constant windows use ``std = 1`` so they normalize to
    zero vectors (see :data:`~repro.core.normalization.STD_FLOOR`).
    """

    __slots__ = (
        "_series",
        "_values",
        "_length",
        "_normalization",
        "_view",
        "_means",
        "_stds",
    )

    def __init__(
        self,
        series: TimeSeries | npt.ArrayLike,
        length: int,
        normalization: Normalization | str = Normalization.GLOBAL,
    ):
        if not isinstance(series, TimeSeries):
            series = TimeSeries(series)
        normalization = Normalization.coerce(normalization)
        values = prepare_series(series.values, normalization)
        length = check_window_length(length, values.size, name="length")

        self._series = series
        self._values = values
        self._length = length
        self._normalization = normalization
        self._view = np.lib.stride_tricks.sliding_window_view(values, length)
        if normalization is Normalization.PER_WINDOW:
            self._means = rolling_mean(values, length)
            self._stds = rolling_std(values, length)
        else:
            self._means = None
            self._stds = None

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def series(self) -> TimeSeries:
        """The original (pre-normalization) series."""
        return self._series

    @property
    def values(self) -> np.ndarray:
        """The buffer windows slide over (normalized under ``GLOBAL``)."""
        return self._values

    @property
    def length(self) -> int:
        """Window length ``l``."""
        return self._length

    @property
    def normalization(self) -> Normalization:
        """The active regime."""
        return self._normalization

    @property
    def count(self) -> int:
        """Number of windows, ``|T| - l + 1``."""
        return self._view.shape[0]

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"WindowSource(count={self.count}, length={self._length}, "
            f"normalization={self._normalization.value!r})"
        )

    # ------------------------------------------------------------------
    # Window access
    # ------------------------------------------------------------------
    def window(self, position: int) -> np.ndarray:
        """The single window starting at ``position`` (0-based)."""
        if not 0 <= position < self.count:
            raise InvalidParameterError(
                f"position {position} outside [0, {self.count})"
            )
        raw = self._view[position]
        if self._normalization is not Normalization.PER_WINDOW:
            return raw
        return (raw - self._means[position]) / self._stds[position]

    def windows(self, positions: npt.ArrayLike) -> np.ndarray:
        """A ``(k, length)`` matrix of the windows at ``positions``.

        Always returns a fresh writable array (the raw view is shared).
        """
        positions = as_position_array(positions)
        if positions.size and (
            positions.min() < 0 or positions.max() >= self.count
        ):
            raise InvalidParameterError(
                f"positions must lie in [0, {self.count}); got range "
                f"[{positions.min()}, {positions.max()}]"
            )
        block = np.array(self._view[positions], dtype=FLOAT_DTYPE)
        if self._normalization is Normalization.PER_WINDOW and positions.size:
            block -= self._means[positions, None]
            block /= self._stds[positions, None]
        return block

    def window_block(self, start: int, stop: int) -> np.ndarray:
        """Windows for the contiguous position range ``[start, stop)``.

        Under ``NONE``/``GLOBAL`` this is a zero-copy view; under
        ``PER_WINDOW`` a normalized copy.
        """
        if not 0 <= start <= stop <= self.count:
            raise InvalidParameterError(
                f"invalid block [{start}, {stop}) for {self.count} windows"
            )
        block = self._view[start:stop]
        if self._normalization is not Normalization.PER_WINDOW:
            return block
        block = np.array(block, dtype=FLOAT_DTYPE)
        block -= self._means[start:stop, None]
        block /= self._stds[start:stop, None]
        return block

    # ------------------------------------------------------------------
    # Sharding support (repro.engine)
    # ------------------------------------------------------------------
    def shard(self, start: int, stop: int) -> "WindowSource":
        """A window source over the position range ``[start, stop)``.

        The shard covers the value chunk ``[start, stop + length - 1)``,
        i.e. consecutive shards overlap by ``length - 1`` values so no
        window is lost at a shard boundary. Window ``p`` of the shard is
        **bitwise identical** to window ``start + p`` of this source:

        * the shard aliases this source's *prepared* value buffer, so
          under ``GLOBAL`` it reuses the whole-series z-normalization
          instead of re-normalizing the chunk with chunk-local moments;
        * under ``PER_WINDOW`` the shard aliases slices of this source's
          rolling statistics, so window scaling carries over exactly
          (recomputing them over the chunk would perturb the cumulative
          sums by float rounding).

        This exactness is what lets :class:`repro.engine.ShardedTSIndex`
        return byte-identical results to a monolithic index. Everything
        is a zero-copy NumPy view; no values are duplicated.
        """
        if not (
            isinstance(start, (int, np.integer))
            and isinstance(stop, (int, np.integer))
        ):
            raise InvalidParameterError(
                f"shard bounds must be integers, got [{start!r}, {stop!r})"
            )
        if not 0 <= start < stop <= self.count:
            raise InvalidParameterError(
                f"invalid shard [{start}, {stop}) for {self.count} windows"
            )
        shard = object.__new__(WindowSource)
        hi = int(stop) + self._length - 1
        name = self._series.name
        shard._series = TimeSeries(
            self._series.values[start:hi],
            name=f"{name}[{start}:{hi}]" if name else f"[{start}:{hi}]",
            copy=False,
        )
        shard._values = self._values[start:hi]
        shard._length = self._length
        shard._normalization = self._normalization
        shard._view = self._view[start:stop]
        shard._means = None if self._means is None else self._means[start:stop]
        shard._stds = None if self._stds is None else self._stds[start:stop]
        return shard

    def detach(self, start: int, stop: int) -> "WindowSource":
        """Like :meth:`shard`, but **self-contained**: the value chunk
        and the per-window statistics slices are copied, so the result
        owns its memory and stays valid (and byte-identical) after this
        source's buffers are replaced or garbage collected.

        This is how :mod:`repro.live` seals delta windows into immutable
        segments: the live plane rebuilds its monolithic source on every
        append, and a sealed segment must not pin the whole historical
        buffer alive just to serve its own span. Copying preserves
        bitwise equality because the library's rolling statistics are
        prefix-stable under appends (see
        :func:`~repro.core.normalization.rolling_std`).
        """
        shard = self.shard(start, stop)
        name = self._series.name
        return assemble_source(
            np.array(shard._values),
            self._length,
            self._normalization,
            means=None if shard._means is None else np.array(shard._means),
            stds=None if shard._stds is None else np.array(shard._stds),
            name=f"{name}[{start}:{int(stop) + self._length - 1}]"
            if name
            else f"[{start}:{int(stop) + self._length - 1}]",
        )

    # ------------------------------------------------------------------
    # Aggregates used by the indices
    # ------------------------------------------------------------------
    def means(self) -> np.ndarray:
        """Mean value of every window (KV-Index keys, Section 4.1).

        Under ``PER_WINDOW`` every mean is exactly zero by construction;
        the zeros are returned so callers can detect the degenerate case.
        """
        if self._normalization is Normalization.PER_WINDOW:
            return np.zeros(self.count, dtype=FLOAT_DTYPE)
        return rolling_mean(self._values, self._length)

    def prepare_query(self, query: npt.ArrayLike) -> np.ndarray:
        """Normalize an external query the same way indexed windows are.

        ``NONE``/``GLOBAL``: returned as-is (under ``GLOBAL`` the caller
        is expected to pass a query expressed in the normalized value
        domain — e.g. one extracted from this source). ``PER_WINDOW``:
        z-normalized independently, mirroring the indexed windows.
        """
        from .._util import as_float_array  # local import avoids cycle noise
        from .normalization import znormalize

        query = as_float_array(query, name="query")
        if query.size != self._length:
            raise InvalidParameterError(
                f"query length {query.size} != window length {self._length}"
            )
        if self._normalization is Normalization.PER_WINDOW:
            # Exact idempotence: re-normalizing an already-normalized
            # query would perturb it by float noise and break exact
            # (epsilon = 0) matches. If the query is already standard,
            # normalization is a no-op up to that noise — skip it.
            mean = float(query.mean())
            std = float(query.std())
            if abs(mean) < 1e-12 and abs(std - 1.0) < 1e-12:
                return query
            return znormalize(query)
        return query


def assemble_source(
    values: np.ndarray,
    length: int,
    normalization: Normalization | str,
    *,
    means: np.ndarray | None = None,
    stds: np.ndarray | None = None,
    name: str = "",
) -> WindowSource:
    """Assemble a :class:`WindowSource` from an owned value buffer plus
    **precomputed** per-window statistics.

    Unlike the constructor, the rolling statistics are *not* recomputed
    from ``values`` — the caller supplies the exact arrays its windows
    must be scaled by. This is the bitwise-exactness carrier used by
    :meth:`WindowSource.detach` and by :mod:`repro.live`'s segment
    compaction: statistics computed over the full series are carried
    into a chunk-sized source, so chunk windows remain byte-identical to
    the monolithic ones (recomputing over the chunk would perturb the
    cumulative sums by float rounding). Under ``NONE``/``GLOBAL`` pass
    ``means=stds=None``; ``values`` must already be in the prepared
    domain (raw, or globally normalized by the caller).
    """
    from .series import TimeSeries

    normalization = Normalization.coerce(normalization)
    values = np.ascontiguousarray(values, dtype=FLOAT_DTYPE)
    length = check_window_length(length, values.size, name="length")
    count = values.size - length + 1
    if normalization is Normalization.PER_WINDOW:
        if means is None or stds is None:
            raise InvalidParameterError(
                "per-window sources need precomputed means and stds"
            )
        if means.shape != (count,) or stds.shape != (count,):
            raise InvalidParameterError(
                f"window statistics must have shape ({count},), got "
                f"{means.shape} and {stds.shape}"
            )
    source = object.__new__(WindowSource)
    source._series = TimeSeries(values, name=name, copy=False)
    source._values = values
    source._length = length
    source._normalization = normalization
    source._view = np.lib.stride_tricks.sliding_window_view(values, length)
    if normalization is Normalization.PER_WINDOW:
        source._means = means
        source._stds = stds
    else:
        source._means = None
        source._stds = None
    return source
