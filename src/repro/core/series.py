"""The :class:`TimeSeries` container.

A thin, immutable wrapper over a 1-D float64 NumPy array that provides
the notation of Section 3.1: ``T[p : p+l]`` subsequence extraction (the
paper's ``T_{p,l}``), z-normalized views, and basic summary statistics.
Positions are 0-based throughout the library (the paper is 1-based).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .._util import as_float_array, check_window_length
from ..exceptions import InvalidParameterError
from .normalization import znormalize


class TimeSeries:
    """An immutable, named, 1-D time series.

    Parameters
    ----------
    values:
        Any 1-D sequence of finite numbers.
    name:
        Optional label used in reports and reprs.
    copy:
        Copy the input buffer (default). With ``copy=False`` the series
        aliases the caller's array zero-copy; the caller must then not
        mutate it (used internally by the streaming index, whose buffer
        only ever grows past the aliased region).

    Examples
    --------
    >>> series = TimeSeries([1.0, 2.0, 3.0, 4.0], name="demo")
    >>> series.subsequence(1, 2)
    array([2., 3.])
    >>> len(series)
    4
    """

    __slots__ = ("_values", "_name")

    def __init__(self, values: npt.ArrayLike, name: str = "", *, copy: bool = True):
        array = as_float_array(values, name="values")
        if copy:
            array = array.copy()
        array.setflags(write=False)
        self._values = array
        self._name = str(name)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The underlying read-only float64 array."""
        return self._values

    @property
    def name(self) -> str:
        """Human-readable label for reports."""
        return self._name

    def __len__(self) -> int:
        return self._values.size

    def __getitem__(self, key):
        return self._values[key]

    def __iter__(self):
        return iter(self._values)

    def __array__(self, dtype=None, copy=None):
        if dtype is not None:
            return np.asarray(self._values, dtype=dtype)
        return self._values

    def __repr__(self) -> str:
        label = f" name={self._name!r}" if self._name else ""
        return f"TimeSeries(length={len(self)}{label})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, TimeSeries):
            return NotImplemented
        return np.array_equal(self._values, other._values)

    def __hash__(self):
        return hash((len(self._values), self._values.tobytes()[:256]))

    # ------------------------------------------------------------------
    # Subsequence extraction (Section 3.1 notation)
    # ------------------------------------------------------------------
    def subsequence(self, position: int, length: int) -> np.ndarray:
        """Return the subsequence ``T_{p,l}`` starting at 0-based
        ``position`` with ``length`` points, as a read-only view."""
        length = check_window_length(length, len(self))
        if not 0 <= position <= len(self) - length:
            raise InvalidParameterError(
                f"position {position} with length {length} falls outside the "
                f"series of length {len(self)}"
            )
        return self._values[position : position + length]

    def window_count(self, length: int) -> int:
        """Number of distinct ``length``-sized windows (``|T| - l + 1``)."""
        length = check_window_length(length, len(self))
        return len(self) - length + 1

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    def znormalized(self) -> "TimeSeries":
        """Globally z-normalized copy of this series."""
        suffix = " (z-norm)" if self._name else ""
        return TimeSeries(znormalize(self._values), name=self._name + suffix)

    def slice(self, start: int, stop: int) -> "TimeSeries":
        """A new series over ``values[start:stop]`` (used for scaling
        datasets down in the benchmark harness)."""
        if not 0 <= start < stop <= len(self):
            raise InvalidParameterError(
                f"invalid slice [{start}, {stop}) for series of length {len(self)}"
            )
        return TimeSeries(self._values[start:stop], name=self._name)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Arithmetic mean of all values."""
        return float(self._values.mean())

    def std(self) -> float:
        """Population standard deviation of all values."""
        return float(self._values.std())

    def minimum(self) -> float:
        """Smallest value."""
        return float(self._values.min())

    def maximum(self) -> float:
        """Largest value."""
        return float(self._values.max())

    def describe(self) -> dict:
        """Summary statistics used by dataset reports."""
        return {
            "name": self._name,
            "length": len(self),
            "mean": self.mean(),
            "std": self.std(),
            "min": self.minimum(),
            "max": self.maximum(),
        }
