"""Batch query execution over any search method.

The paper's evaluation protocol runs 100-query workloads; applications
do the same (e.g. scoring every recent event against an archive).
``search_batch`` runs a sequence of queries through one built method,
returning per-query results plus workload-level aggregates, so callers
stop re-implementing the aggregation loop the harness uses.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Protocol

import numpy.typing as npt

from .._util import check_non_negative
from .stats import QueryStats, SearchResult


class SupportsSearch(Protocol):
    """The shared threshold-search surface of every paper method."""

    def search(
        self, query: npt.ArrayLike, epsilon: float, **search_options: Any
    ) -> SearchResult: ...


@dataclasses.dataclass
class BatchResult:
    """Results and aggregates for one batch of twin queries."""

    #: per-query results, aligned with the input order.
    results: list[SearchResult]
    #: element-wise sum of every query's structural counters.
    stats: QueryStats
    epsilon: float

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, item) -> SearchResult:
        return self.results[item]

    @property
    def total_matches(self) -> int:
        """Twins found across the whole batch."""
        return sum(len(result) for result in self.results)

    def match_counts(self) -> list[int]:
        """Per-query twin counts, aligned with the input order."""
        return [len(result) for result in self.results]

    def selectivity(self, window_count: int) -> float:
        """Average fraction of windows matched per query."""
        if window_count <= 0 or not self.results:
            return 0.0
        return self.total_matches / (window_count * len(self.results))


def search_batch(
    method: SupportsSearch,
    queries: Iterable[npt.ArrayLike],
    epsilon: float,
    **search_options: Any,
) -> BatchResult:
    """Run every query of ``queries`` through ``method`` at ``epsilon``.

    ``method`` is any object with the shared ``search`` surface (all
    four paper methods and the streaming index qualify);
    ``search_options`` are forwarded to each call (e.g.
    ``verification="per_candidate"``).
    """
    # Local import: repro.query.merge imports BatchResult from here.
    from ..query.merge import batch_result

    epsilon = check_non_negative(epsilon, name="epsilon")
    results = [
        method.search(query, epsilon, **search_options)
        for query in queries
    ]
    return batch_result(results, epsilon)
