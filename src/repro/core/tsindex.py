"""TS-Index — the paper's contribution (Section 5).

A height-balanced tree over all ``l``-length windows of a time series.
Each node carries a Minimum Bounding Time Series (MBTS, Definition 2)
enclosing everything indexed beneath it; leaves store window start
positions. Construction is top-down sequential insertion (Section 5.2)
with R-tree style overflow splits whose seeds are the two farthest
entries (Chebyshev distance for leaves, Eq. 3 gap for internal nodes).
Twin queries traverse top-down, pruning any subtree whose MBTS is more
than ``ε`` away from the query (Lemma 1 / Algorithm 1).

Beyond the paper, this module adds a best-first **k-NN twin search**
(`knn`) that uses the same Eq. 2 bound as a lower bound, and hooks for
bulk loading (see :mod:`repro.core.bulkload`).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import time
from typing import Any, Iterable

import numpy as np
import numpy.typing as npt

from .._util import (
    FLOAT_DTYPE,
    POSITION_DTYPE,
    check_non_negative,
    check_positive_int,
)
from ..exceptions import InvalidParameterError
from ..query.capabilities import (
    CAP_COUNT,
    CAP_EXISTS,
    CAP_KNN,
    CAP_SEARCH,
    CAP_VARLENGTH,
    CAP_VERIFICATION,
)
from ..query.registration import register_plane
from ..query.spec import prepare_values
from ..query.varlength import (
    is_prefix_query,
    merge_exists_stats,
    prefix_search_with_tail,
)
from .mbts import MBTS
from .normalization import Normalization
from .stats import BuildStats, QueryStats, SearchResult
from .verification import verify
from .windows import WindowSource

#: Valid split assignment metrics (DESIGN.md §5): ``area`` is classic
#: R-tree total enlargement, ``max`` is the Chebyshev-style maximum
#: single-timestamp enlargement.
SPLIT_METRICS = ("area", "max")


@dataclasses.dataclass(frozen=True)
class TSIndexParams:
    """Construction parameters for :class:`TSIndex`.

    Defaults are the paper's (Section 6.1): minimum node capacity
    ``μc = 10``, maximum node capacity ``Mc = 30``.
    """

    min_children: int = 10
    max_children: int = 30
    split_metric: str = "area"

    def __post_init__(self):
        check_positive_int(self.min_children, name="min_children")
        check_positive_int(self.max_children, name="max_children")
        if self.max_children < 2 * self.min_children:
            raise InvalidParameterError(
                "max_children must be >= 2 * min_children so both split "
                f"halves can satisfy the minimum (got μc={self.min_children}, "
                f"Mc={self.max_children})"
            )
        if self.split_metric not in SPLIT_METRICS:
            raise InvalidParameterError(
                f"split_metric must be one of {SPLIT_METRICS}, "
                f"got {self.split_metric!r}"
            )


class _Node:
    """One TS-Index node. Leaves hold positions; internals hold children."""

    __slots__ = ("mbts", "children", "positions", "_env_upper", "_env_lower")

    def __init__(self, mbts: MBTS, *, children=None, positions=None):
        self.mbts = mbts
        self.children: list[_Node] | None = children
        self.positions: list[int] | None = positions
        # Persistent stacked child-envelope matrices (rows mirror
        # ``children``'s MBTS) used to vectorize bound checks during both
        # insertion and queries. Maintained incrementally: rows are
        # refreshed after a child's envelope grows and appended when a
        # child is added; splits drop the matrices for a lazy rebuild.
        self._env_upper: np.ndarray | None = None
        self._env_lower: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.positions is not None

    @property
    def fanout(self) -> int:
        return len(self.positions if self.is_leaf else self.children)

    def invalidate_cache(self) -> None:
        self._env_upper = None
        self._env_lower = None

    def child_envelopes(self) -> tuple[np.ndarray, np.ndarray]:
        """``(k, l)`` upper/lower matrix views over the children."""
        count = len(self.children)
        if self._env_upper is None or self._env_upper.shape[0] < count:
            length = self.mbts.length
            capacity = max(count + 1, 8)
            upper = np.empty((capacity, length), dtype=FLOAT_DTYPE)
            lower = np.empty((capacity, length), dtype=FLOAT_DTYPE)
            for row, child in enumerate(self.children):
                upper[row] = child.mbts.upper
                lower[row] = child.mbts.lower
            self._env_upper = upper
            self._env_lower = lower
        return self._env_upper[:count], self._env_lower[:count]

    def refresh_child_row(self, row: int) -> None:
        """Re-sync one row after the child's MBTS changed in place."""
        if self._env_upper is not None and row < self._env_upper.shape[0]:
            child = self.children[row]
            self._env_upper[row] = child.mbts.upper
            self._env_lower[row] = child.mbts.lower

    def append_child(self, child: "_Node") -> None:
        """Add a child, growing the envelope matrices if present."""
        self.children.append(child)
        if self._env_upper is None:
            return
        row = len(self.children) - 1
        if row >= self._env_upper.shape[0]:
            grown_upper = np.empty(
                (self._env_upper.shape[0] * 2, self._env_upper.shape[1]),
                dtype=FLOAT_DTYPE,
            )
            grown_lower = np.empty_like(grown_upper)
            grown_upper[:row] = self._env_upper[:row]
            grown_lower[:row] = self._env_lower[:row]
            self._env_upper = grown_upper
            self._env_lower = grown_lower
        self._env_upper[row] = child.mbts.upper
        self._env_lower[row] = child.mbts.lower


class TSIndex:
    """Tree index for twin subsequence search under Chebyshev distance.

    Build one with :meth:`TSIndex.build` (from raw values) or
    :meth:`TSIndex.from_source` (from a prepared
    :class:`~repro.core.windows.WindowSource`), then answer queries with
    :meth:`search` (threshold queries, Algorithm 1) or :meth:`knn`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import TSIndex
    >>> rng = np.random.default_rng(7)
    >>> series = np.cumsum(rng.normal(size=2000))
    >>> index = TSIndex.build(series, length=50, normalization="none")
    >>> result = index.search(series[100:150], epsilon=0.5)
    >>> 100 in result.positions
    True
    """

    method_name = "tsindex"

    #: Native kernels the query planner may call directly.
    capabilities = frozenset(
        {
            CAP_SEARCH,
            CAP_KNN,
            CAP_EXISTS,
            CAP_COUNT,
            CAP_VARLENGTH,
            CAP_VERIFICATION,
        }
    )

    def __init__(self, source: WindowSource, params: TSIndexParams | None = None):
        self._source = source
        self._params = params or TSIndexParams()
        self._root: _Node | None = None
        self._build_stats = BuildStats()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        series: npt.ArrayLike,
        length: int,
        *,
        normalization: Normalization | str = Normalization.GLOBAL,
        params: TSIndexParams | None = None,
    ) -> "TSIndex":
        """Build a TS-Index over all ``length``-sized windows of
        ``series`` under the given normalization regime."""
        source = WindowSource(series, length, normalization)
        return cls.from_source(source, params=params)

    @classmethod
    def from_source(
        cls, source: WindowSource, *, params: TSIndexParams | None = None
    ) -> "TSIndex":
        """Build by sequentially inserting every window of ``source``."""
        index = cls(source, params)
        started = time.perf_counter()
        for position in range(source.count):
            index._insert_position(position)
        index._build_stats.seconds = time.perf_counter() - started
        index._build_stats.windows = source.count
        index._build_stats.height = index.height
        index._build_stats.nodes = index.node_count
        return index

    @classmethod
    def _from_prebuilt_root(
        cls,
        source: WindowSource,
        root: _Node,
        params: TSIndexParams,
        build_stats: BuildStats,
    ) -> "TSIndex":
        """Internal hook used by the bulk loader."""
        index = cls(source, params)
        index._root = root
        index._build_stats = build_stats
        return index

    def freeze(self) -> Any:
        """Snapshot this tree into a read-optimized
        :class:`~repro.core.frozen.FrozenTSIndex`.

        The frozen form answers ``search`` / ``knn`` / ``exists`` /
        ``search_batch`` over flat structure-of-arrays storage with
        vectorized frontier traversal — byte-identical results, a
        fraction of the latency. Freeze once the tree stops growing
        (the snapshot does not see later :meth:`insert` calls); thaw
        with :meth:`FrozenTSIndex.thaw
        <repro.core.frozen.FrozenTSIndex.thaw>` to resume insertion.
        """
        from .frozen import FrozenTSIndex  # local: frozen imports us

        return FrozenTSIndex.from_tree(
            self._source,
            self._root,
            self._params,
            # Copy: later inserts into this tree must not mutate the
            # snapshot's (or its serialized form's) build counters.
            dataclasses.replace(self._build_stats),
        )

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def source(self) -> WindowSource:
        """The window source this index was built over."""
        return self._source

    @property
    def params(self) -> TSIndexParams:
        """Construction parameters."""
        return self._params

    @property
    def build_stats(self) -> BuildStats:
        """Counters recorded during construction."""
        return self._build_stats

    @property
    def length(self) -> int:
        """Indexed window length ``l``."""
        return self._source.length

    @property
    def size(self) -> int:
        """Number of indexed windows."""
        return self._source.count

    @property
    def height(self) -> int:
        """Tree height in levels (a lone leaf root has height 1)."""
        if self._root is None:
            return 0
        height = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            height += 1
        return height

    @property
    def node_count(self) -> int:
        """Total number of nodes."""
        if self._root is None:
            return 0
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def __repr__(self) -> str:
        return (
            f"TSIndex(windows={self.size}, length={self.length}, "
            f"height={self.height}, nodes={self.node_count})"
        )

    def iter_nodes(self) -> Any:
        """Yield ``(node, depth)`` pairs in pre-order (for diagnostics,
        memory accounting and invariant tests)."""
        if self._root is None:
            return
        stack = [(self._root, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            if not node.is_leaf:
                stack.extend((child, depth + 1) for child in node.children)

    # ------------------------------------------------------------------
    # Insertion (Section 5.2)
    # ------------------------------------------------------------------
    def insert(self, position: int) -> None:
        """Insert one window by start position (exposed for incremental
        maintenance; :meth:`from_source` uses it for every window)."""
        if not 0 <= position < self._source.count:
            raise InvalidParameterError(
                f"position {position} outside [0, {self._source.count})"
            )
        self._insert_position(position)
        self._build_stats.windows = max(self._build_stats.windows, 0) + 1

    def _insert_position(self, position: int) -> None:
        window = self._source.window(position)
        if self._root is None:
            self._root = _Node(MBTS.from_sequence(window), positions=[position])
            return
        sibling = self._insert_into(self._root, window, position)
        if sibling is not None:
            old_root = self._root
            new_root = _Node(
                old_root.mbts.union(sibling.mbts),
                children=[old_root, sibling],
            )
            self._root = new_root

    def _insert_into(self, node: _Node, window: np.ndarray, position: int):
        """Recursive insert; returns a new sibling when ``node`` split."""
        node.mbts.expand_fast(window)
        if node.is_leaf:
            node.positions.append(position)
            if len(node.positions) > self._params.max_children:
                return self._split_leaf(node)
            return None

        chosen = self._choose_subtree(node, window)
        child = node.children[chosen]
        new_child = self._insert_into(child, window, position)
        # The recursion expanded (or split and rebuilt) the chosen
        # child's MBTS; bring its envelope row back in sync.
        node.refresh_child_row(chosen)
        if new_child is not None:
            node.append_child(new_child)
            if len(node.children) > self._params.max_children:
                return self._split_internal(node)
        return None

    def _choose_subtree(self, node: _Node, window: np.ndarray) -> int:
        """Index of the child whose MBTS is nearest to the window
        (Eq. 2), breaking ties by least enlargement, then smallest
        area."""
        upper, lower = node.child_envelopes()
        outside = np.maximum(window - upper, lower - window)
        distances = np.maximum(outside.max(axis=1), 0.0)
        minimum = distances.min()
        best = np.flatnonzero(distances == minimum)
        if best.size == 1:
            return int(best[0])
        enlargements = np.maximum(outside[best], 0.0).sum(axis=1)
        best = best[enlargements == enlargements.min()]
        if best.size == 1:
            return int(best[0])
        areas = (upper[best] - lower[best]).sum(axis=1)
        return int(best[int(np.argmin(areas))])

    # ------------------------------------------------------------------
    # Splits (Section 5.2)
    # ------------------------------------------------------------------
    def _split_leaf(self, node: _Node) -> _Node:
        positions = np.asarray(node.positions, dtype=POSITION_DTYPE)
        matrix = self._source.windows(positions)
        pairwise = matrix[:, None, :] - matrix[None, :, :]
        np.abs(pairwise, out=pairwise)
        distances = pairwise.max(axis=2)
        seed_a, seed_b = np.unravel_index(
            np.argmax(distances), distances.shape
        )
        if seed_a == seed_b:  # all entries identical: arbitrary halves
            half = positions.size // 2
            groups = (list(range(half)), list(range(half, positions.size)))
        else:
            groups = self._distribute(
                matrix, int(seed_a), int(seed_b), rows_are_mbts=False
            )

        group_a, group_b = groups
        node.positions = [int(positions[i]) for i in group_a]
        node.mbts = MBTS.from_sequences(matrix[group_a])
        sibling = _Node(
            MBTS.from_sequences(matrix[group_b]),
            positions=[int(positions[i]) for i in group_b],
        )
        self._build_stats.splits += 1
        return sibling

    def _split_internal(self, node: _Node) -> _Node:
        children = node.children
        upper = np.stack([c.mbts.upper for c in children])
        lower = np.stack([c.mbts.lower for c in children])
        gap_a = lower[:, None, :] - upper[None, :, :]
        distances = np.maximum(
            np.maximum(gap_a, np.swapaxes(gap_a, 0, 1)), 0.0
        ).max(axis=2)
        seed_a, seed_b = np.unravel_index(
            np.argmax(distances), distances.shape
        )
        if seed_a == seed_b:
            half = len(children) // 2
            groups = (list(range(half)), list(range(half, len(children))))
        else:
            bounds = np.stack([upper, lower], axis=1)  # (k, 2, l)
            groups = self._distribute(
                bounds, int(seed_a), int(seed_b), rows_are_mbts=True
            )

        group_a, group_b = groups
        kept = [children[i] for i in group_a]
        moved = [children[i] for i in group_b]
        node.children = kept
        node.mbts = _union_of(kept)
        node.invalidate_cache()
        sibling = _Node(_union_of(moved), children=moved)
        self._build_stats.splits += 1
        return sibling

    def _distribute(self, rows: np.ndarray, seed_a: int, seed_b: int, *, rows_are_mbts: bool):
        """Assign entries to the two seeds, honouring ``min_children``.

        ``rows`` is ``(k, l)`` of sequences (leaf split) or ``(k, 2, l)``
        of stacked [upper, lower] envelopes (internal split). Each entry
        goes to the side whose MBTS it enlarges least (``area`` metric) or
        pokes out of least (``max`` metric); once a side must absorb all
        remaining entries to reach ``μc``, it does.
        """
        total = rows.shape[0]
        minimum = self._params.min_children

        def bounds_of(i):
            if rows_are_mbts:
                return rows[i, 0], rows[i, 1]
            return rows[i], rows[i]

        upper_a, lower_a = (b.copy() for b in bounds_of(seed_a))
        upper_b, lower_b = (b.copy() for b in bounds_of(seed_b))
        group_a, group_b = [seed_a], [seed_b]
        remaining = [i for i in range(total) if i not in (seed_a, seed_b)]

        for index_in_queue, i in enumerate(remaining):
            left = len(remaining) - index_in_queue
            if len(group_a) + left == minimum:
                group_a.extend(remaining[index_in_queue:])
                break
            if len(group_b) + left == minimum:
                group_b.extend(remaining[index_in_queue:])
                break

            hi, lo = bounds_of(i)
            grow_up_a = np.maximum(hi - upper_a, 0.0)
            grow_dn_a = np.maximum(lower_a - lo, 0.0)
            grow_up_b = np.maximum(hi - upper_b, 0.0)
            grow_dn_b = np.maximum(lower_b - lo, 0.0)
            if self._params.split_metric == "area":
                cost_a = float(grow_up_a.sum() + grow_dn_a.sum())
                cost_b = float(grow_up_b.sum() + grow_dn_b.sum())
            else:
                cost_a = float(max(grow_up_a.max(), grow_dn_a.max()))
                cost_b = float(max(grow_up_b.max(), grow_dn_b.max()))
            if cost_a < cost_b or (
                cost_a == cost_b
                and float((upper_a - lower_a).sum())
                <= float((upper_b - lower_b).sum())
            ):
                group_a.append(i)
                np.maximum(upper_a, hi, out=upper_a)
                np.minimum(lower_a, lo, out=lower_a)
            else:
                group_b.append(i)
                np.maximum(upper_b, hi, out=upper_b)
                np.minimum(lower_b, lo, out=lower_b)
        return group_a, group_b

    # ------------------------------------------------------------------
    # Query (Section 5.3, Algorithm 1)
    # ------------------------------------------------------------------
    def search(
        self,
        query: npt.ArrayLike,
        epsilon: float,
        *,
        verification: str = "bulk",
    ) -> SearchResult:
        """All twin subsequences of ``query`` within Chebyshev ``ε``.

        The traversal prunes every subtree whose node MBTS is farther
        than ``ε`` from the query (Lemma 1); qualifying leaves contribute
        candidate positions which are then exactly verified with the
        chosen strategy (see
        :data:`~repro.core.verification.VERIFICATION_MODES`; all modes
        return identical results).
        """
        if is_prefix_query(query, self._source.length):
            return self.search_varlength(
                query, epsilon, verification=verification
            )
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = self._prepare_query(query)
        stats = QueryStats()
        candidates = self._collect_candidates(query, epsilon, stats)
        return verify(
            self._source, query, candidates, epsilon,
            mode=verification, stats=stats,
        )

    def count(self, query: npt.ArrayLike, epsilon: float) -> int:
        """Number of twins (convenience wrapper over :meth:`search`;
        shorter queries count their prefix twins, tail included)."""
        return len(self.search(query, epsilon))

    def search_batch(
        self, queries: Iterable[npt.ArrayLike], epsilon: float, **search_options: Any
    ) -> Any:
        """Run a whole workload; per-query results plus aggregates.

        The pipeline-backed default every plane shares (a planner loop
        over :meth:`search` with the shared merge/stats kernel); the
        frozen form (:meth:`freeze`) has a batched shared-traversal
        kernel instead.
        """
        from ..query import QuerySpec, execute

        return execute(
            self,
            QuerySpec(
                query=list(queries),
                mode="batch",
                epsilon=epsilon,
                options=dict(search_options),
            ),
        )

    def search_varlength(
        self,
        query: npt.ArrayLike,
        epsilon: float,
        *,
        verification: str = "bulk",
    ) -> SearchResult:
        """All twins of a query of length ``m <= l`` (extension).

        Returns every position ``p`` in ``[0, n - m]`` with
        ``max_i |T[p + i] - Q_i| <= ε`` — *including* the ``l - m``
        tail positions the fixed-length index does not store, which a
        direct scan covers. The traversal applies the Eq. 2 bound
        restricted to the query's prefix length (a node MBTS prefix is
        a valid envelope for the window prefixes beneath it, so pruning
        stays lossless); queries of exactly length ``l`` delegate to
        :meth:`search` — identical positions, distances and counters.

        Per-window z-normalization rejects shorter queries with a typed
        error (windows are normalized over ``l`` points, the query over
        ``m``); the raw and global regimes are exact.
        """
        return prefix_search_with_tail(
            self, query, epsilon, verification=verification
        )

    def collect_varlength_candidates(
        self, query: np.ndarray, epsilon: float, stats: QueryStats
    ) -> np.ndarray:
        """Algorithm 1's traversal with the Eq. 2 bound restricted to
        the first ``query.size`` timestamps of every node envelope.

        Returns unverified candidate window positions (tail positions
        excluded) — the fan-out hook the composite planes (sharded,
        live) call per shard/segment before one shared verification.
        ``query`` must already be prepared.
        """
        m = query.size
        root = self._root
        if root is None:
            return np.empty(0, dtype=POSITION_DTYPE)

        stats.nodes_visited += 1
        root_outside = np.maximum(
            query - root.mbts.upper[:m], root.mbts.lower[:m] - query
        ).max()
        if max(float(root_outside), 0.0) > epsilon:
            stats.nodes_pruned += 1
            return np.empty(0, dtype=POSITION_DTYPE)
        if root.is_leaf:
            stats.leaves_accessed += 1
            return np.asarray(root.positions, dtype=POSITION_DTYPE)

        collected: list[np.ndarray] = []
        stack = [root]
        while stack:
            node = stack.pop()
            upper, lower = node.child_envelopes()
            outside = np.maximum(
                query - upper[:, :m], lower[:, :m] - query
            ).max(axis=1)
            stats.nodes_visited += len(node.children)
            for child_index, child in enumerate(node.children):
                if outside[child_index] > epsilon:
                    stats.nodes_pruned += 1
                    continue
                if child.is_leaf:
                    stats.leaves_accessed += 1
                    collected.append(
                        np.asarray(child.positions, dtype=POSITION_DTYPE)
                    )
                else:
                    stack.append(child)

        if not collected:
            return np.empty(0, dtype=POSITION_DTYPE)
        return np.concatenate(collected)

    def search_approximate(
        self, query: npt.ArrayLike, epsilon: float, *, max_leaves: int = 8
    ) -> SearchResult:
        """Twins from the ``max_leaves`` most promising leaves only.

        A budgeted best-first probe (the ADS+-style interactive
        primitive): leaves are verified in increasing order of their
        Eq. 2 bound and traversal stops after ``max_leaves`` of them
        (or once the bound exceeds ``ε``). Always a subset of
        :meth:`search`; raising the budget converges to the exact
        answer, with cost bounded by ``max_leaves`` leaf verifications.
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        max_leaves = check_positive_int(max_leaves, name="max_leaves")
        query = self._prepare_query(query)
        stats = QueryStats()
        if self._root is None:
            return SearchResult.empty(stats)

        counter = itertools.count()
        frontier = [
            (self._root.mbts.distance_to_sequence(query), next(counter), self._root)
        ]
        collected: list[np.ndarray] = []
        while frontier and stats.leaves_accessed < max_leaves:
            bound, _, node = heapq.heappop(frontier)
            if bound > epsilon:
                stats.nodes_pruned += 1
                break  # every remaining bound is at least as large
            stats.nodes_visited += 1
            if node.is_leaf:
                stats.leaves_accessed += 1
                collected.append(
                    np.asarray(node.positions, dtype=POSITION_DTYPE)
                )
            else:
                bounds = self._child_bounds(node, query)
                for child_bound, child in zip(bounds.tolist(), node.children):
                    if child_bound <= epsilon:
                        heapq.heappush(
                            frontier, (child_bound, next(counter), child)
                        )
                    else:
                        stats.nodes_pruned += 1

        candidates = (
            np.concatenate(collected)
            if collected
            else np.empty(0, dtype=POSITION_DTYPE)
        )
        return verify(self._source, query, candidates, epsilon, stats=stats)

    def exists(
        self, query: npt.ArrayLike, epsilon: float, *, stats: QueryStats | None = None
    ) -> bool:
        """Whether *any* twin exists, with early exit (extension).

        Unlike :meth:`search`, qualifying leaves are verified as soon as
        they are reached and the traversal stops at the first twin —
        the cheapest possible decision procedure for questions like
        "has this pattern occurred before?".

        Pass a :class:`QueryStats` to receive the traversal counters
        (nodes visited/pruned, leaves accessed, candidates verified;
        ``matches`` is 1 when a twin was found). The counters match
        :meth:`FrozenTSIndex.exists
        <repro.core.frozen.FrozenTSIndex.exists>` exactly, so the two
        paths stay comparable. Queries shorter than ``l`` derive from
        :meth:`search_varlength` (its counters land in ``stats`` too).
        """
        if is_prefix_query(query, self._source.length):
            result = self.search_varlength(query, epsilon)
            merge_exists_stats(stats, result)
            return len(result) > 0
        epsilon = check_non_negative(epsilon, name="epsilon")
        query = self._prepare_query(query)
        stats = stats if stats is not None else QueryStats()
        if self._root is None:
            return False

        stats.nodes_visited += 1
        if self._root.mbts.distance_to_sequence(query) > epsilon:
            stats.nodes_pruned += 1
            return False
        if self._root.is_leaf:
            return self._leaf_has_twin(self._root, query, epsilon, stats)

        stack = [self._root]
        while stack:
            node = stack.pop()
            bounds = self._child_bounds(node, query)
            stats.nodes_visited += len(node.children)
            for bound, child in zip(bounds.tolist(), node.children):
                if bound > epsilon:
                    stats.nodes_pruned += 1
                    continue
                if child.is_leaf:
                    if self._leaf_has_twin(child, query, epsilon, stats):
                        return True
                else:
                    stack.append(child)
        return False

    def _leaf_has_twin(
        self, node: _Node, query: np.ndarray, epsilon: float, stats: QueryStats
    ) -> bool:
        stats.leaves_accessed += 1
        positions = np.asarray(node.positions, dtype=POSITION_DTYPE)
        block = self._source.windows(positions)
        stats.candidates += int(positions.size)
        stats.verified += int(positions.size)
        found = bool(np.any(np.max(np.abs(block - query), axis=1) <= epsilon))
        if found:
            stats.matches += 1
        return found

    @staticmethod
    def _child_bounds(node: _Node, query: np.ndarray) -> np.ndarray:
        """Eq. 2 bound of ``query`` against every child of ``node`` —
        one vectorized reduction over the cached envelope matrices
        instead of a per-child ``distance_to_sequence`` call."""
        upper, lower = node.child_envelopes()
        outside = np.maximum(query - upper, lower - query).max(axis=1)
        return np.maximum(outside, 0.0)

    def _collect_candidates(
        self, query: np.ndarray, epsilon: float, stats: QueryStats
    ) -> np.ndarray:
        """Algorithm 1's traversal, accumulating leaf candidates."""
        if self._root is None:
            return np.empty(0, dtype=POSITION_DTYPE)

        collected: list[np.ndarray] = []
        root = self._root
        stats.nodes_visited += 1
        if root.mbts.distance_to_sequence(query) > epsilon:
            stats.nodes_pruned += 1
            return np.empty(0, dtype=POSITION_DTYPE)
        if root.is_leaf:
            stats.leaves_accessed += 1
            return np.asarray(root.positions, dtype=POSITION_DTYPE)

        stack = [root]
        while stack:
            node = stack.pop()
            upper, lower = node.child_envelopes()
            outside = np.maximum(query - upper, lower - query).max(axis=1)
            stats.nodes_visited += len(node.children)
            for child_index, child in enumerate(node.children):
                if outside[child_index] > epsilon:
                    stats.nodes_pruned += 1
                    continue
                if child.is_leaf:
                    stats.leaves_accessed += 1
                    collected.append(
                        np.asarray(child.positions, dtype=POSITION_DTYPE)
                    )
                else:
                    stack.append(child)

        if not collected:
            return np.empty(0, dtype=POSITION_DTYPE)
        return np.concatenate(collected)

    # ------------------------------------------------------------------
    # k-NN twin search (extension; best-first with the Eq. 2 bound)
    # ------------------------------------------------------------------
    def knn(
        self, query: npt.ArrayLike, k: int, *, exclude: tuple[int, int] | None = None
    ) -> SearchResult:
        """The ``k`` windows nearest to ``query`` in Chebyshev distance.

        Best-first traversal: nodes are expanded in order of their Eq. 2
        lower bound, and expansion stops once the bound exceeds the
        current k-th best exact distance — the standard optimal R-tree
        NN argument carries over because Eq. 2 lower-bounds the exact
        distance of every window under the node (Lemma 1).

        Ties at the k-th distance are broken by smallest position, so
        the answer is a deterministic function of the data — and agrees
        exactly with :class:`repro.engine.ShardedTSIndex`'s shard merge,
        which ranks by ``(distance, position)``.

        ``exclude`` removes the half-open position range ``[a, b)`` from
        consideration — the *exclusion zone* used by matrix-profile
        style self joins to skip trivial matches of a query with its own
        overlapping windows.

        Queries shorter than ``l`` dispatch to the pipeline's exact
        prefix scan (ranked by the same tie-break, tail included).
        """
        if is_prefix_query(query, self._source.length):
            from ..query import QuerySpec, execute

            return execute(
                self,
                QuerySpec(query=query, mode="knn", k=k, exclude=exclude),
            )
        k = check_positive_int(k, name="k")
        query = self._prepare_query(query)
        if exclude is not None:
            exclude_start, exclude_stop = int(exclude[0]), int(exclude[1])
            if exclude_start > exclude_stop:
                raise InvalidParameterError(
                    f"exclude range must satisfy start <= stop, got {exclude}"
                )
        stats = QueryStats()
        if self._root is None:
            return SearchResult.empty(stats)

        counter = itertools.count()
        frontier = [
            (self._root.mbts.distance_to_sequence(query), next(counter), self._root)
        ]
        # Max-heap of the best k ((distance, position) both negated, so
        # the root is the lexicographically worst entry and ties at the
        # k-th distance resolve to the smallest positions).
        best: list[tuple[float, int]] = []

        def kth() -> float:
            return -best[0][0] if len(best) == k else np.inf

        while frontier:
            bound, _, node = heapq.heappop(frontier)
            if bound > kth():
                stats.nodes_pruned += 1
                continue
            stats.nodes_visited += 1
            if node.is_leaf:
                stats.leaves_accessed += 1
                positions = np.asarray(node.positions, dtype=POSITION_DTYPE)
                if exclude is not None:
                    keep = (positions < exclude_start) | (positions >= exclude_stop)
                    positions = positions[keep]
                    if positions.size == 0:
                        continue
                block = self._source.windows(positions)
                profile = np.max(np.abs(block - query), axis=1)
                stats.candidates += positions.size
                stats.verified += positions.size
                for distance, position in zip(profile.tolist(), positions.tolist()):
                    entry = (-float(distance), -int(position))
                    if len(best) < k:
                        heapq.heappush(best, entry)
                    elif entry > best[0]:
                        heapq.heapreplace(best, entry)
            else:
                bounds = self._child_bounds(node, query)
                threshold = kth()
                for child_bound, child in zip(bounds.tolist(), node.children):
                    if child_bound <= threshold:
                        heapq.heappush(
                            frontier, (child_bound, next(counter), child)
                        )
                    else:
                        stats.nodes_pruned += 1

        ranked = sorted((-negated, -negated_position) for negated, negated_position in best)
        stats.matches = len(ranked)
        return SearchResult(
            positions=np.asarray([p for _, p in ranked], dtype=POSITION_DTYPE),
            distances=np.asarray([d for d, _ in ranked], dtype=FLOAT_DTYPE),
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _prepare_query(self, query) -> np.ndarray:
        return prepare_values(
            self._source, query, expected=self._source.length
        )


@register_plane(
    "tsindex",
    aliases=("ts",),
    paper=True,
    summary="MBTS tree, the paper's contribution (Section 5)",
)
def _tsindex_plane(source: WindowSource, **kwargs) -> TSIndex:
    """Registry builder: loose kwargs become :class:`TSIndexParams`."""
    params = kwargs.pop("params", None)
    if kwargs:
        params = TSIndexParams(**kwargs)
    return TSIndex.from_source(source, params=params)


def _union_of(nodes: list[_Node]) -> MBTS:
    """MBTS covering a non-empty list of nodes."""
    union = nodes[0].mbts.copy()
    for node in nodes[1:]:
        union.expand_to_include_mbts(node.mbts)
    return union
