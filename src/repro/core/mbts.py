"""Minimum Bounding Time Series (MBTS) — Definition 2 and Equations 2–3.

An MBTS is the pair of envelope sequences ``(upper, lower)`` taking, at
every timestamp, the max/min over a set of equal-length sequences. It is
the bounding geometry of TS-Index nodes, playing the role the MBR plays
in an R-tree. This module implements:

* construction from a sequence set (:func:`mbts_of`) and incremental
  expansion (:meth:`MBTS.expand_to_include`, :meth:`MBTS.union`);
* the sequence↔MBTS distance of Equation 2 (the pruning bound of
  Lemma 1);
* the MBTS↔MBTS gap distance of Equation 3 (used to seed internal-node
  splits). The printed Eq. 3 contains a typo in its branch conditions;
  we implement the standard disjoint-gap form
  ``max_i max(B1ℓ_i - B2u_i, B2ℓ_i - B1u_i, 0)`` (see DESIGN.md §5);
* the enlargement metrics used to choose insertion subtrees and split
  assignments (DESIGN.md §5 documents the choice).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from .._util import FLOAT_DTYPE, as_float_array
from ..exceptions import InvalidParameterError


class MBTS:
    """A mutable upper/lower bounding pair over length-``l`` sequences.

    Invariant: ``lower_i <= upper_i`` at every timestamp ``i``.
    """

    __slots__ = ("upper", "lower")

    def __init__(self, upper: npt.ArrayLike, lower: npt.ArrayLike):
        upper = np.array(upper, dtype=FLOAT_DTYPE)
        lower = np.array(lower, dtype=FLOAT_DTYPE)
        if upper.ndim != 1 or upper.shape != lower.shape:
            raise InvalidParameterError(
                f"upper/lower must be equal-length 1-D arrays, got "
                f"{upper.shape} and {lower.shape}"
            )
        if np.any(lower > upper):
            raise InvalidParameterError("MBTS requires lower <= upper everywhere")
        self.upper = upper
        self.lower = lower

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_sequence(cls, sequence: npt.ArrayLike) -> "MBTS":
        """Degenerate MBTS enclosing a single sequence (upper == lower)."""
        sequence = as_float_array(sequence, name="sequence")
        return cls(sequence.copy(), sequence.copy())

    @classmethod
    def from_sequences(cls, matrix: npt.ArrayLike) -> "MBTS":
        """MBTS of a non-empty ``(k, l)`` matrix of sequences (Eq. 1)."""
        matrix = np.asarray(matrix, dtype=FLOAT_DTYPE)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise InvalidParameterError(
                f"need a non-empty (k, l) matrix, got shape {matrix.shape}"
            )
        return cls(matrix.max(axis=0), matrix.min(axis=0))

    def copy(self) -> "MBTS":
        """Deep copy (the arrays are duplicated)."""
        return MBTS(self.upper.copy(), self.lower.copy())

    # ------------------------------------------------------------------
    # Metadata
    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """Number of timestamps covered."""
        return self.upper.size

    def band_widths(self) -> np.ndarray:
        """Per-timestamp envelope width ``upper - lower``."""
        return self.upper - self.lower

    def area(self) -> float:
        """Total envelope area ``Σ_i (upper_i - lower_i)``.

        The tie-breaking measure for insertion/split decisions.
        """
        return float(np.sum(self.upper - self.lower))

    def max_width(self) -> float:
        """Maximum envelope width (a Chebyshev-flavoured size measure)."""
        return float(np.max(self.upper - self.lower))

    def __repr__(self) -> str:
        return f"MBTS(length={self.length}, area={self.area():.4g})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, MBTS):
            return NotImplemented
        return np.array_equal(self.upper, other.upper) and np.array_equal(
            self.lower, other.lower
        )

    def __hash__(self):  # pragma: no cover - mutable, unhashable by design
        raise TypeError("MBTS is mutable and unhashable")

    # ------------------------------------------------------------------
    # Containment and distances
    # ------------------------------------------------------------------
    def contains(self, sequence: npt.ArrayLike) -> bool:
        """True when ``lower_i <= sequence_i <= upper_i`` for all ``i``."""
        sequence = as_float_array(sequence, name="sequence")
        self._check_length(sequence.size)
        return bool(
            np.all(sequence <= self.upper) and np.all(sequence >= self.lower)
        )

    def contains_mbts(self, other: "MBTS") -> bool:
        """True when ``other``'s envelope lies fully inside this one."""
        self._check_length(other.length)
        return bool(
            np.all(other.upper <= self.upper) and np.all(other.lower >= self.lower)
        )

    def distance_to_sequence(self, sequence: npt.ArrayLike) -> float:
        """Equation 2: how far ``sequence`` pokes outside the envelope."""
        sequence = as_float_array(sequence, name="sequence")
        self._check_length(sequence.size)
        above = sequence - self.upper
        below = self.lower - sequence
        return float(max(np.max(above), np.max(below), 0.0))

    def distance_to_sequence_exceeds(self, sequence: npt.ArrayLike, epsilon: float) -> bool:
        """Early-abandoning form of Lemma 1's check ``d(Q, B) > ε``.

        Scans timestamps and stops at the first excursion beyond
        ``epsilon`` (the per-node acceleration noted in Section 5.3).
        """
        sequence = as_float_array(sequence, name="sequence")
        self._check_length(sequence.size)
        upper = self.upper
        lower = self.lower
        for i in range(sequence.size):
            value = sequence[i]
            if value - upper[i] > epsilon or lower[i] - value > epsilon:
                return True
        return False

    def gap_to(self, other: "MBTS") -> float:
        """Equation 3: the Chebyshev gap between two envelopes.

        Zero when the envelopes overlap at every timestamp.
        """
        self._check_length(other.length)
        gap_a = self.lower - other.upper
        gap_b = other.lower - self.upper
        return float(max(np.max(gap_a), np.max(gap_b), 0.0))

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def expand_to_include(self, sequence: npt.ArrayLike) -> None:
        """Grow the envelope (in place) to cover ``sequence``."""
        sequence = as_float_array(sequence, name="sequence")
        self._check_length(sequence.size)
        np.maximum(self.upper, sequence, out=self.upper)
        np.minimum(self.lower, sequence, out=self.lower)

    def expand_fast(self, sequence: np.ndarray) -> None:
        """Unvalidated :meth:`expand_to_include` for hot insert paths.

        ``sequence`` must already be a float64 array of matching length;
        the TS-Index insert loop guarantees this.
        """
        np.maximum(self.upper, sequence, out=self.upper)
        np.minimum(self.lower, sequence, out=self.lower)

    def expand_to_include_mbts(self, other: "MBTS") -> None:
        """Grow the envelope (in place) to cover another MBTS."""
        self._check_length(other.length)
        np.maximum(self.upper, other.upper, out=self.upper)
        np.minimum(self.lower, other.lower, out=self.lower)

    def union(self, other: "MBTS") -> "MBTS":
        """A new MBTS covering both envelopes."""
        self._check_length(other.length)
        return MBTS(
            np.maximum(self.upper, other.upper),
            np.minimum(self.lower, other.lower),
        )

    def enlargement_for_sequence(self, sequence: npt.ArrayLike) -> float:
        """Area growth if ``sequence`` were included (split metric).

        ``Σ_i max(s_i - u_i, 0) + max(ℓ_i - s_i, 0)`` — the R-tree style
        total enlargement documented in DESIGN.md §5.
        """
        sequence = as_float_array(sequence, name="sequence")
        self._check_length(sequence.size)
        above = np.maximum(sequence - self.upper, 0.0)
        below = np.maximum(self.lower - sequence, 0.0)
        return float(np.sum(above) + np.sum(below))

    def enlargement_for_mbts(self, other: "MBTS") -> float:
        """Area growth if ``other``'s envelope were included."""
        self._check_length(other.length)
        above = np.maximum(other.upper - self.upper, 0.0)
        below = np.maximum(self.lower - other.lower, 0.0)
        return float(np.sum(above) + np.sum(below))

    def max_enlargement_for_sequence(self, sequence: npt.ArrayLike) -> float:
        """Chebyshev-style enlargement: the largest single-timestamp
        excursion. Equal to Eq. 2's distance; exposed under this name for
        the split-metric ablation."""
        return self.distance_to_sequence(sequence)

    # ------------------------------------------------------------------
    def _check_length(self, other_length: int) -> None:
        if other_length != self.length:
            raise InvalidParameterError(
                f"length mismatch: MBTS covers {self.length} timestamps, "
                f"operand has {other_length}"
            )


def mbts_of(sequences: npt.ArrayLike) -> MBTS:
    """Convenience wrapper over :meth:`MBTS.from_sequences`."""
    return MBTS.from_sequences(sequences)


def sequence_mbts_distance(sequence: npt.ArrayLike, mbts: MBTS) -> float:
    """Functional form of Equation 2 (``d(S, B)``)."""
    return mbts.distance_to_sequence(sequence)


def mbts_gap_distance(first: MBTS, second: MBTS) -> float:
    """Functional form of Equation 3 (``d(B1, B2)``)."""
    return first.gap_to(second)
