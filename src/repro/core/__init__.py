"""Core building blocks: series, windows, distances, MBTS and TS-Index.

This subpackage holds the paper's primary contribution (the TS-Index,
Section 5, plus its read-optimized frozen form in
:mod:`~repro.core.frozen`) together with the substrate every search
method shares: the time-series container, the sliding-window extractor
with its three normalization regimes, the Chebyshev/Euclidean distance
kernels, the Minimum Bounding Time Series geometry, and the shared
filter/verification machinery (Section 3.2).
"""

from .batch import BatchResult, search_batch
from .collection import CollectionIndex, CollectionMatch
from .distance import (
    chebyshev_distance,
    chebyshev_distance_early_abandon,
    chebyshev_matches,
    chebyshev_profile,
    euclidean_distance,
    lp_distance,
    pairwise_chebyshev,
)
from .events import MatchGroup, event_positions, group_matches
from .frozen import FrozenTSIndex
from .mbts import MBTS, mbts_gap_distance, mbts_of, sequence_mbts_distance
from .normalization import (
    Normalization,
    rolling_mean,
    rolling_std,
    znormalize,
    znormalize_window,
)
from .series import TimeSeries
from .stats import BuildStats, QueryStats, SearchResult
from .tsindex import TSIndex, TSIndexParams
from .verification import (
    VERIFICATION_MODES,
    verify,
    verify_intervals,
    verify_positions,
    verify_positions_blocked,
    verify_positions_per_candidate,
)
from .windows import WindowSource

__all__ = [
    "MBTS",
    "BatchResult",
    "BuildStats",
    "CollectionIndex",
    "CollectionMatch",
    "FrozenTSIndex",
    "MatchGroup",
    "Normalization",
    "QueryStats",
    "SearchResult",
    "TSIndex",
    "TSIndexParams",
    "TimeSeries",
    "VERIFICATION_MODES",
    "WindowSource",
    "chebyshev_distance",
    "chebyshev_distance_early_abandon",
    "chebyshev_matches",
    "chebyshev_profile",
    "euclidean_distance",
    "event_positions",
    "group_matches",
    "lp_distance",
    "mbts_gap_distance",
    "mbts_of",
    "pairwise_chebyshev",
    "rolling_mean",
    "search_batch",
    "rolling_std",
    "sequence_mbts_distance",
    "verify",
    "verify_intervals",
    "verify_positions",
    "verify_positions_blocked",
    "verify_positions_per_candidate",
    "znormalize",
    "znormalize_window",
]
