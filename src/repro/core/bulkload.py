"""Bottom-up bulk loading for TS-Index (extension; see DESIGN.md §5).

The paper constructs TS-Index by sequential insertion. For long series
this dominates build time, so — in the spirit of iSAX 2.0 / Coconut,
which the paper cites as the corresponding evolution for SAX indices —
we provide a bottom-up bulk loader: order the windows, pack consecutive
runs into leaves, then stack internal levels until a single root
remains. The resulting tree answers queries with the exact same
machinery (and the same correctness guarantees — Lemma 1 only needs
nodes' MBTS to cover their subtrees, which holds by construction).

Three orderings are offered:

* ``position`` — natural order; neighbouring windows overlap in
  ``l - 1`` points, so consecutive runs are tight for smooth series;
* ``mean`` — sort by window mean (KV-Index's grouping criterion);
* ``paa`` — lexicographic on a coarse PAA word (Coconut-style sortable
  summaries).

The ablation benchmark ``bench_ablation_bulkload`` compares build time
and query time across orderings and against sequential insertion.
"""

from __future__ import annotations

import time

import numpy as np
import numpy.typing as npt

from .._util import POSITION_DTYPE, check_positive_int
from ..exceptions import InvalidParameterError
from .mbts import MBTS
from .normalization import Normalization
from .stats import BuildStats
from .tsindex import TSIndex, TSIndexParams, _Node, _union_of
from .windows import WindowSource

__all__ = ["BULK_ORDERINGS", "bulk_load", "bulk_load_source"]

#: Supported orderings.
BULK_ORDERINGS = ("position", "mean", "paa")

#: Default leaf/internal fill as a fraction of ``max_children``; keeping
#: headroom lets subsequent incremental inserts avoid immediate splits.
DEFAULT_FILL_FRACTION = 0.75


def bulk_load(
    series: npt.ArrayLike,
    length: int,
    *,
    normalization: Normalization | str = Normalization.GLOBAL,
    params: TSIndexParams | None = None,
    ordering: str = "position",
    paa_segments: int = 5,
    fill_fraction: float = DEFAULT_FILL_FRACTION,
) -> TSIndex:
    """Build a TS-Index bottom-up over all windows of ``series``."""
    source = WindowSource(series, length, normalization)
    return bulk_load_source(
        source,
        params=params,
        ordering=ordering,
        paa_segments=paa_segments,
        fill_fraction=fill_fraction,
    )


def bulk_load_source(
    source: WindowSource,
    *,
    params: TSIndexParams | None = None,
    ordering: str = "position",
    paa_segments: int = 5,
    fill_fraction: float = DEFAULT_FILL_FRACTION,
) -> TSIndex:
    """Bulk load from a prepared :class:`WindowSource`."""
    params = params or TSIndexParams()
    if ordering not in BULK_ORDERINGS:
        raise InvalidParameterError(
            f"ordering must be one of {BULK_ORDERINGS}, got {ordering!r}"
        )
    if not 0.0 < fill_fraction <= 1.0:
        raise InvalidParameterError(
            f"fill_fraction must be in (0, 1], got {fill_fraction}"
        )
    fill = max(
        params.min_children,
        min(params.max_children, int(round(params.max_children * fill_fraction))),
    )

    started = time.perf_counter()
    order = _ordered_positions(source, ordering, paa_segments)
    leaves = _build_leaves(source, order, fill, params)
    root, height = _stack_levels(leaves, fill)
    stats = BuildStats(
        seconds=time.perf_counter() - started,
        windows=source.count,
        splits=0,
        height=height,
        nodes=_count_nodes(root),
    )
    return TSIndex._from_prebuilt_root(source, root, params, stats)


def _ordered_positions(
    source: WindowSource, ordering: str, paa_segments: int
) -> np.ndarray:
    positions = np.arange(source.count, dtype=POSITION_DTYPE)
    if ordering == "position":
        return positions
    if ordering == "mean":
        return positions[np.argsort(source.means(), kind="stable")]
    # "paa": lexicographic sort on a coarse PAA word of each window.
    paa_segments = check_positive_int(paa_segments, name="paa_segments")
    paa_segments = min(paa_segments, source.length)
    from ..indices.paa import paa_matrix  # deferred: indices depends on core

    word = paa_matrix(source, paa_segments)
    # lexsort sorts by the *last* key first; feed columns reversed so the
    # first PAA segment is the primary key.
    keys = tuple(word[:, column] for column in reversed(range(word.shape[1])))
    return positions[np.lexsort(keys)]


def _build_leaves(
    source: WindowSource,
    order: np.ndarray,
    fill: int,
    params: TSIndexParams,
) -> list[_Node]:
    leaves: list[_Node] = []
    total = order.size
    for start in range(0, total, fill):
        stop = min(start + fill, total)
        # Avoid creating a final leaf below the minimum capacity: borrow
        # from the previous leaf by re-splitting the tail evenly.
        if 0 < total - start < params.min_children and leaves:
            tail = np.concatenate(
                (np.asarray(leaves[-1].positions, dtype=POSITION_DTYPE), order[start:stop])
            )
            leaves.pop()
            if tail.size >= 2 * params.min_children:
                half = max(params.min_children, tail.size // 2)
                chunks = (tail[:half], tail[half:])
            else:
                chunks = (tail,)
            for chunk in chunks:
                matrix = source.windows(chunk)
                leaves.append(
                    _Node(MBTS.from_sequences(matrix), positions=chunk.tolist())
                )
            break
        chunk = order[start:stop]
        matrix = source.windows(chunk)
        leaves.append(_Node(MBTS.from_sequences(matrix), positions=chunk.tolist()))
    return leaves


def _stack_levels(nodes: list[_Node], fill: int) -> tuple[_Node, int]:
    height = 1
    while len(nodes) > 1:
        parents: list[_Node] = []
        for start in range(0, len(nodes), fill):
            group = nodes[start : start + fill]
            # Never leave a singleton parent group unless it is the root.
            if len(group) == 1 and parents:
                parents[-1].children.extend(group)
                parents[-1].mbts = _union_of(parents[-1].children)
                parents[-1].invalidate_cache()
                continue
            parents.append(_Node(_union_of(group), children=group))
        nodes = parents
        height += 1
    return nodes[0], height


def _count_nodes(root: _Node) -> int:
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        if not node.is_leaf:
            stack.extend(node.children)
    return count
