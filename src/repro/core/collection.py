"""Twin search over a *collection* of time series.

The paper indexes a single series; the broader iSAX literature it
builds on (Section 2) indexes collections. ``CollectionIndex`` is the
fan-out facade: one index per member series (any registered method) and
query routing that merges per-series answers into globally-ranked
results tagged with their series of origin.

Fan-out is exact: a window exists in exactly one member series, so the
union of per-series answers is the collection answer, and k-NN merges
per-series top-k lists.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

import numpy.typing as npt

from .._util import check_non_negative, check_positive_int
from ..exceptions import InvalidParameterError
from .normalization import Normalization
from .series import TimeSeries
from .stats import QueryStats


@dataclasses.dataclass(frozen=True)
class CollectionMatch:
    """One twin found in a collection: which series, where, how far."""

    series_id: int
    position: int
    distance: float


class CollectionIndex:
    """Per-series indices + exact fan-out search over a collection.

    Parameters
    ----------
    collection:
        A sequence of 1-D series (lengths may differ; each must be at
        least ``length`` long).
    length:
        Window length ``l`` shared by all member indices.
    normalization:
        Regime applied *per series* (GLOBAL normalizes each member by
        its own statistics, the convention of multi-series archives).
    method:
        Any name accepted by :func:`repro.indices.base.create_method`
        (default: the paper's TS-Index).
    """

    def __init__(
        self,
        collection: Iterable[TimeSeries | npt.ArrayLike],
        length: int,
        *,
        normalization: Normalization | str = Normalization.GLOBAL,
        method: str = "tsindex",
        **method_options: Any,
    ):
        from ..indices.base import create_method

        length = check_positive_int(length, name="length")
        members = [
            series if isinstance(series, TimeSeries) else TimeSeries(series)
            for series in collection
        ]
        if not members:
            raise InvalidParameterError("collection must not be empty")
        for series_id, series in enumerate(members):
            if len(series) < length:
                raise InvalidParameterError(
                    f"series {series_id} has {len(series)} points, "
                    f"shorter than the window length {length}"
                )
        self._length = length
        self._indices = [
            create_method(
                method, series, length,
                normalization=normalization, **method_options,
            )
            for series in members
        ]

    # ------------------------------------------------------------------
    @property
    def length(self) -> int:
        """The shared window length."""
        return self._length

    @property
    def series_count(self) -> int:
        """Number of member series."""
        return len(self._indices)

    @property
    def window_count(self) -> int:
        """Total windows across the collection."""
        return sum(index.source.count for index in self._indices)

    def member(self, series_id: int) -> Any:
        """The underlying index of one member series."""
        return self._indices[series_id]

    def __repr__(self) -> str:
        return (
            f"CollectionIndex(series={self.series_count}, "
            f"windows={self.window_count}, length={self._length})"
        )

    # ------------------------------------------------------------------
    def search(self, query: npt.ArrayLike, epsilon: float) -> list[CollectionMatch]:
        """All twins of ``query`` anywhere in the collection.

        Results are sorted by ``(series_id, position)``.
        """
        epsilon = check_non_negative(epsilon, name="epsilon")
        matches: list[CollectionMatch] = []
        for series_id, index in enumerate(self._indices):
            result = index.search(query, epsilon)
            for position, distance in result:
                matches.append(
                    CollectionMatch(
                        series_id=series_id,
                        position=int(position),
                        distance=float(distance),
                    )
                )
        return matches

    def knn(self, query: npt.ArrayLike, k: int) -> list[CollectionMatch]:
        """The ``k`` nearest windows across the whole collection.

        Every member answers — natively (TS-Index) or through the
        query planner's exact-scan synthesis (sweepline, KV-Index,
        iSAX); per-series top-k lists are merged and re-ranked
        globally.
        """
        k = check_positive_int(k, name="k")
        candidates: list[CollectionMatch] = []
        for series_id, index in enumerate(self._indices):
            local_k = min(k, index.source.count)
            result = index.knn(query, local_k)
            for position, distance in result:
                candidates.append(
                    CollectionMatch(
                        series_id=series_id,
                        position=int(position),
                        distance=float(distance),
                    )
                )
        candidates.sort(key=lambda m: (m.distance, m.series_id, m.position))
        return candidates[:k]

    def count(self, query: npt.ArrayLike, epsilon: float) -> int:
        """Total twins across the collection."""
        return len(self.search(query, epsilon))

    def count_per_series(self, query: npt.ArrayLike, epsilon: float) -> list[int]:
        """Twin count per member series (ranking which series contain
        the pattern — the cross-archive use case)."""
        epsilon = check_non_negative(epsilon, name="epsilon")
        return [
            len(index.search(query, epsilon)) for index in self._indices
        ]

    def aggregate_stats(self, query: npt.ArrayLike, epsilon: float) -> QueryStats:
        """Merged structural counters across members for one query."""
        epsilon = check_non_negative(epsilon, name="epsilon")
        total = QueryStats()
        for index in self._indices:
            total = total.merge(index.search(query, epsilon).stats)
        return total
