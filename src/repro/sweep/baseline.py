"""Baseline comparison: gate a fresh sweep (or any ``BENCH_*.json``)
against a committed artifact with per-metric relative thresholds.

Artifacts are flattened to dotted numeric paths, the *gated* subset —
latency-shaped metrics only, never environment metadata, configuration
echoes, raw signal counts or dispersion statistics — is intersected
between current and baseline, and each shared path is checked for
relative regression. Central-tendency metrics (mean/median/p50) get the
default threshold; tail metrics (p99/max), which are legitimately an
order of magnitude noisier at sweep repetition counts, get a wider one.
A comparison of an artifact against itself always passes with zero
regressions — the determinism contract ``repro sweep compare`` gates
in CI.
"""

from __future__ import annotations

import re
from typing import Any

from ..exceptions import InvalidParameterError

#: Relative regression threshold (percent) for central-tendency metrics.
DEFAULT_THRESHOLD_PCT = 25.0

#: Wider threshold (percent) for tail metrics (p99, max).
TAIL_THRESHOLD_PCT = 60.0

#: Path segments that exclude a subtree from gating: metadata,
#: configuration echoes and observability signal counts are recorded
#: for forensics, not gated as performance.
EXCLUDED_SEGMENTS = frozenset(
    {"meta", "spec", "params", "config", "signals", "ops", "schema"}
)

#: Leaf names that are never gated even inside a gated subtree —
#: dispersion/support statistics, not performance levels.
EXCLUDED_LEAVES = frozenset(
    {"n", "count", "stdev", "ci95", "min", "share", "traces",
     "repetitions", "warmup", "scenario_count", "epsilon",
     "results_returned"}
)

#: Leaf names gated as central-tendency latency metrics.
CENTRAL_LEAVES = frozenset({"mean", "median", "p50", "mean_ms", "p50_ms"})

#: Leaf names gated with the wider tail threshold.
TAIL_LEAVES = frozenset({"p99", "max", "p99_ms"})

#: Leaves matching this are time-valued even outside a summary block
#: (e.g. a legacy artifact's ``single_query_ms``).
_TIME_LEAF = re.compile(r"(^|_)(ms|seconds|sec|s)($|_)|_ms$|_seconds$")


def flatten(payload: Any, prefix: str = "") -> dict:
    """``{dotted.path: float}`` for every numeric leaf (bools are not
    numbers here; lists index numerically)."""
    flat: dict = {}
    if isinstance(payload, dict):
        items = payload.items()
    elif isinstance(payload, (list, tuple)):
        items = enumerate(payload)
    else:
        items = ()
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            flat[path] = float(value)
        elif isinstance(value, (dict, list, tuple)):
            flat.update(flatten(value, path))
    return flat


def gated_threshold(path: str) -> float | None:
    """The regression threshold (percent) for ``path``, or ``None``
    when the path is not performance-gated."""
    segments = path.split(".")
    if any(segment in EXCLUDED_SEGMENTS for segment in segments):
        return None
    leaf = segments[-1]
    if leaf in EXCLUDED_LEAVES:
        return None
    if leaf in TAIL_LEAVES:
        return TAIL_THRESHOLD_PCT
    if leaf in CENTRAL_LEAVES:
        return DEFAULT_THRESHOLD_PCT
    if _TIME_LEAF.search(leaf):
        return DEFAULT_THRESHOLD_PCT
    return None


def compare_artifacts(
    current: dict, baseline: dict, *, threshold_scale: float = 1.0
) -> dict:
    """Compare two artifact payloads (``read_artifact`` output shape).

    Only paths present in *both* artifacts are compared — scenario sets
    may evolve; a disappeared path is reported in ``missing`` /
    ``added`` counts, never as a regression. Returns ``{"passed",
    "compared", "regressions", "verdicts", "missing", "added"}`` where
    each verdict is ``{path, baseline, current, delta_pct,
    threshold_pct, regressed}``.
    """
    threshold_scale = float(threshold_scale)
    if threshold_scale <= 0:
        raise InvalidParameterError(
            f"threshold_scale must be > 0, got {threshold_scale}"
        )
    flat_current = flatten(current)
    flat_baseline = flatten(baseline)
    gated_current = {
        path for path in flat_current if gated_threshold(path) is not None
    }
    gated_baseline = {
        path for path in flat_baseline if gated_threshold(path) is not None
    }
    shared = sorted(gated_current & gated_baseline)

    verdicts = []
    for path in shared:
        threshold = gated_threshold(path) * threshold_scale
        base = flat_baseline[path]
        now = flat_current[path]
        if base <= 0.0:
            # No meaningful relative delta off a zero/negative base; a
            # sub-microsecond level is noise either way.
            delta_pct = 0.0 if now <= 1e-6 else float("inf")
        else:
            delta_pct = 100.0 * (now - base) / base
        verdicts.append(
            {
                "path": path,
                "baseline": base,
                "current": now,
                "delta_pct": delta_pct,
                "threshold_pct": threshold,
                "regressed": delta_pct > threshold,
            }
        )
    regressions = [v for v in verdicts if v["regressed"]]
    return {
        "passed": not regressions,
        "compared": len(verdicts),
        "regressions": len(regressions),
        "verdicts": verdicts,
        "missing": sorted(gated_baseline - gated_current),
        "added": sorted(gated_current - gated_baseline),
    }
