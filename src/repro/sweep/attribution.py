"""Stage attribution: where scenario wall-clock time actually goes.

The engine's sampled :class:`~repro.obs.trace.QueryTrace` objects carry
per-stage spans — ``prepare`` (planner), ``plan``, ``execute``,
``merge``, ``verify`` — plus per-shard / per-segment fan-out spans that
run *concurrently* on pool threads. :func:`attribute_traces` aggregates
a scenario's traces into one breakdown:

* **wall stages** — spans on the query's critical path, with the
  engine-level ``execute`` span's nested ``merge``/``verify`` time
  subtracted out so shares sum to (at most) 1.0 rather than
  double-counting, and an ``other`` bucket for untraced residue;
* **parts** — the fan-out spans (identified by a ``shard``/``segment``
  key in their meta), reported separately as parallel CPU seconds:
  their sum can legitimately exceed wall time and must not be folded
  into the wall breakdown.
"""

from __future__ import annotations

from typing import Any

#: Canonical wall-stage order for reports.
STAGE_ORDER = ("prepare", "plan", "execute", "merge", "verify", "other")

#: Meta keys marking a span as a concurrent fan-out part.
PART_META_KEYS = ("shard", "segment")


def _is_part(span: dict) -> bool:
    meta = span.get("meta") or {}
    return any(key in meta for key in PART_META_KEYS)


def attribute_traces(traces: Any) -> dict:
    """Aggregate trace dicts (``QueryTrace.as_dict()`` shape) into a
    per-stage breakdown.

    Returns ``{"traces": n, "wall_s": ..., "stages": {name: {"total_s",
    "mean_ms", "share"}}, "parts": {...}}`` with stages in
    :data:`STAGE_ORDER`. Empty input yields zeroed stages so reports
    stay structurally stable.
    """
    traces = [
        trace.as_dict() if hasattr(trace, "as_dict") else trace
        for trace in traces
    ]
    wall = sum(float(trace.get("duration_s", 0.0)) for trace in traces)
    stage_totals = {name: 0.0 for name in STAGE_ORDER}
    part_totals: dict = {}
    for trace in traces:
        for span in trace.get("spans", ()):
            name = span.get("name", "")
            duration = float(span.get("duration_s", 0.0))
            if _is_part(span):
                part_totals[name] = part_totals.get(name, 0.0) + duration
            elif name in stage_totals:
                stage_totals[name] += duration
    # The engine's "execute" span wraps the plane's merge/verify work;
    # keep only its exclusive time so stage shares don't double-count.
    stage_totals["execute"] = max(
        0.0,
        stage_totals["execute"] - stage_totals["merge"] - stage_totals["verify"],
    )
    accounted = sum(
        stage_totals[name] for name in STAGE_ORDER if name != "other"
    )
    stage_totals["other"] = max(0.0, wall - accounted)

    count = len(traces)
    stages = {
        name: {
            "total_s": stage_totals[name],
            "mean_ms": 1000.0 * stage_totals[name] / count if count else 0.0,
            "share": stage_totals[name] / wall if wall > 0 else 0.0,
        }
        for name in STAGE_ORDER
    }
    parts = {
        name: {
            "total_s": total,
            "mean_ms": 1000.0 * total / count if count else 0.0,
        }
        for name, total in sorted(part_totals.items())
    }
    return {"traces": count, "wall_s": wall, "stages": stages, "parts": parts}
