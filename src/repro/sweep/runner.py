"""The sweep runner: execute every scenario of a spec and harvest
latency samples *and* observability signals.

Each scenario gets a fully isolated serving stack: its own
:class:`~repro.obs.MetricsRegistry` (installed as the process default
for the scenario's duration, so live-plane instrumentation — seals,
compactions, ingest lag — lands in it too), its own
:class:`~repro.engine.QueryEngine` tracing every query, and its own
deterministically seeded workload. Repetition timings come from
:func:`repro.bench.timing.sample_seconds` (un-timed warmup, one sample
per repetition); metric deltas come from
:meth:`~repro.obs.MetricsRegistry.snapshot` pairs around the timed
region via :func:`~repro.obs.snapshot_delta`; stage attribution comes
from the engine's sampled traces. A scenario's optional chaos arm
re-uses :mod:`repro.faults.failpoints` on the plane's fan-out site and
counts surfaced failures as a signal rather than aborting the sweep.
"""

from __future__ import annotations

import contextlib
import random
import shutil
import tempfile
from typing import Any

import numpy as np

from ..bench.timing import sample_seconds
from ..data import synthetic
from ..engine import QueryEngine
from ..exceptions import InvalidParameterError, ReproError
from ..faults import failpoints
from ..live import LiveTwinIndex
from ..obs import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
    snapshot_delta,
)
from .attribution import attribute_traces
from .spec import MIX_KINDS, Scenario, SweepSpec
from .stats import histogram_delta_summary, merge_histogram_samples, summarize

#: The plane name every scenario registers its index under.
PLANE_NAME = "sweep"

#: k for the workload's k-NN ops.
KNN_K = 5

#: Bernoulli firing probability of a scenario's chaos arm.
CHAOS_PROBABILITY = 0.1

#: Failpoint site per plane for the ``"search"`` chaos arm.
CHAOS_SEARCH_SITES = {"sharded": "shard.search", "live": "segment.search"}


def base_epsilon(series: Any) -> float:
    """The scenario's ε unit: half the series' global standard
    deviation — the same calibration the chaos harness uses, selective
    at scale 1 and permissive by scale ~4 on the synthetic generators."""
    return 0.5 * float(np.std(np.asarray(series, dtype=np.float64)))


def build_workload(scenario: Scenario) -> list:
    """The deterministic, interleaved op list for one repetition.

    Each op is ``(kind, positions)``: single-position tuples for
    ``search`` / ``varlength`` / ``knn``, ``batch_size`` positions for
    a ``batch`` op. Positions and interleaving order derive only from
    the scenario's parameter digest, so the same scenario always
    replays the same workload.
    """
    rng = random.Random(scenario.workload_seed())
    window_count = scenario.windows
    counts = scenario.mix.counts(scenario.operations)
    ops = []
    for kind in MIX_KINDS:
        for _ in range(counts[kind]):
            draws = scenario.batch_size if kind == "batch" else 1
            positions = tuple(
                rng.randrange(window_count) for _ in range(draws)
            )
            ops.append((kind, positions))
    rng.shuffle(ops)
    return ops


def _build_live_plane(scenario: Scenario, series: Any, directory: Any) -> Any:
    """A live plane fed incrementally so seals (and, with a small
    ``max_segments``, compactions) actually happen during setup."""
    index = LiveTwinIndex.create(
        directory,
        series[: scenario.length],
        length=scenario.length,
        normalization="none",
        seal_threshold=scenario.seal_threshold or 4096,
        max_segments=4,
        background_compaction=False,
        fsync=False,
    )
    chunk = max(1, (scenario.seal_threshold or 4096) // 2)
    remaining = series[scenario.length:]
    for start in range(0, len(remaining), chunk):
        index.append(remaining[start:start + chunk])
    index.compact(timeout=60.0)
    return index


class _ScenarioStack(contextlib.ExitStack):
    """Per-scenario serving stack: registry, engine, plane, temp dirs —
    all torn down (and the process default registry restored) however
    the scenario exits."""

    def __init__(self, scenario: Scenario, series: Any) -> None:
        super().__init__()
        self.registry = MetricsRegistry("sweep")
        previous = default_registry()
        set_default_registry(self.registry)
        self.callback(set_default_registry, previous)
        self.engine = QueryEngine(
            metrics=self.registry, trace_capacity=512, trace_sample=1.0
        )
        self.callback(self.engine.close)
        if scenario.plane == "live":
            directory = tempfile.mkdtemp(prefix="repro-sweep-live-")
            self.callback(shutil.rmtree, directory, True)
            index = _build_live_plane(scenario, series, directory)
            self.callback(index.close)
            self.engine.add_live(PLANE_NAME, index)
        else:
            options = {}
            if scenario.plane == "sharded" and scenario.shards:
                options["shards"] = scenario.shards
            self.engine.build(
                PLANE_NAME,
                series,
                scenario.length,
                method=scenario.plane,
                normalization="none",
                **options,
            )


class _WorkloadRunner:
    """Executes one repetition of a scenario's op list, tolerating (and
    counting) failures surfaced by the chaos arm."""

    def __init__(
        self, scenario: Scenario, engine: Any, series: Any, epsilon: float
    ) -> None:
        self.scenario = scenario
        self.engine = engine
        self.series = series
        self.epsilon = epsilon
        self.ops = build_workload(scenario)
        self.failures = 0
        self.results = 0

    def _query_values(self, position: int, length: int) -> Any:
        return self.series[position:position + length]

    def _execute(self, kind: str, positions: Any) -> None:
        length = self.scenario.length
        if kind == "search":
            result = self.engine.query(
                PLANE_NAME, self._query_values(positions[0], length),
                self.epsilon, use_cache=False,
            )
        elif kind == "varlength":
            result = self.engine.query(
                PLANE_NAME,
                self._query_values(positions[0], max(2, length // 2)),
                self.epsilon, use_cache=False,
            )
        elif kind == "knn":
            result = self.engine.knn(
                PLANE_NAME, self._query_values(positions[0], length), KNN_K
            )
        elif kind == "batch":
            batch = self.engine.batch(
                PLANE_NAME,
                [self._query_values(p, length) for p in positions],
                self.epsilon, use_cache=False,
            )
            self.results += sum(len(r) for r in batch)
            return
        else:  # pragma: no cover - guarded by MIX_KINDS
            raise InvalidParameterError(f"unknown op kind {kind!r}")
        self.results += len(result)

    def run_once(self) -> None:
        for kind, positions in self.ops:
            try:
                self._execute(kind, positions)
            except (ReproError, OSError):
                self.failures += 1


def _counter_total(delta: dict, name: str) -> float:
    entry = delta.get(name)
    if not entry:
        return 0.0
    return float(sum(entry["samples"].values()))


def _gauge_value(snapshot: dict, name: str) -> float:
    entry = snapshot.get(name)
    if not entry or not entry["samples"]:
        return 0.0
    return float(next(iter(entry["samples"].values())))


def _chaos_site(scenario: Scenario) -> str | None:
    if scenario.chaos == "search":
        return CHAOS_SEARCH_SITES.get(scenario.plane)
    return None


def run_scenario(
    scenario: Scenario, *, repetitions: int, warmup: int
) -> dict:
    """Run one scenario: build its stack, time ``repetitions`` workload
    replays, and return the full per-scenario record."""
    series = synthetic.insect_like(
        scenario.windows + scenario.length - 1, seed=scenario.seed
    )
    epsilon = scenario.epsilon_scale * base_epsilon(series)

    with _ScenarioStack(scenario, series) as stack:
        engine = stack.engine
        runner = _WorkloadRunner(scenario, engine, series, epsilon)

        site = _chaos_site(scenario)
        if site is not None:
            stack.callback(failpoints.disarm, site)
            failpoints.arm(
                site,
                error="io",
                probability=CHAOS_PROBABILITY,
                seed=scenario.workload_seed() & 0xFFFF,
            )

        # Warmup replays run through sample_seconds below (warmup=...),
        # but the traces and metric deltas must cover only the timed
        # region — snapshot after warmup, clear the trace ring.
        for _ in range(int(warmup)):
            runner.run_once()
        engine.tracer.clear()
        runner.failures = 0
        runner.results = 0
        before = stack.registry.snapshot()

        samples = sample_seconds(
            runner.run_once, repetitions=repetitions, warmup=0
        )

        traces = [trace.as_dict() for trace in engine.traces()]
        timed_failures = runner.failures
        timed_results = runner.results

        # A short cached replay so the cache-hit-rate gauge reflects
        # real repeat traffic (the timed region runs cache-cold).
        replay = [
            positions[0]
            for kind, positions in runner.ops
            if kind == "search"
        ][:4]
        for _ in range(2):
            for position in replay:
                try:
                    engine.query(
                        PLANE_NAME,
                        series[position:position + scenario.length],
                        epsilon,
                        use_cache=True,
                    )
                except (ReproError, OSError):
                    pass

        after = stack.registry.snapshot()
        delta = snapshot_delta(before, after)

        latency_entry = delta.get("repro_engine_query_seconds", {})
        merged = merge_histogram_samples(latency_entry)
        query_ms = histogram_delta_summary(
            merged, latency_entry.get("le", ())
        )

        signals = {
            "queries_total": _counter_total(
                delta, "repro_engine_queries_total"
            ),
            "cache_hit_rate": _gauge_value(
                after, "repro_engine_cache_hit_rate"
            ),
            "ingest_lag_readings": _gauge_value(
                after, "repro_live_ingest_lag_readings"
            ),
            "seals_total": _counter_total(
                after, "repro_live_seals_total"
            ),
            "compactions_total": _counter_total(
                after, "repro_live_compactions_total"
            ),
            "chaos_failures": timed_failures,
        }

    ops_counts = scenario.mix.counts(scenario.operations)
    return {
        "id": scenario.scenario_id,
        "params": scenario.params(),
        "repetitions": int(repetitions),
        "warmup": int(warmup),
        "epsilon": epsilon,
        "ops": ops_counts,
        "results_returned": timed_results,
        "repetition_seconds": summarize(samples),
        "query_ms": query_ms,
        "signals": signals,
        "stages": attribute_traces(traces),
    }


def run_sweep(
    spec: SweepSpec,
    *,
    repetitions: int | None = None,
    warmup: int | None = None,
    progress: Any = None,
) -> dict:
    """Run every scenario of ``spec`` and return the sweep result
    (scenarios ordered by ID, so reports and artifacts are stable).

    ``progress`` — optional ``callable(index, total, scenario_id)``
    invoked before each scenario (the CLI prints from it).
    """
    repetitions = (
        spec.repetitions if repetitions is None else int(repetitions)
    )
    warmup = spec.warmup if warmup is None else int(warmup)
    if repetitions < 1:
        raise InvalidParameterError(
            f"repetitions must be >= 1, got {repetitions}"
        )
    if warmup < 0:
        raise InvalidParameterError(f"warmup must be >= 0, got {warmup}")

    scenarios = spec.expand()
    records = []
    for index, scenario in enumerate(scenarios):
        if progress is not None:
            progress(index, len(scenarios), scenario.scenario_id)
        records.append(
            run_scenario(scenario, repetitions=repetitions, warmup=warmup)
        )
    records.sort(key=lambda record: record["id"])
    return {
        "spec": spec.as_dict(),
        "repetitions": repetitions,
        "warmup": warmup,
        "scenario_count": len(records),
        "scenarios": records,
    }
