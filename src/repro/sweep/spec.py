"""Sweep specification: a declarative parameter grid over the serving
stack, expanded deterministically into stably-identified scenarios.

A :class:`SweepSpec` names the axes the paper's evaluation sweeps —
dataset size (windows), subsequence length ``l``, the ε radius (as a
scale on a measured k-NN base radius), shard count, seal threshold —
plus the serving-stack axes the paper could not have: which query
plane serves, the query-mix composition (full-length / variable-length
/ batch / k-NN fractions), and an optional chaos arm reusing
:mod:`repro.faults`. :meth:`SweepSpec.expand` walks the cross product
in a fixed order, collapses axes that do not apply to a plane (shards
on non-sharded planes, seal thresholds on non-live planes), drops
chaos arms the plane has no failpoint site for, and deduplicates — so
the same spec and seed always yield the same scenario list, in the
same order, with the same IDs.

Scenario IDs are the regression-tracking key: a readable prefix (plane,
windows, length, ε scale, mix, chaos) plus a short hash of *all*
parameters including the seed. Two runs of the same spec produce
identical IDs; any parameter change produces a new ID rather than a
silently incomparable row.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json

from ..exceptions import InvalidParameterError

#: Query-op kinds a mix apportions, in the fixed tie-break order used
#: by largest-remainder apportionment.
MIX_KINDS = ("search", "varlength", "batch", "knn")

#: Chaos arms the runner understands, and the planes each applies to
#: (the named failpoint site must exist on the plane's query/ingest
#: path for the arm to fire at all).
CHAOS_PLANES = {
    "search": ("sharded", "live"),
}


@dataclasses.dataclass(frozen=True)
class QueryMix:
    """The composition of one scenario's workload, as fractions.

    Fractions need not sum to 1 — they are normalized — but must be
    non-negative with a positive total. ``counts(n)`` apportions ``n``
    operations across the kinds deterministically (largest remainder,
    ties broken in :data:`MIX_KINDS` order), so a mix plus a workload
    size always yields the same op counts.
    """

    search: float = 1.0
    varlength: float = 0.0
    batch: float = 0.0
    knn: float = 0.0

    def __post_init__(self) -> None:
        fractions = self.as_tuple()
        if any(f < 0 for f in fractions):
            raise InvalidParameterError(
                f"mix fractions must be >= 0, got {fractions}"
            )
        if sum(fractions) <= 0:
            raise InvalidParameterError("mix fractions must not all be zero")

    def as_tuple(self) -> tuple:
        return tuple(float(getattr(self, kind)) for kind in MIX_KINDS)

    def counts(self, operations: int) -> dict:
        """Apportion ``operations`` ops across the kinds (sums exactly
        to ``operations``)."""
        operations = int(operations)
        if operations < 1:
            raise InvalidParameterError(
                f"operations must be >= 1, got {operations}"
            )
        fractions = self.as_tuple()
        total = sum(fractions)
        exact = [operations * f / total for f in fractions]
        counts = [int(e) for e in exact]
        remainders = sorted(
            range(len(MIX_KINDS)),
            key=lambda i: (-(exact[i] - counts[i]), i),
        )
        for i in remainders[: operations - sum(counts)]:
            counts[i] += 1
        return dict(zip(MIX_KINDS, counts))

    def label(self) -> str:
        """A compact slug (``search`` for the pure default, else e.g.
        ``mix-s50-v20-b20-k10`` in normalized percent)."""
        fractions = self.as_tuple()
        total = sum(fractions)
        percents = [round(100 * f / total) for f in fractions]
        if percents[0] == 100:
            return "search"
        return "mix-" + "-".join(
            f"{kind[0]}{pct}" for kind, pct in zip(MIX_KINDS, percents)
        )


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully-specified point of the sweep grid."""

    plane: str
    windows: int
    length: int
    epsilon_scale: float
    shards: int | None
    seal_threshold: int | None
    mix: QueryMix
    chaos: str | None
    operations: int
    batch_size: int
    seed: int

    def params(self) -> dict:
        """The JSON-able parameter record (stable key order via JSON
        serialization with sorted keys)."""
        return {
            "plane": self.plane,
            "windows": int(self.windows),
            "length": int(self.length),
            "epsilon_scale": float(self.epsilon_scale),
            "shards": self.shards if self.shards is None else int(self.shards),
            "seal_threshold": (
                self.seal_threshold
                if self.seal_threshold is None
                else int(self.seal_threshold)
            ),
            "mix": dict(zip(MIX_KINDS, self.mix.as_tuple())),
            "chaos": self.chaos,
            "operations": int(self.operations),
            "batch_size": int(self.batch_size),
            "seed": int(self.seed),
        }

    @property
    def scenario_id(self) -> str:
        """Readable prefix + 8-hex-digit parameter digest."""
        digest = hashlib.sha256(
            json.dumps(self.params(), sort_keys=True).encode("utf-8")
        ).hexdigest()[:8]
        parts = [
            self.plane,
            f"w{self.windows}",
            f"l{self.length}",
            f"e{self.epsilon_scale:g}",
            self.mix.label(),
        ]
        if self.shards is not None:
            parts.append(f"s{self.shards}")
        if self.seal_threshold is not None:
            parts.append(f"t{self.seal_threshold}")
        if self.chaos:
            parts.append(f"chaos_{self.chaos}")
        parts.append(digest)
        return "-".join(parts)

    def workload_seed(self) -> int:
        """The per-scenario RNG seed: derived from the full parameter
        digest, so distinct scenarios never share a query stream while
        the same scenario always reproduces its own."""
        digest = hashlib.sha256(
            json.dumps(self.params(), sort_keys=True).encode("utf-8")
        ).hexdigest()
        return int(digest[:12], 16)


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """The declarative grid; :meth:`expand` yields the scenario list.

    Axis tuples that do not apply to a plane are collapsed rather than
    multiplied: ``shards`` applies only to ``"sharded"``,
    ``seal_thresholds`` only to ``"live"``, and a chaos arm only to the
    planes in :data:`CHAOS_PLANES`. ``operations`` is the per-repetition
    workload size; ``repetitions``/``warmup`` are defaults the runner
    may override per run.
    """

    planes: tuple = ("sharded",)
    windows: tuple = (20_000,)
    lengths: tuple = (100,)
    epsilon_scales: tuple = (1.0,)
    shards: tuple = (None,)
    seal_thresholds: tuple = (None,)
    mixes: tuple = (QueryMix(),)
    chaos: tuple = (None,)
    operations: int = 32
    batch_size: int = 8
    repetitions: int = 5
    warmup: int = 1
    seed: int = 7

    def __post_init__(self) -> None:
        for axis in ("planes", "windows", "lengths", "epsilon_scales",
                     "shards", "seal_thresholds", "mixes", "chaos"):
            if not getattr(self, axis):
                raise InvalidParameterError(f"axis {axis!r} must be non-empty")
        for field in ("operations", "batch_size", "repetitions"):
            if int(getattr(self, field)) < 1:
                raise InvalidParameterError(
                    f"{field} must be >= 1, got {getattr(self, field)}"
                )
        if int(self.warmup) < 0:
            raise InvalidParameterError(
                f"warmup must be >= 0, got {self.warmup}"
            )
        for arm in self.chaos:
            if arm is not None and arm not in CHAOS_PLANES:
                raise InvalidParameterError(
                    f"unknown chaos arm {arm!r}; "
                    f"known: {sorted(CHAOS_PLANES)}"
                )

    def expand(self) -> list:
        """The deterministic scenario list (fixed product order, axes
        collapsed per plane, duplicates dropped)."""
        scenarios, seen = [], set()
        for plane, windows, length, scale, shard, seal, mix, arm in (
            itertools.product(
                self.planes, self.windows, self.lengths,
                self.epsilon_scales, self.shards, self.seal_thresholds,
                self.mixes, self.chaos,
            )
        ):
            if plane != "sharded":
                shard = None
            if plane != "live":
                seal = None
            if arm is not None and plane not in CHAOS_PLANES[arm]:
                continue
            scenario = Scenario(
                plane=plane,
                windows=int(windows),
                length=int(length),
                epsilon_scale=float(scale),
                shards=shard,
                seal_threshold=seal,
                mix=mix,
                chaos=arm,
                operations=int(self.operations),
                batch_size=int(self.batch_size),
                seed=int(self.seed),
            )
            if scenario.windows < 2 * scenario.length:
                raise InvalidParameterError(
                    f"windows={scenario.windows} is too small for "
                    f"length={scenario.length} (need >= 2*length)"
                )
            key = scenario.scenario_id
            if key in seen:
                continue
            seen.add(key)
            scenarios.append(scenario)
        return scenarios

    def as_dict(self) -> dict:
        """JSON-able form recorded in sweep artifacts."""
        return {
            "planes": list(self.planes),
            "windows": [int(w) for w in self.windows],
            "lengths": [int(length) for length in self.lengths],
            "epsilon_scales": [float(s) for s in self.epsilon_scales],
            "shards": [s if s is None else int(s) for s in self.shards],
            "seal_thresholds": [
                s if s is None else int(s) for s in self.seal_thresholds
            ],
            "mixes": [dict(zip(MIX_KINDS, mix.as_tuple())) for mix in self.mixes],
            "chaos": list(self.chaos),
            "operations": int(self.operations),
            "batch_size": int(self.batch_size),
            "repetitions": int(self.repetitions),
            "warmup": int(self.warmup),
            "seed": int(self.seed),
        }


#: The default mixed workload: half full-length searches, the rest
#: split across variable-length, batch and k-NN traffic.
MIXED = QueryMix(search=0.5, varlength=0.2, batch=0.2, knn=0.1)


def full_spec(seed: int = 7) -> SweepSpec:
    """The committed-artifact grid: 2 planes x 2 ε scales x 2 mixes
    (8 scenarios), 5 repetitions each at full scale."""
    return SweepSpec(
        planes=("sharded", "live"),
        windows=(30_000,),
        lengths=(100,),
        epsilon_scales=(1.0, 4.0),
        shards=(4,),
        seal_thresholds=(4096,),
        mixes=(QueryMix(), MIXED),
        chaos=(None,),
        operations=32,
        batch_size=8,
        repetitions=5,
        warmup=1,
        seed=seed,
    )


def smoke_spec(seed: int = 7) -> SweepSpec:
    """The CI grid: tiny planes, few repetitions, chaos arm included so
    the fault-injected path stays exercised."""
    return SweepSpec(
        planes=("sharded",),
        windows=(2_500,),
        lengths=(50,),
        epsilon_scales=(1.0,),
        shards=(2,),
        mixes=(MIXED,),
        chaos=(None, "search"),
        operations=12,
        batch_size=4,
        repetitions=3,
        warmup=1,
        seed=seed,
    )
