"""Sweep artifacts and human-readable reports.

:func:`write_report` persists a sweep result as an enveloped,
stably-ordered ``BENCH_sweep.json`` via :mod:`repro.bench.record`.
:func:`render_markdown` turns any sweep artifact — fresh or committed —
into the scenario summary table, the per-stage attribution table, and
an ASCII latency chart, reusing the existing :mod:`repro.bench`
reporting primitives. :func:`render_compare` does the same for a
:func:`~repro.sweep.baseline.compare_artifacts` verdict.
"""

from __future__ import annotations

from typing import Any

from ..bench.charts import render_chart
from ..bench.record import read_artifact, write_artifact
from ..bench.reporting import format_table, to_markdown
from ..exceptions import InvalidParameterError
from .attribution import STAGE_ORDER

#: ``kind`` tag of sweep artifacts.
SWEEP_KIND = "sweep"


def write_report(path: Any, result: dict, *, seed: Any = None) -> dict:
    """Persist one sweep result as an enveloped artifact; returns the
    payload written."""
    return write_artifact(path, result, kind=SWEEP_KIND, seed=seed)


def load_report(path: Any) -> dict:
    """Load a sweep artifact (enveloped or legacy)."""
    artifact = read_artifact(path)
    if "scenarios" not in artifact:
        raise InvalidParameterError(
            f"{path} is not a sweep artifact (no 'scenarios' section); "
            f"kind={artifact.get('kind')!r}"
        )
    return artifact


def _scenario_rows(artifact: dict) -> list:
    rows = []
    for record in artifact.get("scenarios", ()):
        timing = record.get("repetition_seconds", {})
        query = record.get("query_ms", {})
        signals = record.get("signals", {})
        rows.append(
            {
                "scenario": record.get("id", "?"),
                "reps": timing.get("n"),
                "rep mean (s)": timing.get("mean"),
                "rep ±ci95 (s)": timing.get("ci95"),
                "rep p99 (s)": timing.get("p99"),
                "query p50 (ms)": query.get("p50_ms"),
                "query p99 (ms)": query.get("p99_ms"),
                "cache hit rate": signals.get("cache_hit_rate"),
                "chaos failures": signals.get("chaos_failures"),
            }
        )
    return rows


def _stage_rows(artifact: dict) -> list:
    rows = []
    for record in artifact.get("scenarios", ()):
        stages = record.get("stages", {}).get("stages", {})
        row = {"scenario": record.get("id", "?")}
        for name in STAGE_ORDER:
            share = stages.get(name, {}).get("share", 0.0)
            row[name] = f"{100.0 * share:.1f}%"
        rows.append(row)
    return rows


def _latency_chart(artifact: dict) -> str:
    """Repetition mean latency per scenario, log-y ASCII chart (skipped
    when any scenario's mean is non-positive — a log axis needs
    positive values)."""
    scenarios = artifact.get("scenarios", ())
    means = [
        1000.0 * record.get("repetition_seconds", {}).get("mean", 0.0)
        for record in scenarios
    ]
    if not means or any(mean <= 0 for mean in means):
        return "(latency chart skipped: non-positive repetition means)"
    return render_chart(
        list(range(1, len(means) + 1)),
        {"rep mean": means},
        y_label="ms",
        x_label="scenario # (ordered by ID)",
    )


def render_markdown(artifact: dict) -> str:
    """The full human-readable report for one sweep artifact."""
    meta = artifact.get("meta", {})
    header = (
        f"# Sweep report\n\n"
        f"schema `{artifact.get('schema')}` · kind `{artifact.get('kind')}`"
        f" · git `{meta.get('git_rev')}` · seed `{meta.get('seed')}`"
        f" · scenarios {artifact.get('scenario_count')}"
        f" · repetitions {artifact.get('repetitions')}\n"
    )
    sections = [
        header,
        "## Scenarios\n\n" + to_markdown(_scenario_rows(artifact)),
        "## Stage attribution (share of traced wall time)\n\n"
        + to_markdown(_stage_rows(artifact)),
        "## Repetition mean latency\n\n```\n"
        + _latency_chart(artifact)
        + "\n```",
    ]
    return "\n\n".join(sections) + "\n"


def render_compare(comparison: dict, *, limit: int = 20) -> str:
    """A fixed-width verdict table plus the pass/fail summary line."""
    verdicts = comparison["verdicts"]
    shown = sorted(
        verdicts, key=lambda v: v["delta_pct"], reverse=True
    )[: int(limit)]
    rows = [
        {
            "metric": v["path"],
            "baseline": v["baseline"],
            "current": v["current"],
            "delta %": v["delta_pct"],
            "threshold %": v["threshold_pct"],
            "verdict": "REGRESSED" if v["regressed"] else "ok",
        }
        for v in shown
    ]
    table = format_table(rows) if rows else "(no shared gated metrics)"
    summary = (
        f"{'PASS' if comparison['passed'] else 'FAIL'}: "
        f"{comparison['compared']} metrics compared, "
        f"{comparison['regressions']} regressed, "
        f"{len(comparison['missing'])} only in baseline, "
        f"{len(comparison['added'])} only in current"
    )
    return table + "\n\n" + summary + "\n"
