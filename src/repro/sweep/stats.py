"""Statistical summaries for sweep measurements.

Every number a sweep reports is computed across repetitions — never a
single sample. :func:`summarize` turns a list of per-repetition samples
into the standard summary block (mean, median, sample stdev, a 95 %
normal-approximation confidence half-width, p50/p99, min/max), and
:func:`bucket_quantile` estimates percentiles from a histogram *delta*
(bucket counts between two registry snapshots), mirroring the linear
interpolation :meth:`repro.obs.metrics.Histogram.quantile` uses on live
histograms so the two agree on the same data.
"""

from __future__ import annotations

import math
import statistics
from typing import Any

from ..exceptions import InvalidParameterError

#: z-score for a two-sided 95 % normal confidence interval.
Z_95 = 1.96


def _quantile(ordered: list, q: float) -> float:
    """Linear-interpolation quantile of an already-sorted sample list."""
    if len(ordered) == 1:
        return float(ordered[0])
    position = q * (len(ordered) - 1)
    lower = int(math.floor(position))
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return float(ordered[lower] + (ordered[upper] - ordered[lower]) * fraction)


def summarize(samples: Any) -> dict:
    """The summary block for one measured quantity across repetitions.

    ``stdev`` is the sample standard deviation (ddof=1; 0.0 with fewer
    than two samples) and ``ci95`` its normal-approximation 95 %
    half-width — honest error bars for the repetition counts sweeps
    actually run, without pretending to t-distribution rigor.
    """
    samples = [float(s) for s in samples]
    if not samples:
        raise InvalidParameterError("summarize requires at least one sample")
    ordered = sorted(samples)
    stdev = statistics.stdev(samples) if len(samples) > 1 else 0.0
    return {
        "n": len(samples),
        "mean": statistics.fmean(samples),
        "median": statistics.median(samples),
        "stdev": stdev,
        "ci95": Z_95 * stdev / math.sqrt(len(samples)),
        "p50": _quantile(ordered, 0.50),
        "p99": _quantile(ordered, 0.99),
        "min": ordered[0],
        "max": ordered[-1],
    }


def bucket_quantile(bounds: Any, counts: Any, q: float) -> float:
    """Estimated ``q``-quantile from histogram bucket counts.

    ``bounds`` are the finite upper bounds (as in a snapshot's ``"le"``
    list); ``counts`` has one extra trailing entry for the +Inf bucket.
    Same interpolation as ``Histogram.quantile``: linear inside the
    target bucket, +Inf observations clamped to the largest finite
    bound, 0.0 when empty.
    """
    if not 0.0 <= q <= 1.0:
        raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
    bounds = [float(b) for b in bounds]
    counts = [int(c) for c in counts]
    if len(counts) != len(bounds) + 1:
        raise InvalidParameterError(
            f"counts must have len(bounds)+1 entries, got "
            f"{len(counts)} for {len(bounds)} bounds"
        )
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= rank and count > 0:
            if index >= len(bounds):
                return bounds[-1]
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (rank - previous) / count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
    return bounds[-1]


def histogram_delta_summary(delta_sample: dict, bounds: Any) -> dict:
    """Percentile block for one histogram delta sample (seconds →
    milliseconds), plus count and mean."""
    count = int(delta_sample.get("count", 0))
    total = float(delta_sample.get("sum", 0.0))
    counts = list(delta_sample.get("buckets", []))
    if count <= 0 or not counts:
        return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p99_ms": 0.0}
    return {
        "count": count,
        "mean_ms": 1000.0 * total / count,
        "p50_ms": 1000.0 * bucket_quantile(bounds, counts, 0.50),
        "p99_ms": 1000.0 * bucket_quantile(bounds, counts, 0.99),
    }


def merge_histogram_samples(entry: dict) -> dict:
    """Sum a histogram delta entry's labelled samples into one sample
    (e.g. ``repro_engine_query_seconds`` across its ``mode`` children)."""
    merged = {"count": 0, "sum": 0.0, "buckets": []}
    for sample in entry.get("samples", {}).values():
        merged["count"] += int(sample.get("count", 0))
        merged["sum"] += float(sample.get("sum", 0.0))
        buckets = list(sample.get("buckets", []))
        if not merged["buckets"]:
            merged["buckets"] = buckets
        else:
            merged["buckets"] = [
                a + b for a, b in zip(merged["buckets"], buckets)
            ]
    return merged
