"""``repro.sweep`` — statistical benchmark sweeps with observability
signals and regression gating.

The sweep subsystem closes the loop between the benchmark harness and
the observability stack: a declarative :class:`SweepSpec` expands into
deterministically-identified scenarios (:mod:`repro.sweep.spec`), the
runner executes each one on an isolated engine + metrics registry and
harvests latency samples, metric deltas and trace attribution
(:mod:`repro.sweep.runner`), every reported number is a cross-repetition
statistic (:mod:`repro.sweep.stats`), and artifacts are schema-versioned
JSON that ``repro sweep compare`` gates against committed baselines
(:mod:`repro.sweep.baseline`, :mod:`repro.sweep.report`).

Quickstart::

    from repro.sweep import smoke_spec, run_sweep, write_report
    result = run_sweep(smoke_spec())
    write_report("BENCH_sweep.json", result, seed=7)
"""

from .attribution import attribute_traces
from .baseline import (
    DEFAULT_THRESHOLD_PCT,
    TAIL_THRESHOLD_PCT,
    compare_artifacts,
    flatten,
    gated_threshold,
)
from .report import load_report, render_compare, render_markdown, write_report
from .runner import build_workload, run_scenario, run_sweep
from .spec import (
    CHAOS_PLANES,
    MIX_KINDS,
    MIXED,
    QueryMix,
    Scenario,
    SweepSpec,
    full_spec,
    smoke_spec,
)
from .stats import bucket_quantile, summarize

__all__ = [
    "CHAOS_PLANES",
    "DEFAULT_THRESHOLD_PCT",
    "MIXED",
    "MIX_KINDS",
    "QueryMix",
    "Scenario",
    "SweepSpec",
    "TAIL_THRESHOLD_PCT",
    "attribute_traces",
    "bucket_quantile",
    "build_workload",
    "compare_artifacts",
    "flatten",
    "full_spec",
    "gated_threshold",
    "load_report",
    "render_compare",
    "render_markdown",
    "run_scenario",
    "run_sweep",
    "smoke_spec",
    "summarize",
    "write_report",
]
