"""Small shared helpers: validation, chunking, array coercion.

These utilities are internal (underscore module). They centralize the
defensive checks used at every public API boundary so the error messages
stay consistent across indices.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
from collections.abc import Iterator, Sequence

import numpy as np

from .exceptions import InvalidParameterError, ShardTimeoutError
from .faults.failpoints import failpoint
from .obs.metrics import HandleCache

#: dtype used for all internal series buffers. float64 keeps the distance
#: arithmetic exact enough that equality-with-threshold tests are stable.
FLOAT_DTYPE = np.float64

#: dtype used for window start positions.
POSITION_DTYPE = np.int64


def as_float_array(values, *, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array.

    Raises :class:`InvalidParameterError` for empty input, non-1-D input,
    or non-finite entries (NaN/inf silently corrupt every distance bound
    in the library, so they are rejected at the boundary).
    """
    array = np.ascontiguousarray(values, dtype=FLOAT_DTYPE)
    if array.ndim != 1:
        raise InvalidParameterError(
            f"{name} must be one-dimensional, got shape {array.shape}"
        )
    if array.size == 0:
        raise InvalidParameterError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise InvalidParameterError(f"{name} contains NaN or infinite entries")
    return array


def as_position_array(positions, *, name: str = "positions") -> np.ndarray:
    """Coerce ``positions`` to a 1-D int64 array (possibly empty)."""
    array = np.ascontiguousarray(positions, dtype=POSITION_DTYPE)
    if array.ndim != 1:
        raise InvalidParameterError(
            f"{name} must be one-dimensional, got shape {array.shape}"
        )
    return array


def check_positive_int(value, *, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative(value, *, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return a float."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(number) or number < 0:
        raise InvalidParameterError(f"{name} must be finite and >= 0, got {value!r}")
    return number


def check_window_length(length, series_length: int, *, name: str = "length") -> int:
    """Validate a window length against the series it will slide over."""
    length = check_positive_int(length, name=name)
    if length > series_length:
        raise InvalidParameterError(
            f"{name}={length} exceeds the series length {series_length}"
        )
    return length


def available_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine; under a restricted CPU
    affinity mask (containers, ``taskset``) that oversubscribes every
    default-sized pool. Prefer the scheduler's affinity set where the
    platform exposes it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def is_process_executor(executor) -> bool:
    """Whether ``executor`` fans work out across processes (so only
    picklable, closure-free tasks may cross it)."""
    return isinstance(executor, concurrent.futures.ProcessPoolExecutor)


def call_task(task):
    """The ``fn`` used for picklable task fan-outs: each item is a
    self-contained callable (e.g. an ``ArchiveTask``) and ``fn(item)``
    is simply ``item()``. :func:`fan_out` recognizes this sentinel to
    route items across a process pool."""
    return task()


def _process_task(part, label, task):
    """Module-level process-pool worker: runs the fan-out failpoint
    (inherited state under the ``fork`` start method) then the task."""
    failpoint("fanout.task", part=part, label=label)
    return task()


_fanout_metrics = HandleCache(
    lambda registry: {
        "timeouts": registry.counter(
            "repro_fanout_timeouts_total",
            "Fan-out queries whose per-part deadline expired before "
            "every part answered.",
        ),
        "degraded": registry.counter(
            "repro_degraded_queries_total",
            "Fan-out queries served degraded: partial results from the "
            "parts that answered within the deadline.",
        ),
    }
)


@dataclasses.dataclass(frozen=True)
class FanOutResult:
    """Outcome of one :func:`fan_out` call.

    ``results`` is aligned with the input items (``None`` where a part
    did not answer); ``answered``/``missing`` hold the part labels that
    did and did not complete. ``missing`` is non-empty only in degraded
    mode — every other path either returns complete results or raises.
    """

    results: list
    answered: tuple
    missing: tuple = ()

    @property
    def degraded(self) -> bool:
        return bool(self.missing)


def _annotate(exc: BaseException, part: str, label) -> None:
    """Attach the failing part's identity to an in-flight exception."""
    note = f"raised while fanning out over {part} {label!r}"
    add_note = getattr(exc, "add_note", None)
    if add_note is not None:
        add_note(note)


def fan_out(
    executor,
    fn,
    items: Sequence,
    *,
    labels: Sequence | None = None,
    part: str = "part",
    timeout: float | None = None,
    degraded: bool = False,
) -> FanOutResult:
    """``[fn(item) for item in items]`` fanned out on ``executor``, with
    typed failure semantics.

    * On the first worker exception, the remaining pending futures are
      cancelled (not leaked) and the original exception propagates with
      the failing part's label attached as a note.
    * With ``timeout=`` (seconds, pooled path only — the serial path has
      no concurrency to bound), parts still unanswered at the deadline
      are cancelled. The default is fail-fast: a typed
      :class:`~repro.exceptions.ShardTimeoutError` naming exactly which
      parts answered and which did not. With ``degraded=True`` the
      partial results are returned instead, with the missing parts
      recorded on the :class:`FanOutResult`.

    Result order always matches the input order. ``labels`` (default:
    indices) name the parts in errors, notes, and degraded reports.
    """
    if labels is None:
        labels = range(len(items))
    if is_process_executor(executor) and fn is not call_task:
        # Closure-based fan-outs (query-level loops capturing the index)
        # cannot cross a process boundary; run them serially instead —
        # byte-identical results, just without the parallelism. Planes
        # that want process fan-out submit picklable tasks via
        # ``call_task``.
        executor = None
    if executor is None or len(items) <= 1:
        results = []
        for label, item in zip(labels, items):
            try:
                results.append(fn(item))
            except BaseException as exc:
                _annotate(exc, part, label)
                raise
        return FanOutResult(results, tuple(labels))

    if is_process_executor(executor):
        futures = [
            executor.submit(_process_task, part, label, item)
            for label, item in zip(labels, items)
        ]
    else:
        def worker(label, item):
            failpoint("fanout.task", part=part, label=label)
            return fn(item)

        futures = [
            executor.submit(worker, label, item)
            for label, item in zip(labels, items)
        ]
    concurrent.futures.wait(
        futures,
        timeout=timeout,
        return_when=concurrent.futures.FIRST_EXCEPTION,
    )
    failed = next(
        (
            pair
            for pair in zip(labels, futures)
            if pair[1].done()
            and not pair[1].cancelled()
            and pair[1].exception() is not None
        ),
        None,
    )
    if failed is not None:
        label, future = failed
        for other in futures:
            if not other.done():
                other.cancel()
        exc = future.exception()
        _annotate(exc, part, label)
        raise exc
    pending = [future for future in futures if not future.done()]
    if pending:
        for future in pending:
            future.cancel()
        answered, missing, results = [], [], []
        for label, future in zip(labels, futures):
            if future.done() and not future.cancelled():
                answered.append(label)
                results.append(future.result())
            else:
                missing.append(label)
                results.append(None)
        handles = _fanout_metrics()
        handles["timeouts"].inc()
        if not degraded:
            raise ShardTimeoutError(
                f"fan-out timed out after {timeout}s: "
                f"{len(missing)}/{len(items)} {part}s unanswered "
                f"(missing {part}s: {missing})",
                answered=answered,
                missing=missing,
            )
        handles["degraded"].inc()
        return FanOutResult(results, tuple(answered), tuple(missing))
    return FanOutResult(
        [future.result() for future in futures], tuple(labels)
    )


def map_with_executor(executor, fn, items: Sequence, *, part: str = "part") -> list:
    """``[fn(item) for item in items]``, fanned out on ``executor`` when
    one is given and there is more than one item (the shared fan-out
    policy of :class:`~repro.engine.sharding.ShardedTSIndex` and
    :class:`~repro.live.LiveTwinIndex`). Result order always matches
    the input order. A thin wrapper over :func:`fan_out` with the
    fail-fast, no-deadline semantics every non-query fan-out wants."""
    return fan_out(executor, fn, items, part=part).results


def iter_chunks(total: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(total)`` in chunks."""
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, total, chunk_size):
        yield start, min(start + chunk_size, total)


def positions_to_intervals(positions: Sequence[int]) -> list[tuple[int, int]]:
    """Compress a sorted position list into half-open ``[start, stop)`` runs.

    >>> positions_to_intervals([1, 2, 3, 7, 9, 10])
    [(1, 4), (7, 8), (9, 11)]
    """
    array = as_position_array(positions)
    if array.size == 0:
        return []
    if np.any(np.diff(array) <= 0):
        raise InvalidParameterError("positions must be strictly increasing")
    breaks = np.flatnonzero(np.diff(array) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [array.size - 1]))
    return [(int(array[a]), int(array[b]) + 1) for a, b in zip(starts, stops)]


def intervals_to_positions(intervals: Sequence[tuple[int, int]]) -> np.ndarray:
    """Expand half-open ``[start, stop)`` runs back into a position array."""
    if not intervals:
        return np.empty(0, dtype=POSITION_DTYPE)
    parts = [np.arange(start, stop, dtype=POSITION_DTYPE) for start, stop in intervals]
    return np.concatenate(parts)
