"""Small shared helpers: validation, chunking, array coercion.

These utilities are internal (underscore module). They centralize the
defensive checks used at every public API boundary so the error messages
stay consistent across indices.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from .exceptions import InvalidParameterError

#: dtype used for all internal series buffers. float64 keeps the distance
#: arithmetic exact enough that equality-with-threshold tests are stable.
FLOAT_DTYPE = np.float64

#: dtype used for window start positions.
POSITION_DTYPE = np.int64


def as_float_array(values, *, name: str = "values") -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array.

    Raises :class:`InvalidParameterError` for empty input, non-1-D input,
    or non-finite entries (NaN/inf silently corrupt every distance bound
    in the library, so they are rejected at the boundary).
    """
    array = np.ascontiguousarray(values, dtype=FLOAT_DTYPE)
    if array.ndim != 1:
        raise InvalidParameterError(
            f"{name} must be one-dimensional, got shape {array.shape}"
        )
    if array.size == 0:
        raise InvalidParameterError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise InvalidParameterError(f"{name} contains NaN or infinite entries")
    return array


def as_position_array(positions, *, name: str = "positions") -> np.ndarray:
    """Coerce ``positions`` to a 1-D int64 array (possibly empty)."""
    array = np.ascontiguousarray(positions, dtype=POSITION_DTYPE)
    if array.ndim != 1:
        raise InvalidParameterError(
            f"{name} must be one-dimensional, got shape {array.shape}"
        )
    return array


def check_positive_int(value, *, name: str) -> int:
    """Validate that ``value`` is an integer >= 1 and return it as int."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise InvalidParameterError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative(value, *, name: str) -> float:
    """Validate that ``value`` is a finite number >= 0 and return a float."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(number) or number < 0:
        raise InvalidParameterError(f"{name} must be finite and >= 0, got {value!r}")
    return number


def check_window_length(length, series_length: int, *, name: str = "length") -> int:
    """Validate a window length against the series it will slide over."""
    length = check_positive_int(length, name=name)
    if length > series_length:
        raise InvalidParameterError(
            f"{name}={length} exceeds the series length {series_length}"
        )
    return length


def map_with_executor(executor, fn, items: Sequence) -> list:
    """``[fn(item) for item in items]``, fanned out on ``executor`` when
    one is given and there is more than one item (the shared fan-out
    policy of :class:`~repro.engine.sharding.ShardedTSIndex` and
    :class:`~repro.live.LiveTwinIndex`). Result order always matches
    the input order."""
    if executor is None or len(items) <= 1:
        return [fn(item) for item in items]
    return list(executor.map(fn, items))


def iter_chunks(total: int, chunk_size: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(total)`` in chunks."""
    if chunk_size < 1:
        raise InvalidParameterError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, total, chunk_size):
        yield start, min(start + chunk_size, total)


def positions_to_intervals(positions: Sequence[int]) -> list[tuple[int, int]]:
    """Compress a sorted position list into half-open ``[start, stop)`` runs.

    >>> positions_to_intervals([1, 2, 3, 7, 9, 10])
    [(1, 4), (7, 8), (9, 11)]
    """
    array = as_position_array(positions)
    if array.size == 0:
        return []
    if np.any(np.diff(array) <= 0):
        raise InvalidParameterError("positions must be strictly increasing")
    breaks = np.flatnonzero(np.diff(array) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks, [array.size - 1]))
    return [(int(array[a]), int(array[b]) + 1) for a, b in zip(starts, stops)]


def intervals_to_positions(intervals: Sequence[tuple[int, int]]) -> np.ndarray:
    """Expand half-open ``[start, stop)`` runs back into a position array."""
    if not intervals:
        return np.empty(0, dtype=POSITION_DTYPE)
    parts = [np.arange(start, stop, dtype=POSITION_DTYPE) for start, stop in intervals]
    return np.concatenate(parts)
