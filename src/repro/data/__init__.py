"""Datasets: seeded synthetic surrogates for the paper's series + IO.

The paper evaluates on the *Insect Movement* (64,436 points) and *EEG*
(1,801,999 points @ 500 Hz) series of Mueen et al., which are not
redistributable here. :mod:`repro.data.synthetic` provides seeded
generators with matching lengths and qualitatively similar structure
(see DESIGN.md §4 for the substitution argument), and
:mod:`repro.data.datasets` registers them under the paper's names so
the experiment harness can request ``"insect"`` / ``"eeg"`` directly.
Real data, if available, drops in through :mod:`repro.data.loaders`.
"""

from .datasets import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_spec,
    load_dataset,
)
from .loaders import load_series, save_series
from .synthetic import (
    ar1,
    eeg_like,
    insect_like,
    noisy_sines,
    random_walk,
    regime_switching,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "ar1",
    "dataset_spec",
    "eeg_like",
    "insect_like",
    "load_dataset",
    "load_series",
    "noisy_sines",
    "random_walk",
    "regime_switching",
    "save_series",
]
