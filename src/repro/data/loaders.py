"""File IO for time series: plain text, CSV column, and ``.npy``.

Real copies of the paper's datasets (or any other series) can be loaded
with :func:`load_series` and passed anywhere the library expects a
series. Formats are chosen by extension; text formats expect one value
per line (optionally a chosen CSV column).
"""

from __future__ import annotations

import os

import numpy as np

from ..core.series import TimeSeries
from ..exceptions import InvalidParameterError


def load_series(path, *, column: int = 0, name: str | None = None) -> TimeSeries:
    """Load a series from ``path`` (``.npy``, ``.csv``, ``.txt``/other).

    ``column`` selects the CSV column (ignored for 1-D inputs). The
    series name defaults to the file's base name.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise InvalidParameterError(f"no such file: {path}")
    label = name if name is not None else os.path.basename(path)

    if path.endswith(".npy"):
        values = np.load(path)
    elif path.endswith(".csv"):
        values = np.genfromtxt(path, delimiter=",")
    else:
        values = np.loadtxt(path)

    values = np.asarray(values, dtype=float)
    if values.ndim == 2:
        if not 0 <= column < values.shape[1]:
            raise InvalidParameterError(
                f"column {column} outside the file's {values.shape[1]} columns"
            )
        values = values[:, column]
    elif values.ndim != 1:
        raise InvalidParameterError(
            f"expected a 1-D or 2-D file, got shape {values.shape}"
        )
    return TimeSeries(values, name=label)


def save_series(series, path) -> None:
    """Save a series to ``path`` (format chosen by extension, as in
    :func:`load_series`)."""
    path = os.fspath(path)
    values = np.asarray(series, dtype=float)
    if path.endswith(".npy"):
        np.save(path, values)
    elif path.endswith(".csv"):
        np.savetxt(path, values, delimiter=",")
    else:
        np.savetxt(path, values)
