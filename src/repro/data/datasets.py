"""Dataset registry: the paper's two evaluation series as surrogates.

Table 1 of the paper:

==========  =========  =========================  =========================
Dataset     Length     ε grid (z-normalized)      ε grid (non-normalized)
==========  =========  =========================  =========================
Insect      64,436     0.5, 0.75, 1, 1.25, 1.5    50, 100, 150, 200, 250
EEG         1,801,999  0.1, 0.2, 0.3, 0.4, 0.5    20, 40, 60, 80, 100
==========  =========  =========================  =========================

Defaults (bold in the paper) are ``ε = 0.75`` / ``ε = 100`` for Insect
and ``ε = 0.2`` / ``ε = 40`` for EEG. The surrogate generators do not
share the real series' value scale, so the non-normalized grids are
additionally re-expressed in *fractions of the surrogate's value range*
by the harness when requested (see
:meth:`DatasetSpec.scaled_raw_epsilons`).

``load_dataset`` accepts a ``scale`` in (0, 1] to truncate the series —
used to keep pure-Python tree construction tractable (DESIGN.md §4).
"""

from __future__ import annotations

import dataclasses

from ..core.series import TimeSeries
from ..exceptions import InvalidParameterError
from . import synthetic

#: Names accepted by :func:`load_dataset`.
DATASET_NAMES = ("insect", "eeg")


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Static description of one evaluation dataset (Table 1)."""

    name: str
    full_length: int
    #: ε grid for z-normalized experiments (Figures 4–6).
    normalized_epsilons: tuple[float, ...]
    #: default (bold) ε for z-normalized experiments.
    default_normalized_epsilon: float
    #: ε grid for the paper's raw-value experiments (Figure 7), in the
    #: *paper's* value scale.
    raw_epsilons: tuple[float, ...]
    #: default (bold) raw ε in the paper's value scale.
    default_raw_epsilon: float
    #: the paper's raw value range these raw ε were chosen against; used
    #: to re-express thresholds on surrogates with a different scale.
    paper_value_range: float
    #: generator seed for the surrogate.
    seed: int

    def scaled_raw_epsilons(self, series: TimeSeries) -> tuple[float, ...]:
        """The raw ε grid re-expressed for a surrogate series.

        Each paper ε is mapped to the same *fraction of the value range*
        on the surrogate: ``ε' = ε / paper_range · surrogate_range``.
        This preserves query selectivity, which is what drives all the
        performance comparisons.
        """
        surrogate_range = series.maximum() - series.minimum()
        factor = surrogate_range / self.paper_value_range
        return tuple(round(eps * factor, 6) for eps in self.raw_epsilons)

    def scaled_default_raw_epsilon(self, series: TimeSeries) -> float:
        """Default raw ε re-expressed for a surrogate (see above)."""
        surrogate_range = series.maximum() - series.minimum()
        return round(
            self.default_raw_epsilon * surrogate_range / self.paper_value_range, 6
        )


_SPECS = {
    "insect": DatasetSpec(
        name="insect",
        full_length=64_436,
        normalized_epsilons=(0.5, 0.75, 1.0, 1.25, 1.5),
        default_normalized_epsilon=0.75,
        raw_epsilons=(50.0, 100.0, 150.0, 200.0, 250.0),
        default_raw_epsilon=100.0,
        # The real insect EPG series spans roughly 0..1000 units; the
        # paper's raw thresholds 50..250 are 5%..25% of that range.
        paper_value_range=1000.0,
        seed=42,
    ),
    "eeg": DatasetSpec(
        name="eeg",
        full_length=1_801_999,
        normalized_epsilons=(0.1, 0.2, 0.3, 0.4, 0.5),
        default_normalized_epsilon=0.2,
        raw_epsilons=(20.0, 40.0, 60.0, 80.0, 100.0),
        default_raw_epsilon=40.0,
        # The real EEG series spans roughly ±300 µV; 20..100 µV is
        # ~3%..17% of the range.
        paper_value_range=600.0,
        seed=7,
    ),
}


def dataset_spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` registered under ``name``."""
    try:
        return _SPECS[str(name).lower()]
    except KeyError as exc:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; expected one of {DATASET_NAMES}"
        ) from exc


def load_dataset(name: str, *, scale: float = 1.0, seed=None) -> TimeSeries:
    """Materialize the named surrogate series.

    Parameters
    ----------
    name:
        ``"insect"`` or ``"eeg"``.
    scale:
        Fraction of the full length to generate, in (0, 1]. The harness
        uses this to keep tree construction tractable in pure Python.
    seed:
        Override the registered seed (for robustness experiments).
    """
    spec = dataset_spec(name)
    if not 0.0 < scale <= 1.0:
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    length = max(1000, int(round(spec.full_length * scale)))
    length = min(length, spec.full_length)
    seed = spec.seed if seed is None else seed
    if spec.name == "insect":
        values = synthetic.insect_like(length, seed=seed)
    else:
        values = synthetic.eeg_like(length, seed=seed)
    label = spec.name if scale == 1.0 else f"{spec.name}@{scale:g}"
    return TimeSeries(values, name=label)
