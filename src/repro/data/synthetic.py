"""Seeded synthetic time-series generators.

All generators take an explicit ``seed`` and are deterministic given it
(``numpy.random.default_rng``). Two of them are purpose-built surrogates
for the paper's evaluation data:

* :func:`insect_like` — the *Insect Movement* surrogate. EPG insect
  telemetry alternates between distinct behavioural regimes (quiet
  probing, active feeding bursts, baseline drifts); we model this with
  a regime-switching AR(1) whose level, noise scale and oscillatory
  content change at random regime boundaries.
* :func:`eeg_like` — the *EEG* surrogate. Scalp EEG mixes banded
  oscillations (delta/alpha/beta) with pink-ish background noise and
  sparse high-amplitude transients (spikes / K-complexes); we sum
  phase-drifting band oscillators, an AR(1) background and injected
  spike-wave events.

Both carry repeated motifs (regimes and events recur), which is what
makes twin search non-trivial: queries have genuine twins, and index
pruning quality matters.
"""

from __future__ import annotations

import numpy as np

from .._util import FLOAT_DTYPE, check_positive_int
from ..exceptions import InvalidParameterError


def _rng(seed) -> np.random.Generator:
    return np.random.default_rng(seed)


def random_walk(n: int, *, seed=0, step_std: float = 1.0) -> np.ndarray:
    """Gaussian random walk of ``n`` points."""
    n = check_positive_int(n, name="n")
    return np.cumsum(_rng(seed).normal(0.0, step_std, size=n)).astype(FLOAT_DTYPE)


def ar1(n: int, *, seed=0, phi: float = 0.9, sigma: float = 1.0) -> np.ndarray:
    """Stationary AR(1): ``x_t = phi·x_{t-1} + N(0, sigma)``.

    Implemented with an exact vectorized recursion (scaled cumulative
    products) rather than a Python loop.
    """
    n = check_positive_int(n, name="n")
    if not -1.0 < phi < 1.0:
        raise InvalidParameterError(f"phi must be in (-1, 1), got {phi}")
    noise = _rng(seed).normal(0.0, sigma, size=n)
    out = np.empty(n, dtype=FLOAT_DTYPE)
    # scipy-free linear filter: x = signal.lfilter([1], [1, -phi], noise)
    from scipy.signal import lfilter

    out[:] = lfilter([1.0], [1.0, -phi], noise)
    return out


def noisy_sines(
    n: int,
    *,
    seed=0,
    frequencies=(0.01, 0.037),
    amplitudes=(1.0, 0.5),
    noise_std: float = 0.1,
) -> np.ndarray:
    """Sum of sinusoids plus white noise — a simple periodic testbed."""
    n = check_positive_int(n, name="n")
    if len(frequencies) != len(amplitudes):
        raise InvalidParameterError(
            "frequencies and amplitudes must have equal lengths"
        )
    t = np.arange(n, dtype=FLOAT_DTYPE)
    rng = _rng(seed)
    signal = np.zeros(n, dtype=FLOAT_DTYPE)
    for frequency, amplitude in zip(frequencies, amplitudes):
        phase = rng.uniform(0.0, 2.0 * np.pi)
        signal += amplitude * np.sin(2.0 * np.pi * frequency * t + phase)
    return signal + rng.normal(0.0, noise_std, size=n)


def regime_switching(
    n: int,
    *,
    seed=0,
    mean_regime_length: int = 400,
    level_std: float = 2.0,
    noise_scales=(0.2, 1.0, 0.5),
) -> np.ndarray:
    """Piecewise AR(1) whose level and noise scale jump between regimes.

    Regime lengths are geometric with the given mean; each regime draws
    a base level and one of ``noise_scales``. The building block of
    :func:`insect_like`.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    values = np.empty(n, dtype=FLOAT_DTYPE)
    position = 0
    level = 0.0
    while position < n:
        length = min(
            n - position, 1 + int(rng.geometric(1.0 / mean_regime_length))
        )
        level += rng.normal(0.0, level_std)
        scale = float(rng.choice(noise_scales))
        from scipy.signal import lfilter

        noise = rng.normal(0.0, scale, size=length)
        segment = lfilter([1.0], [1.0, -0.85], noise)
        values[position : position + length] = level + segment
        position += length
    return values


def insect_like(n: int = 64_436, *, seed=42) -> np.ndarray:
    """Insect Movement surrogate (default length matches the paper).

    Regime-switching AR base with per-regime oscillatory texture
    (behavioural modes), recurring stereotyped feeding bursts (these
    recur with small jitter, creating genuine twins) and slow baseline
    drift. Parameters are calibrated so that, globally z-normalized,
    the Table 1 ε grid spans paper-like selectivities: near-singleton
    result sets at ε = 0.5 growing to thousands of twins at ε = 1.5.
    """
    from scipy.signal import lfilter

    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    values = np.empty(n, dtype=FLOAT_DTYPE)
    position = 0
    mean_regime = 500
    noise_scales = (0.5, 1.2, 0.8)
    while position < n:
        length = min(n - position, 1 + int(rng.geometric(1.0 / mean_regime)))
        # Mild level continuity with the previous regime avoids
        # physically implausible jumps while keeping regimes distinct.
        carry = 0.0 if position == 0 else float(values[position - 1]) * 0.3
        level = rng.normal(0.0, 0.8) + carry
        scale = float(rng.choice(noise_scales))
        noise = rng.normal(0.0, scale, size=length)
        segment = lfilter([1.0], [1.0, -0.75], noise)
        # Per-regime oscillatory texture with random frequency/phase —
        # this is what keeps windows from different regimes apart.
        frequency = rng.uniform(0.02, 0.2)
        amplitude = rng.uniform(0.0, 1.0) * scale
        segment = segment + amplitude * np.sin(
            2.0 * np.pi * frequency * np.arange(length)
            + rng.uniform(0.0, 2.0 * np.pi)
        )
        values[position : position + length] = level + segment
        position += length

    # Slow drift: smooth random walk across the recording.
    drift_points = max(4, n // 2000)
    anchors = np.cumsum(rng.normal(0.0, 0.5, size=drift_points))
    drift = np.interp(
        np.linspace(0.0, 1.0, n), np.linspace(0.0, 1.0, drift_points), anchors
    )

    # Recurring stereotyped bursts, pasted with ~2% amplitude jitter so
    # their occurrences are twins at moderate thresholds.
    bursts = np.zeros(n, dtype=FLOAT_DTYPE)
    templates = []
    for _ in range(3):
        burst_length = int(rng.integers(80, 200))
        tt = np.arange(burst_length)
        frequency = rng.uniform(0.05, 0.15)
        envelope = np.hanning(burst_length)
        templates.append(
            envelope * np.sin(2.0 * np.pi * frequency * tt) * rng.uniform(1.5, 3.0)
        )
    burst_count = max(4, n // 800)
    for _ in range(burst_count):
        template = templates[int(rng.integers(0, len(templates)))]
        if template.size >= n:
            continue  # series too short to host this burst
        start = int(rng.integers(0, n - template.size))
        jitter = 1.0 + rng.normal(0.0, 0.02)
        bursts[start : start + template.size] += template * jitter
    return (values + drift + bursts).astype(FLOAT_DTYPE)


def eeg_like(n: int = 1_801_999, *, seed=7) -> np.ndarray:
    """EEG surrogate (default length matches the paper's one-hour 500 Hz
    recording).

    Banded oscillations with drifting instantaneous frequency + AR(1)
    background + sparse spike-wave events.
    """
    n = check_positive_int(n, name="n")
    rng = _rng(seed)
    t = np.arange(n, dtype=FLOAT_DTYPE)

    signal = np.zeros(n, dtype=FLOAT_DTYPE)
    # Banded oscillators: (center frequency in cycles/sample, amplitude).
    # At a nominal 500 Hz: delta ~2 Hz, alpha ~10 Hz, beta ~20 Hz.
    for center, amplitude in ((2 / 500, 1.2), (10 / 500, 0.8), (20 / 500, 0.4)):
        # Slowly drifting instantaneous frequency around the center.
        drift_points = max(4, n // 50_000)
        drift = np.interp(
            np.linspace(0.0, 1.0, n),
            np.linspace(0.0, 1.0, drift_points),
            rng.normal(1.0, 0.05, size=drift_points),
        )
        phase = 2.0 * np.pi * np.cumsum(center * drift)
        signal += amplitude * np.sin(phase + rng.uniform(0.0, 2.0 * np.pi))

    background = ar1(n, seed=rng.integers(0, 2**31), phi=0.97, sigma=0.08)
    signal += background

    # Sparse spike-wave events: sharp biphasic transient + slow wave.
    event_count = max(6, n // 25_000)
    spike_length = 120
    tt = np.arange(spike_length, dtype=FLOAT_DTYPE)
    spike = (
        2.5 * np.exp(-((tt - 20.0) ** 2) / 18.0)
        - 1.5 * np.exp(-((tt - 34.0) ** 2) / 60.0)
        + 0.8 * np.sin(2.0 * np.pi * tt / spike_length) * np.hanning(spike_length)
    )
    # Events recur at a few canonical amplitudes with ~2% jitter, so
    # occurrences of the same class are near-twins of each other (the
    # "doublet" structure twin search is meant to recover).
    canonical_scales = (1.8, 2.4, 3.0)
    if spike_length < n:
        for _ in range(event_count):
            start = int(rng.integers(0, n - spike_length))
            polarity = 1.0 if rng.random() < 0.85 else -1.0
            scale = float(rng.choice(canonical_scales))
            jitter = 1.0 + rng.normal(0.0, 0.02)
            signal[start : start + spike_length] += spike * scale * jitter * polarity
    del t
    return signal.astype(FLOAT_DTYPE)
