"""Capability-negotiating planner: QuerySpec → plan → execute.

One pipeline answers every query mode on every plane:

1. a :class:`~repro.query.spec.QuerySpec` describes the query;
2. :func:`plan` negotiates with the target plane's declared
   :mod:`capabilities <repro.query.capabilities>` — native kernels are
   used where the plane has them, per-call options the plane does not
   understand are dropped, and the rest is **synthesized centrally**
   (exact scan k-NN, search-backed existence and counting, a fan-out
   batch loop) — so a plane that only implements
   ``search`` (sweepline, KV-Index, iSAX) is still fully servable
   through :class:`~repro.engine.executor.QueryEngine`;
3. :meth:`QueryPlan.execute` runs it, optionally fanning work out on an
   executor (natively where the plane supports ``executor=``, at the
   planner level for synthesized batches).

The synthesized kernels answer from the plane's own
:class:`~repro.core.windows.WindowSource`, so their results agree
exactly (positions, distances, ``(distance, position)`` tie-breaks)
with what a native kernel over the same windows would return.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from .._util import (
    FLOAT_DTYPE,
    POSITION_DTYPE,
    iter_chunks,
    map_with_executor,
)
from ..core.stats import QueryStats, SearchResult
from ..exceptions import IndexNotBuiltError, UnsupportedCapabilityError
from ..obs.metrics import HandleCache
from ..obs.trace import current_trace
from .capabilities import (
    CAP_BATCHED_KERNEL,
    CAP_COUNT,
    CAP_EXECUTOR,
    CAP_EXISTS,
    CAP_FANOUT_TIMEOUT,
    CAP_KNN,
    CAP_SEARCH_BATCH,
    CAP_VARLENGTH,
    CAP_VERIFICATION,
    capabilities_of,
)
from .merge import batch_result
from .spec import QuerySpec, prepare_values
from .varlength import is_prefix_query, scan_prefix_knn, scan_prefix_search

#: Windows per block in the synthesized scan kernels (bounds the
#: temporary ``(block, l)`` matrix regardless of index size).
SCAN_BLOCK = 4096

#: Planner counters (recorded into the process default registry):
#: how many plans ran on a native plane kernel vs. a synthesized one,
#: and how many dispatched to the variable-length prefix path.
_metrics = HandleCache(
    lambda registry: (
        registry.counter(
            "repro_planner_plans_total",
            "Query plans produced, by mode and whether the mode runs "
            "on a native plane kernel.",
            labels=("mode", "native"),
        ),
        registry.counter(
            "repro_planner_varlength_plans_total",
            "Query plans dispatched to the variable-length prefix "
            "kernels (query length m < indexed window length l).",
        ),
    )
)


# ----------------------------------------------------------------------
# Synthesized kernels (used when a plane lacks the native capability)
# ----------------------------------------------------------------------
def scan_distances(source: Any, query: np.ndarray) -> np.ndarray:
    """Exact Chebyshev distance from ``query`` to every window,
    computed blockwise so memory stays bounded."""
    distances = np.empty(source.count, dtype=FLOAT_DTYPE)
    for start, stop in iter_chunks(source.count, SCAN_BLOCK):
        block = source.window_block(start, stop)
        distances[start:stop] = np.max(np.abs(block - query), axis=1)
    return distances


def scan_knn(source: Any, query: Any, k: int, exclude: Any = None) -> SearchResult:
    """Exact k-NN over every window of ``source`` — the synthesized
    k-NN any search-only plane serves through the planner.

    Ranks by the library-wide ``(distance, position)`` tie-break, so
    the answer equals what a native tree k-NN over the same windows
    returns.
    """
    query = prepare_values(source, query)
    count = source.count
    stats = QueryStats()
    distances = scan_distances(source, query)
    positions = np.arange(count, dtype=POSITION_DTYPE)
    if exclude is not None:
        lo, hi = max(0, int(exclude[0])), min(count, int(exclude[1]))
        if lo < hi:
            keep = np.ones(count, dtype=bool)
            keep[lo:hi] = False
            positions = positions[keep]
            distances = distances[keep]
    stats.candidates = int(positions.size)
    stats.verified = int(positions.size)
    k_eff = min(int(k), int(positions.size))
    if k_eff == 0:
        return SearchResult.empty(stats)
    # Full lexsort keeps ties exact at the k-th distance (argpartition
    # alone could pick the wrong tied positions).
    order = np.lexsort((positions, distances))[:k_eff]
    stats.matches = k_eff
    return SearchResult(
        positions=positions[order],
        distances=distances[order],
        stats=stats,
    )


def scan_count(source: Any, query: Any, epsilon: float) -> int:
    """Count twins without materializing a result: no position/distance
    arrays are built, just a blockwise running total. The
    memory-bounded alternative to ``len(search(...))`` for huge result
    sets (the planner's synthesized count prefers the plane's own
    pruned search — see :meth:`QueryPlan.execute`)."""
    query = prepare_values(source, query)
    total = 0
    for start, stop in iter_chunks(source.count, SCAN_BLOCK):
        block = source.window_block(start, stop)
        twins = np.max(np.abs(block - query), axis=1) <= epsilon
        total += int(np.count_nonzero(twins))
    return total


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def _plane_length(index: Any) -> int | None:
    """The plane's indexed window length ``l`` (``None`` when it cannot
    be determined without touching the plane's source — e.g. a foreign
    plane exposing neither a ``length`` nor a ``source``)."""
    length = getattr(index, "length", None)
    if length is not None:
        try:
            return int(length)
        except (TypeError, ValueError):
            return None
    source = getattr(index, "source", None)
    if source is None:
        return None
    return int(source.length)


@dataclasses.dataclass
class QueryPlan:
    """One negotiated execution plan: spec + plane + chosen kernels."""

    index: object
    spec: QuerySpec
    #: The plane's declared capability set.
    capabilities: frozenset
    #: Whether the spec's mode runs on a native plane kernel (False →
    #: the planner synthesizes it).
    native: bool
    #: Per-call options surviving capability filtering.
    options: dict
    #: Whether the plane itself accepts ``executor=`` fan-out.
    fan_out: bool
    #: Whether (any of) the spec's queries are shorter than the plane's
    #: window length — executed through the prefix kernels.
    varlength: bool = False

    def describe(self) -> str:
        """One diagnostic line (for logs and tests)."""
        return (
            f"mode={self.spec.mode} plane={type(self.index).__name__} "
            f"native={self.native} fan_out={self.fan_out} "
            f"varlength={self.varlength} options={sorted(self.options)}"
        )

    # ------------------------------------------------------------------
    def _queries(self) -> list:
        """The spec's queries, domain-mapped when they arrived raw.

        Index-domain queries are forwarded untouched — the plane's own
        kernel runs the (idempotent) preparation, exactly as a direct
        call would, so planned results stay byte-identical to direct
        ones.
        """
        if self.spec.domain == "raw":
            with current_trace().span("prepare", domain="raw"):
                try:
                    source = self.index.source
                except IndexNotBuiltError:
                    # A mutable plane before its first full window
                    # (live): nothing is indexed yet, and such planes
                    # reject the GLOBAL regime, so the raw→index
                    # mapping is the identity — the kernels validate
                    # the values themselves.
                    return self.spec.query_list()
                return list(self.spec.prepare(source).queries)
        return self.spec.query_list()

    def _call_options(self, executor: Any) -> dict:
        options = dict(self.options)
        if executor is not None and self.fan_out:
            options["executor"] = executor
        return options

    def _source_or_raise(self) -> Any:
        """The plane's window source (needed to synthesize a kernel);
        typed failure for planes that truly cannot serve the mode."""
        source = getattr(self.index, "source", None)
        if source is None:
            raise UnsupportedCapabilityError(
                f"{type(self.index).__name__} cannot serve "
                f"variable-length queries: it declares no native prefix "
                "kernel and exposes no window source to synthesize one "
                "from"
            )
        return source

    def _varlength_search(self, query: Any, executor: Any = None) -> SearchResult:
        """One variable-length search: the plane's native prefix kernel
        where declared, the synthesized prefix scan otherwise."""
        if CAP_VARLENGTH in self.capabilities:
            options = dict(self.options)
            if executor is not None and self.fan_out:
                options["executor"] = executor
            return self.index.search_varlength(
                query, self.spec.epsilon, **options
            )
        return scan_prefix_search(
            self._source_or_raise(), query, self.spec.epsilon, **self.options
        )

    def _execute_varlength(self, executor: Any) -> Any:
        """Run a plan whose quer(ies) are shorter than the plane's
        window length. ``search`` uses the native prefix kernel (or the
        synthesized scan); ``exists``/``count`` derive from that same
        search, so they reuse the plane's own pruned traversal; ``knn``
        is an exact prefix scan ranked by the library-wide
        ``(distance, position)`` tie-break; batches dispatch per query,
        so mixed-length workloads serve full-length members natively.
        """
        spec = self.spec
        length = _plane_length(self.index)
        if spec.mode == "batch":
            queries = self._queries()
            options = dict(self.options)

            def one(query: Any) -> SearchResult:
                if is_prefix_query(query, length):
                    return self._varlength_search(query)
                return self.index.search(query, spec.epsilon, **options)

            results = map_with_executor(executor, one, queries)
            return batch_result(results, spec.epsilon)

        query = self._queries()[0]
        if spec.mode == "search":
            return self._varlength_search(query, executor=executor)
        if spec.mode == "knn":
            try:
                source = self._source_or_raise()
            except IndexNotBuiltError:
                # A mutable plane before its first full window (live):
                # its own knn serves the prefix scan from the raw
                # readings without touching the unavailable source.
                return self.index.knn(query, spec.k, exclude=spec.exclude)
            return scan_prefix_knn(
                source, query, spec.k, exclude=spec.exclude
            )
        result = self._varlength_search(query, executor=executor)
        if spec.mode == "exists":
            return len(result) > 0
        return len(result)  # mode == "count"

    def execute(self, executor: Any = None) -> Any:
        """Run the plan; returns the mode's natural result type
        (:class:`SearchResult`, :class:`~repro.core.batch.BatchResult`,
        ``bool`` or ``int``)."""
        spec = self.spec
        if self.varlength:
            return self._execute_varlength(executor)
        if spec.mode == "batch":
            queries = self._queries()
            if self.native:
                return self.index.search_batch(
                    queries, spec.epsilon, **self._call_options(executor)
                )
            options = dict(self.options)

            def one(query: Any) -> SearchResult:
                return self.index.search(query, spec.epsilon, **options)

            # Synthesized batches fan out *at the planner level*, so
            # even planes with no concurrency support serve parallel
            # workloads.
            results = map_with_executor(executor, one, queries)
            return batch_result(results, spec.epsilon)

        query = self._queries()[0]
        if spec.mode == "search":
            return self.index.search(
                query, spec.epsilon, **self._call_options(executor)
            )
        if spec.mode == "knn":
            if self.native:
                options = self._call_options(executor)
                return self.index.knn(
                    query, spec.k, exclude=spec.exclude, **options
                )
            return scan_knn(
                self.index.source, query, spec.k, exclude=spec.exclude
            )
        if spec.mode == "exists":
            if self.native:
                return self.index.exists(query, spec.epsilon)
            return (
                len(self.index.search(query, spec.epsilon, **self.options))
                > 0
            )
        # mode == "count"
        if self.native:
            if executor is not None and self.fan_out:
                # Composite planes (sharded, live) sum per-part counts;
                # the parts fan out exactly like a search would.
                return self.index.count(
                    query, spec.epsilon, executor=executor
                )
            return self.index.count(query, spec.epsilon)
        # Search-backed synthesis: the plane's own (pruned) traversal
        # beats an exhaustive scan on every indexed plane; callers who
        # need bounded memory on huge result sets use scan_count.
        return len(self.index.search(query, spec.epsilon, **self.options))


#: Capability a mode needs to run natively.
_MODE_CAPABILITY = {
    "search": None,  # mandatory: every plane brings search
    "knn": CAP_KNN,
    "exists": CAP_EXISTS,
    "count": CAP_COUNT,
    "batch": CAP_SEARCH_BATCH,
}


def plan(index: Any, spec: QuerySpec) -> QueryPlan:
    """Negotiate ``spec`` against ``index``'s declared capabilities.

    Queries shorter than the plane's window length plan onto the
    variable-length path: ``search`` (and the search-derived
    ``exists``/``count``) runs on the plane's native prefix kernel when
    it declares :data:`~repro.query.capabilities.CAP_VARLENGTH`, the
    synthesized prefix scan otherwise; ``knn`` is always the exact
    prefix scan; batches dispatch per query. Targets that are not query
    planes at all (no ``search`` kernel) fail with the typed
    :class:`~repro.exceptions.UnsupportedCapabilityError` instead of an
    ``AttributeError`` deep inside a kernel.
    """
    if not callable(getattr(index, "search", None)):
        raise UnsupportedCapabilityError(
            f"{type(index).__name__} is not a query plane: it has no "
            "search kernel"
        )
    caps = capabilities_of(index)
    required = _MODE_CAPABILITY[spec.mode]
    native = required is None or required in caps
    options = dict(spec.options)
    if CAP_VERIFICATION not in caps:
        options.pop("verification", None)
    if CAP_BATCHED_KERNEL not in caps:
        options.pop("batched", None)
    if CAP_FANOUT_TIMEOUT not in caps:
        # Only fan-out planes can bound their parts with a deadline or
        # answer degraded; everywhere else the options are meaningless.
        options.pop("timeout", None)
        options.pop("degraded", None)
    varlength = False
    length = _plane_length(index)
    if length is not None:
        varlength = any(
            is_prefix_query(query, length) for query in spec.query_list()
        )
    if varlength:
        # The prefix kernels serve search (and the search-derived
        # modes); nothing batched-kernel-shaped applies (and the prefix
        # kernels take no fan-out deadline), and ``native`` now reports
        # whether the *prefix* kernel is the plane's own.
        options.pop("batched", None)
        options.pop("timeout", None)
        options.pop("degraded", None)
        native = CAP_VARLENGTH in caps and spec.mode != "knn"
    if spec.mode in ("knn", "exists", "count") and not varlength:
        # These modes take no kernel options — ``verification``/
        # ``batched`` parameterize the search kernels only, and no
        # plane's native knn accepts them either.
        options = {}
    plans_total, varlength_total = _metrics()
    plans_total.labels(mode=spec.mode, native=str(native).lower()).inc()
    if varlength:
        varlength_total.inc()
    return QueryPlan(
        index=index,
        spec=spec,
        capabilities=caps,
        native=native,
        options=options,
        fan_out=CAP_EXECUTOR in caps,
        varlength=varlength,
    )


def execute(index: Any, spec: QuerySpec, *, executor: Any = None) -> Any:
    """Plan and run ``spec`` against ``index`` in one call."""
    return plan(index, spec).execute(executor=executor)
