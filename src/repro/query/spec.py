"""QuerySpec — the single description and preparation of a twin query.

The paper defines one query semantics (all Chebyshev-``ε`` twins of a
window); this module owns the one implementation of everything that
happens *before* an index kernel runs:

* parameter validation (``ε >= 0``, ``k >= 1``, well-formed exclusion
  zones) — previously re-implemented by every plane entry point;
* **domain mapping**: queries arrive either already expressed in the
  index's value domain (``domain="index"``, the default — e.g. a window
  extracted from the indexed source) or in the **raw** value domain
  (``domain="raw"`` — e.g. values read from a file). Under global
  z-normalization a raw query must be mapped with the *series'* moments
  before it is comparable to the indexed windows; that mapping used to
  be open-coded in the CLI and now lives here;
* the final per-query normalization handshake with the window source
  (:func:`prepare_values` is the library's one call site of
  :meth:`~repro.core.windows.WindowSource.prepare_query`).

Planes never call ``source.prepare_query`` directly any more — they go
through :func:`prepare_values`, so validation and mapping behave
identically on every plane.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from .._util import (
    as_float_array,
    check_non_negative,
    check_positive_int,
)
from ..core.normalization import STD_FLOOR, Normalization
from ..exceptions import (
    IncompatibleQueryError,
    InvalidParameterError,
    UnsupportedNormalizationError,
)

#: Query modes the pipeline understands.
MODES = ("search", "knn", "exists", "count", "batch")

#: Value domains a query can arrive in.
DOMAINS = ("index", "raw")


def normalize_exclude(exclude: Any) -> tuple[int, int] | None:
    """Validate and normalize a k-NN exclusion zone to ``(int, int)``.

    The one implementation of the ``start <= stop`` check previously
    duplicated by the sharded and live planes.
    """
    if exclude is None:
        return None
    try:
        start, stop = int(exclude[0]), int(exclude[1])
    except (TypeError, ValueError, IndexError) as exc:
        raise InvalidParameterError(
            f"exclude must be a (start, stop) pair, got {exclude!r}"
        ) from exc
    if start > stop:
        raise InvalidParameterError(
            f"exclude range must satisfy start <= stop, got {exclude}"
        )
    return (start, stop)


def map_raw_to_index_domain(source: Any, values: Any) -> np.ndarray:
    """Map raw-value-domain query values into ``source``'s domain.

    Under ``GLOBAL`` the index holds windows of the z-normalized series
    and expects normalized-domain queries; the mapping uses the
    *series'* moments — elementwise, so a raw slice of the original
    series matches its indexed window exactly. Under ``NONE`` and
    ``PER_WINDOW`` raw values are already comparable (per-window scaling
    is applied by the source's own preparation).
    """
    values = as_float_array(values, name="query")
    if source.normalization is not Normalization.GLOBAL:
        return values
    raw = np.asarray(source.series.values)
    std = float(raw.std())
    if std < STD_FLOOR:
        return np.zeros_like(values)
    return (values - float(raw.mean())) / std


def check_varlength_query(query: Any, length: int, normalization: Any) -> np.ndarray:
    """Validate a variable-length query from the plane's shape alone.

    The one implementation of the ``m <= l`` acceptance rule —
    coercion, the typed ``m > l`` rejection (``received`` populated),
    and the typed per-window rejection for ``m < l`` — shared by
    :func:`prepare_values` and by planes whose window source may not
    exist yet (a live plane before its first full window). Returns the
    coerced query values.
    """
    values = as_float_array(query, name="query")
    length = int(length)
    if values.size > length:
        raise IncompatibleQueryError(
            f"query length {values.size} exceeds the indexed window "
            f"length {length}",
            expected=length,
            received=values.size,
        )
    if (
        values.size < length
        and Normalization.coerce(normalization) is Normalization.PER_WINDOW
    ):
        raise UnsupportedNormalizationError(
            "variable-length queries are undefined under per-window "
            "z-normalization: indexed windows are normalized over l "
            "points, a shorter query over m points"
        )
    return values


def query_extent(query: Any) -> int | tuple[int, ...] | None:
    """Best-effort length of ``query`` for error reporting: its element
    count for a 1-D query, its shape for anything higher-dimensional,
    ``None`` when the value cannot even be coerced to an array."""
    try:
        array = np.asarray(query)
    except Exception:
        return None
    if array.ndim <= 1:
        return int(array.size)
    return tuple(int(side) for side in array.shape)


def prepare_values(
    source: Any,
    query: Any,
    *,
    domain: str = "index",
    expected: Any = None,
    varlength: bool = False,
) -> np.ndarray:
    """Validate + normalize one query against ``source``.

    This is the library's single call site of
    :meth:`~repro.core.windows.WindowSource.prepare_query`; every plane
    routes its query preparation through here. With ``expected`` set
    (the plane's window length), a malformed query raises
    :class:`~repro.exceptions.IncompatibleQueryError` instead of the
    plain parameter error — the convention of the TS-Index planes.

    With ``varlength=True`` any query of length ``m <= l`` is accepted:
    shorter queries are validated and domain-mapped here but skip the
    source's fixed-length handshake (a prefix query is compared against
    window *prefixes*, so no per-query normalization applies — and the
    per-window regime is rejected with a typed error, because windows
    normalized over ``l`` points are not comparable with a query over
    ``m`` points). ``m == l`` behaves exactly like the fixed path.
    """
    if domain not in DOMAINS:
        raise InvalidParameterError(
            f"unknown query domain {domain!r}; expected one of {DOMAINS}"
        )
    if domain == "raw":
        query = map_raw_to_index_domain(source, query)
    if varlength:
        values = check_varlength_query(
            query, source.length, source.normalization
        )
        if values.size < int(source.length):
            return values
        query = values
    try:
        return source.prepare_query(query)
    except InvalidParameterError as exc:
        if expected is None:
            raise
        raise IncompatibleQueryError(
            str(exc), expected=expected, received=query_extent(query)
        ) from exc


@dataclasses.dataclass(frozen=True)
class PreparedQuery:
    """A validated :class:`QuerySpec` bound to one window source."""

    #: The spec this preparation executed.
    spec: "QuerySpec"
    #: Prepared query arrays in the index domain (one entry per query;
    #: single-query modes hold exactly one).
    queries: tuple
    #: Validated threshold (``None`` for knn mode).
    epsilon: float | None
    #: Validated neighbour count (``None`` outside knn mode).
    k: int | None
    #: Normalized exclusion zone (knn mode only).
    exclude: tuple[int, int] | None

    @property
    def query(self) -> np.ndarray:
        """The single prepared query of a non-batch mode."""
        return self.queries[0]


@dataclasses.dataclass(frozen=True)
class QuerySpec:
    """One declarative description of a twin query, any mode, any plane.

    ``query`` holds the query values (or, in ``batch`` mode, a sequence
    of them); ``mode`` selects the semantics; ``epsilon``/``k``/
    ``exclude`` parameterize it; ``domain`` says which value domain the
    values arrive in; ``options`` carries per-call kernel options (e.g.
    ``verification``) that the planner filters against the target
    plane's capabilities.

    Validation happens eagerly at construction — a ``QuerySpec`` that
    exists is well-formed, whatever plane it later runs on.

    Examples
    --------
    >>> spec = QuerySpec(query=[0.0, 1.0], mode="search", epsilon=0.5)
    >>> spec.epsilon
    0.5
    >>> QuerySpec(query=[0.0], mode="knn", k=3).k
    3
    """

    query: Any = None
    mode: str = "search"
    epsilon: float | None = None
    k: int | None = None
    exclude: tuple[int, int] | None = None
    domain: str = "index"
    options: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise InvalidParameterError(
                f"unknown query mode {self.mode!r}; expected one of {MODES}"
            )
        if self.domain not in DOMAINS:
            raise InvalidParameterError(
                f"unknown query domain {self.domain!r}; "
                f"expected one of {DOMAINS}"
            )
        if self.mode == "knn":
            if self.k is None:
                raise InvalidParameterError("knn mode requires k")
            object.__setattr__(
                self, "k", check_positive_int(self.k, name="k")
            )
            object.__setattr__(
                self, "exclude", normalize_exclude(self.exclude)
            )
        else:
            if self.epsilon is None:
                raise InvalidParameterError(
                    f"{self.mode} mode requires epsilon"
                )
            if self.exclude is not None:
                raise InvalidParameterError(
                    "exclude is only meaningful in knn mode"
                )
            object.__setattr__(
                self,
                "epsilon",
                check_non_negative(self.epsilon, name="epsilon"),
            )

    @property
    def is_batch(self) -> bool:
        """Whether ``query`` holds a workload rather than one query."""
        return self.mode == "batch"

    def query_list(self) -> list:
        """The raw (unprepared) queries, always as a list."""
        if self.is_batch:
            return list(self.query)
        return [self.query]

    def prepare(self, source: Any) -> PreparedQuery:
        """Validate and map every query into ``source``'s index domain.

        The one ``prepare()`` of the pipeline: after this, the values
        are exactly what any plane's kernel expects, regardless of the
        arrival domain or the normalization regime. Any query length
        ``m <= l`` is accepted — shorter queries are the
        variable-length workload the planner serves through prefix
        kernels (``m > l``, and ``m < l`` under the per-window regime,
        raise the library's typed errors here).
        """
        queries = tuple(
            prepare_values(
                source, query, domain=self.domain, varlength=True
            )
            for query in self.query_list()
        )
        return PreparedQuery(
            spec=self,
            queries=queries,
            epsilon=self.epsilon,
            k=self.k,
            exclude=self.exclude,
        )
