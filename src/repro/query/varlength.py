"""Variable-length (prefix) query kernels shared by every plane.

The paper's related work cites ULISSE (Linardi & Palpanas, VLDBJ'20)
for "queries of varying length"; this module is the library's serving
machinery for query lengths ``m <= l`` (the indexed window length),
built on a property that is immediate for Chebyshev distance: any
time-aligned *prefix* of two twins is itself a pair of twins
(Section 3.1's second observation). Hence:

* a node's MBTS restricted to its first ``m`` timestamps is a valid
  envelope for the ``m``-prefixes of every window under the node, so
  the Eq. 2 bound over the prefix prunes losslessly — the native
  kernels on the tree and frozen planes exploit exactly this;
* verification compares the query against the ``m``-window at each
  candidate position, which is what :func:`prefix_source` exposes: a
  zero-copy window source of every ``m``-window of the prepared value
  buffer — **including the tail positions** (the last ``l - m`` window
  starts that have no full ``l``-window and are absent from the index).

Everything here answers from the plane's prepared value buffer, so the
results of a native prefix traversal, the synthesized
:func:`scan_prefix_search`, and a composite plane's per-part fan-out
agree bitwise (positions and distances) — the conformance suite in
``tests/test_varlength_planes.py`` enforces it across all seven planes.

Per-window z-normalization is rejected for ``m < l`` (windows
normalized over ``l`` points are not comparable with a query over
``m`` points — see :func:`repro.query.spec.prepare_values`); the raw
and globally-normalized regimes are exact.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .._util import POSITION_DTYPE, check_non_negative
from ..core.normalization import Normalization
from ..core.stats import QueryStats, SearchResult
from ..core.verification import verify
from ..core.windows import WindowSource, assemble_source
from .spec import prepare_values

#: Kernel name reported by :func:`scan_prefix_search` plans/benchmarks.
PREFIX_SCAN = "prefix_scan"


def is_prefix_query(query: Any, length: Any) -> bool:
    """Whether ``query`` is a well-formed 1-D query *shorter* than the
    indexed window length — the planes' dispatch predicate: their
    fixed-length kernels hand such queries to the pipeline's prefix
    path. Malformed queries return ``False`` and fall through to the
    caller's own validation, so error behaviour is unchanged."""
    try:
        array = np.asarray(query)
    except Exception:
        return False
    return (
        array.ndim == 1
        and array.dtype != object
        and 0 < array.size < int(length)
    )


def prefix_source(source: WindowSource, m: int) -> WindowSource:
    """A window source over every ``m``-window of ``source``'s prepared
    value buffer — zero-copy, and covering ``|T| - m + 1`` positions
    (``>= source.count``), i.e. the series tail included.

    The result carries the ``NONE`` regime because the buffer is
    already expressed in the index's value domain (raw, or globally
    z-normalized by the source's own preparation); the per-window
    regime never reaches here (rejected at query preparation).
    """
    return assemble_source(
        source.values, int(m), Normalization.NONE, name=source.series.name
    )


def tail_positions(source: WindowSource, m: int) -> np.ndarray:
    """Start positions in the series tail: the ``l - m`` window starts
    past the last indexed ``l``-window (empty when ``m == l``)."""
    return np.arange(
        source.count, source.values.size - int(m) + 1, dtype=POSITION_DTYPE
    )


def verify_prefix(
    source: WindowSource,
    query: np.ndarray,
    positions: Any,
    epsilon: float,
    *,
    mode: str = "bulk",
    stats: QueryStats | None = None,
) -> SearchResult:
    """Exactly verify candidate positions against their ``m``-windows.

    Routes through the library's chunked verification strategies
    (:mod:`repro.core.verification`), so peak memory is block-bounded
    regardless of the candidate count — the fix for the old extension's
    one-shot ``sliding_window_view(values, m)[positions]`` candidate
    matrix. ``query`` must already be prepared (index value domain);
    positions may include tail positions up to ``|T| - m``.
    """
    return verify(
        prefix_source(source, query.size), query, positions, epsilon,
        mode=mode, stats=stats,
    )


def prefix_search_with_tail(
    plane: Any, query: Any, epsilon: float, *, verification: str = "bulk"
) -> SearchResult:
    """The monolithic-plane prefix search driver (TSIndex, frozen).

    Validates and prepares the query (``m == l`` delegates to the
    plane's fixed-length ``search`` — identical positions, distances
    and counters), collects unverified candidates through the plane's
    ``collect_varlength_candidates`` hook, appends the ``l - m`` tail
    positions the index does not store, and verifies everything
    block-bounded. One implementation, so the tree and frozen planes
    cannot drift.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    source = plane.source
    query = prepare_values(source, query, varlength=True)
    if query.size == source.length:
        return plane.search(query, epsilon, verification=verification)
    stats = QueryStats()
    candidates = plane.collect_varlength_candidates(query, epsilon, stats)
    positions = np.concatenate(
        (candidates, tail_positions(source, query.size))
    )
    return verify_prefix(
        source, query, positions, epsilon, mode=verification, stats=stats
    )


def prefix_search_part(
    tree: Any, query: np.ndarray, epsilon: float, *, verification: str = "bulk"
) -> SearchResult:
    """One composite-plane part (a shard, a segment, the delta): prefix
    candidates over the part's *indexed* windows, verified against its
    own value chunk — no tail, the composite plane covers that once.
    ``query`` must already be prepared."""
    stats = QueryStats()
    candidates = tree.collect_varlength_candidates(query, epsilon, stats)
    return verify_prefix(
        tree.source, query, candidates, epsilon,
        mode=verification, stats=stats,
    )


def merge_exists_stats(stats: QueryStats | None, result: SearchResult) -> None:
    """Accumulate a search's counters into a caller-provided ``stats``
    (the ``exists(..., stats=)`` affordance on the prefix path)."""
    if stats is None:
        return
    merged = stats.merge(result.stats)
    for name, value in vars(merged).items():
        setattr(stats, name, value)


def scan_prefix_search(
    source: WindowSource,
    query: Any,
    epsilon: float,
    *,
    verification: str = "bulk",
    stats: QueryStats | None = None,
) -> SearchResult:
    """Brute-force prefix scan: every ``m``-window (tail included)
    exactly verified against the query.

    This is the planner's synthesized variable-length ``search`` for
    planes without a native prefix kernel (sweepline, KV-Index, iSAX),
    and the oracle the cross-plane conformance suite compares every
    plane against. ``query`` arrives in the index value domain; the
    preparation applies the same validation (``m <= l``, typed
    per-window rejection) as the native kernels.
    """
    epsilon = check_non_negative(epsilon, name="epsilon")
    query = prepare_values(source, query, varlength=True)
    stats = stats if stats is not None else QueryStats()
    psource = prefix_source(source, query.size)
    positions = np.arange(psource.count, dtype=POSITION_DTYPE)
    return verify(
        psource, query, positions, epsilon, mode=verification, stats=stats
    )


def scan_prefix_knn(
    source: WindowSource, query: Any, k: int, exclude: Any = None
) -> SearchResult:
    """Exact k-NN over every ``m``-window (tail included), ranked by the
    library-wide ``(distance, position)`` tie-break — the one
    variable-length k-NN kernel (every plane serves it; prefix pruning
    buys nothing without a best-first bound over unindexed tails)."""
    from .planner import scan_knn  # lazy: planner imports this module

    query = prepare_values(source, query, varlength=True)
    return scan_knn(
        prefix_source(source, query.size), query, k, exclude=exclude
    )
