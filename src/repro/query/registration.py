"""Decorator-based plane registration — the factory behind
:func:`repro.indices.base.create_method`.

Planes self-register at definition time with :func:`register_plane`
instead of being hard-coded in an ``if/elif`` chain::

    @register_plane("sweepline", paper=True)
    class SweeplineSearch(SubsequenceIndex):
        ...

The decorator works on a class (its ``from_source`` classmethod becomes
the builder) or on a plain ``(source, **kwargs) -> plane`` builder
function (for planes whose construction needs kwargs massaging, e.g.
TS-Index's loose ``TSIndexParams`` fields).

Because registration happens on import, :func:`resolve_plane` lazily
imports the known plane modules on first use — callers never have to
pre-import anything, and adding a plane is one decorator plus one
module-path entry in :data:`PLANE_MODULES`.
"""

from __future__ import annotations

import dataclasses
import importlib
import inspect
import threading
from typing import Any

from ..exceptions import InvalidParameterError

#: Modules whose import registers the library's planes. Paper methods
#: first (their registration order defines the paper-method listing),
#: then the extended serving planes.
PLANE_MODULES = (
    "repro.indices.sweepline",
    "repro.indices.kvindex",
    "repro.indices.isax",
    "repro.core.tsindex",
    "repro.core.frozen",
    "repro.engine.sharding",
    "repro.live.index",
)


@dataclasses.dataclass(frozen=True)
class PlaneInfo:
    """One registered plane: canonical name, builder, classification."""

    name: str
    builder: object
    #: True for the paper's four methods, False for extended planes
    #: (frozen / sharded / live).
    paper: bool
    aliases: tuple[str, ...]
    summary: str
    #: Defining module — orders listings canonically (see
    #: :data:`PLANE_MODULES`) regardless of import order.
    module: str = ""

    def build(self, source: Any, **kwargs: Any) -> Any:
        """Build the plane over a prepared window source."""
        return self.builder(source, **kwargs)


_PLANES: dict[str, PlaneInfo] = {}
_ALIASES: dict[str, str] = {}
_LOAD_LOCK = threading.Lock()
_LOADED = False


def _normalize(name: Any) -> str:
    return str(name).lower().replace("-", "").replace("_", "")


def register_plane(
    name: str,
    *,
    aliases: tuple[str, ...] = (),
    paper: bool = False,
    summary: str = "",
) -> Any:
    """Class/function decorator registering a query plane under ``name``.

    On a class, the builder is ``cls.from_source``; on a function, the
    function itself (called as ``builder(source, **kwargs)``). Aliases
    resolve to the same plane (name matching is case-insensitive and
    ignores ``-``/``_``, as the factory always has).
    """

    def decorate(obj: Any) -> Any:
        builder = obj.from_source if inspect.isclass(obj) else obj
        info = PlaneInfo(
            name=name,
            builder=builder,
            paper=paper,
            aliases=tuple(aliases),
            summary=summary,
            module=getattr(obj, "__module__", ""),
        )
        key = _normalize(name)
        _PLANES[key] = info
        _ALIASES[key] = key
        for alias in aliases:
            _ALIASES[_normalize(alias)] = key
        return obj

    return decorate


def _ensure_loaded() -> None:
    """Import every known plane module once (idempotent, thread-safe)."""
    global _LOADED
    if _LOADED:
        return
    with _LOAD_LOCK:
        if _LOADED:
            return
        for module in PLANE_MODULES:
            importlib.import_module(module)
        _LOADED = True


def resolve_plane(name: Any) -> PlaneInfo:
    """The registered plane for ``name`` (or an alias of it).

    Unknown names raise :class:`InvalidParameterError` listing **every**
    name that actually works — paper methods and extended planes alike.
    """
    _ensure_loaded()
    key = _ALIASES.get(_normalize(name))
    if key is None:
        paper = ", ".join(plane_names(paper=True))
        extended = ", ".join(plane_names(paper=False))
        raise InvalidParameterError(
            f"unknown method {name!r}; expected a paper method "
            f"({paper}) or an extended plane ({extended})"
        )
    return _PLANES[key]


def _ordered_infos() -> list[PlaneInfo]:
    """Registered planes in canonical order: :data:`PLANE_MODULES`
    position first (so listings don't depend on import order), then
    registration order for planes from other modules."""
    infos = list(_PLANES.values())

    def key(pair: tuple[int, PlaneInfo]) -> tuple[int, int, int]:
        position, info = pair
        try:
            return (0, PLANE_MODULES.index(info.module), position)
        except ValueError:
            return (1, 0, position)

    return [info for _, info in sorted(enumerate(infos), key=key)]


def plane_names(*, paper: bool | None = None) -> tuple[str, ...]:
    """Canonical registered names, in canonical order.

    ``paper=True`` → the paper's methods; ``paper=False`` → the
    extended serving planes; ``None`` → everything.
    """
    _ensure_loaded()
    return tuple(
        info.name
        for info in _ordered_infos()
        if paper is None or info.paper is paper
    )


def plane_infos() -> tuple[PlaneInfo, ...]:
    """Every registered plane, in canonical order."""
    _ensure_loaded()
    return tuple(_ordered_infos())
