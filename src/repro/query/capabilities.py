"""Capability names a query plane can declare.

Every plane (paper method, frozen snapshot, sharded engine, live
ingestion plane) advertises what its kernels implement *natively*
through a ``capabilities`` frozenset of these strings; the planner
(:mod:`repro.query.planner`) calls native kernels where they exist and
synthesizes the rest centrally — so a plane only ever has to implement
``search`` to be fully servable.

This module is import-leaf (no intra-package imports) so planes in any
layer — :mod:`repro.core`, :mod:`repro.indices`, :mod:`repro.engine`,
:mod:`repro.live` — can declare capabilities without import cycles.
"""

from __future__ import annotations

from typing import Any

#: The plane answers ``search(query, epsilon)`` itself. Mandatory — the
#: one kernel every plane must bring.
CAP_SEARCH = "search"

#: Native ``knn(query, k, exclude=...)`` with the library-wide
#: ``(distance, position)`` tie-break.
CAP_KNN = "knn"

#: Native ``exists(query, epsilon)`` (early-exit membership probe).
CAP_EXISTS = "exists"

#: Native ``count(query, epsilon)`` that beats re-running ``search``
#: and measuring the result.
CAP_COUNT = "count"

#: Native ``search_batch(queries, epsilon)`` whole-workload entry point.
CAP_SEARCH_BATCH = "search_batch"

#: The plane's batch kernel accepts the ``batched=`` toggle selecting
#: the shared-traversal path (see
#: :meth:`repro.engine.sharding.ShardedTSIndex.search_batch`).
CAP_BATCHED_KERNEL = "batched"

#: Query methods accept an ``executor=`` for internal fan-out (sharded
#: and live planes fan out over shards/segments).
CAP_EXECUTOR = "executor"

#: ``search`` accepts the ``verification=`` strategy option.
CAP_VERIFICATION = "verification"

#: Native ``search_varlength(query, epsilon)`` serving queries of any
#: length ``m <= l`` (prefix-envelope pruning + tail coverage). Planes
#: without it are still servable: the planner synthesizes variable
#: length with a prefix scan kernel.
CAP_VARLENGTH = "varlength"

#: ``search`` accepts ``timeout=`` (a per-part fan-out deadline) and
#: ``degraded=`` (serve the parts that answered instead of failing
#: fast with :class:`~repro.exceptions.ShardTimeoutError`). Only
#: fan-out planes — sharded and live — can bound their parts this way;
#: the planner drops the options everywhere else.
CAP_FANOUT_TIMEOUT = "fanout_timeout"

#: Every capability name, for validation and documentation.
ALL_CAPABILITIES = frozenset(
    {
        CAP_SEARCH,
        CAP_KNN,
        CAP_EXISTS,
        CAP_COUNT,
        CAP_SEARCH_BATCH,
        CAP_BATCHED_KERNEL,
        CAP_EXECUTOR,
        CAP_VERIFICATION,
        CAP_VARLENGTH,
        CAP_FANOUT_TIMEOUT,
    }
)

#: What a plane that only implements ``search`` supports (the
#: :class:`~repro.indices.base.SubsequenceIndex` default): plain search
#: with a verification strategy; everything else is synthesized.
BASE_CAPABILITIES = frozenset({CAP_SEARCH, CAP_VERIFICATION})


def capabilities_of(index: Any) -> frozenset:
    """The declared capability set of ``index`` (defaults to
    :data:`BASE_CAPABILITIES` for planes that declare nothing)."""
    return frozenset(getattr(index, "capabilities", BASE_CAPABILITIES))
