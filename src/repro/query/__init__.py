"""repro.query — the plane-agnostic query pipeline.

One ``QuerySpec → plan → execute → merge`` path serves every index
plane in the library — the four paper methods (sweepline, KV-Index,
iSAX, TS-Index), the frozen flat plane, the sharded engine and the live
ingestion plane — through exactly one implementation of query
preparation, capability dispatch, result merging and stats aggregation:

* :class:`QuerySpec` / :meth:`QuerySpec.prepare` — validation plus
  raw→index domain mapping (:mod:`repro.query.spec`);
* :func:`plan` / :func:`execute` — capability negotiation and central
  synthesis of ``knn`` / ``exists`` / ``search_batch`` / ``count`` for
  planes that only bring ``search`` (:mod:`repro.query.planner`);
* :func:`merge_offset_search` / :func:`merge_knn` /
  :func:`aggregate_stats` — the shared merge kernels every composite
  plane reuses (:mod:`repro.query.merge`);
* :func:`register_plane` — decorator-based plane registration backing
  :func:`repro.indices.base.create_method` (:mod:`repro.query.registration`).
"""

from .._util import map_with_executor
from .capabilities import (
    ALL_CAPABILITIES,
    BASE_CAPABILITIES,
    CAP_BATCHED_KERNEL,
    CAP_COUNT,
    CAP_EXECUTOR,
    CAP_EXISTS,
    CAP_KNN,
    CAP_SEARCH,
    CAP_SEARCH_BATCH,
    CAP_VARLENGTH,
    CAP_VERIFICATION,
    capabilities_of,
)
from .merge import (
    aggregate_stats,
    batch_result,
    merge_knn,
    merge_offset_search,
)
from .planner import (
    QueryPlan,
    execute,
    plan,
    scan_count,
    scan_knn,
)
from .registration import (
    PlaneInfo,
    plane_infos,
    plane_names,
    register_plane,
    resolve_plane,
)
from .spec import (
    PreparedQuery,
    QuerySpec,
    check_varlength_query,
    map_raw_to_index_domain,
    normalize_exclude,
    prepare_values,
    query_extent,
)
from .varlength import (
    prefix_source,
    scan_prefix_search,
    tail_positions,
    verify_prefix,
)

__all__ = [
    "ALL_CAPABILITIES",
    "BASE_CAPABILITIES",
    "CAP_BATCHED_KERNEL",
    "CAP_COUNT",
    "CAP_EXECUTOR",
    "CAP_EXISTS",
    "CAP_KNN",
    "CAP_SEARCH",
    "CAP_SEARCH_BATCH",
    "CAP_VARLENGTH",
    "CAP_VERIFICATION",
    "PlaneInfo",
    "PreparedQuery",
    "QueryPlan",
    "QuerySpec",
    "aggregate_stats",
    "batch_result",
    "capabilities_of",
    "check_varlength_query",
    "execute",
    "map_raw_to_index_domain",
    "map_with_executor",
    "merge_knn",
    "merge_offset_search",
    "normalize_exclude",
    "plan",
    "plane_infos",
    "plane_names",
    "prefix_source",
    "prepare_values",
    "query_extent",
    "register_plane",
    "resolve_plane",
    "scan_count",
    "scan_knn",
    "scan_prefix_search",
    "tail_positions",
    "verify_prefix",
]
