"""Shared result-merge kernels: offset concat, k-way k-NN, stats.

Every composite plane (the sharded engine's shard fan-out, the live
plane's delta + segments) merges partial results the same way:

* ``search`` partials cover disjoint ascending position spans, so the
  merge is an offset-and-concatenate — the result is globally sorted by
  position without a final sort, exactly the monolithic answer;
* ``knn`` partials are re-ranked globally by the library-wide
  ``(distance, position)`` tie-break and truncated to ``k``;
* structural :class:`~repro.core.stats.QueryStats` counters are summed
  element-wise, in part order, so merged stats stay deterministic.

These three kernels used to live in both ``engine/sharding.py`` and
``live/index.py``; this module is now their single implementation.
"""

from __future__ import annotations

import heapq
from typing import Iterable

import numpy as np

from .._util import FLOAT_DTYPE, POSITION_DTYPE
from ..core.batch import BatchResult
from ..core.stats import QueryStats, SearchResult


def aggregate_stats(stats: Iterable[QueryStats]) -> QueryStats:
    """Element-wise sum of structural counters, in iteration order."""
    merged = QueryStats()
    for entry in stats:
        merged = merged.merge(entry)
    return merged


def merge_offset_search(
    parts: Iterable[tuple[int, SearchResult]]
) -> SearchResult:
    """Merge ``search`` partials from disjoint ascending spans.

    ``parts`` yields ``(offset, result)`` pairs ordered by span; each
    partial's positions are re-offset into the global frame and
    concatenated. Because spans are disjoint and ascending, the merged
    positions are globally sorted without a final sort — byte-identical
    to the monolithic result.
    """
    merged_stats = QueryStats()
    positions: list[np.ndarray] = []
    distances: list[np.ndarray] = []
    for offset, result in parts:
        merged_stats = merged_stats.merge(result.stats)
        if result.positions.size:
            positions.append(result.positions + offset)
            distances.append(result.distances)
    if not positions:
        return SearchResult.empty(merged_stats)
    return SearchResult(
        positions=np.concatenate(positions),
        distances=np.concatenate(distances),
        stats=merged_stats,
    )


def merge_knn(
    parts: Iterable[tuple[int, SearchResult]], k: int
) -> SearchResult:
    """Merge per-part k-NN partials into the global top ``k``.

    The union of all partial answers is re-ranked by the library-wide
    ``(distance, position)`` tie-break and truncated — so the merged
    answer equals the monolithic one exactly, not approximately.
    """
    merged_stats = QueryStats()
    entries: list[tuple[float, int]] = []
    for offset, result in parts:
        merged_stats = merged_stats.merge(result.stats)
        entries.extend(
            (float(distance), int(position) + offset)
            for position, distance in zip(
                result.positions.tolist(), result.distances.tolist()
            )
        )
    top = heapq.nsmallest(k, entries)
    merged_stats.matches = len(top)
    return SearchResult(
        positions=np.asarray([p for _, p in top], dtype=POSITION_DTYPE),
        distances=np.asarray([d for d, _ in top], dtype=FLOAT_DTYPE),
        stats=merged_stats,
    )


def batch_result(results: list[SearchResult], epsilon: float) -> BatchResult:
    """Wrap per-query results into a :class:`BatchResult` with the
    workload-level stats aggregate — the one batch-assembly helper."""
    return BatchResult(
        results=results,
        stats=aggregate_stats(result.stats for result in results),
        epsilon=float(epsilon),
    )
