"""Command-line experiment driver and engine front end.

Regenerate any table or figure of the paper::

    python -m repro.cli table1
    python -m repro.cli fig4 --dataset insect
    python -m repro.cli fig5 --dataset eeg --scale 0.05
    python -m repro.cli fig8 --dataset both --queries 20
    python -m repro.cli intro --dataset eeg
    python -m repro.cli all --queries 20 --scale-eeg 0.05

Defaults follow the paper (100 queries of length 100); ``--scale-eeg``
truncates the 1.8M-point EEG surrogate so tree construction stays
tractable in pure Python (DESIGN.md §4 explains why this preserves the
comparisons).

Drive the sharded query engine (:mod:`repro.engine`)::

    python -m repro.cli engine build --output idx.npz --dataset insect \
        --scale 0.1 --length 100 --shards 4          # frozen by default
    python -m repro.cli engine build --output idx.npz --no-frozen \
        --dataset insect                             # dynamic pointer trees
    python -m repro.cli engine query --index idx.npz --position 250 \
        --epsilon 0.5
    python -m repro.cli engine query --index idx.npz --position 250 --knn 5
    python -m repro.cli engine stats --index idx.npz

Drive the live ingestion plane (:mod:`repro.live`) — a durable,
appendable index with WAL recovery::

    python -m repro.cli live init --path ./traffic --length 100
    python -m repro.cli live append --path ./traffic --input readings.csv
    python -m repro.cli live append --path ./traffic --values 1.5,2.0,1.8
    python -m repro.cli live query --path ./traffic --position 250 \
        --epsilon 0.5
    python -m repro.cli live stats --path ./traffic

Inspect the observability plane (:mod:`repro.obs`) — the `stats`
subcommands also take ``--json`` for machine-readable snapshots::

    python -m repro.cli engine stats --index idx.npz --json
    python -m repro.cli live stats --path ./traffic --json
    python -m repro.cli obs export --format prometheus
    python -m repro.cli obs export --format json

Chaos-test the serving stack (:mod:`repro.faults`) — kill-and-recover
loops and fault storms with byte-exact recovery checks::

    python -m repro.cli chaos kill --loops 10
    python -m repro.cli chaos storm --mode enospc --probability 0.2

Audit the source tree against the project's own invariants
(:mod:`repro.lint`) — failpoint registry, crash-safety, lock
discipline, layering, public-API hygiene::

    python -m repro.cli lint
    python -m repro.cli lint --check single-call-site --check wall-clock
    python -m repro.cli lint --format json
    python -m repro.cli lint --list
"""

from __future__ import annotations

import argparse
import sys

from .bench import experiments as exp
from .bench.reporting import format_series_table, format_table

#: Dataset scales used when the user does not override them.
DEFAULT_SCALE_INSECT = 1.0
DEFAULT_SCALE_EEG = 0.1

FIGURES = ("fig4", "fig5", "fig6", "fig7", "fig8")
COMMANDS = (
    ("table1", "table2", "intro", "all")
    + FIGURES
    + ("engine", "live", "obs", "chaos", "sweep", "lint")
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests).

    The ``engine`` command is dispatched to its own parser (see
    :func:`build_engine_parser`) before this one runs; it is listed in
    the choices so help and error messages stay complete.
    """
    from .indices.base import available_methods, extended_methods

    parser = argparse.ArgumentParser(
        prog="repro-twin",
        description="Regenerate the paper's tables and figures, or "
        "drive the sharded query engine.",
        epilog="engine subcommands: `engine build|query|stats` "
        "(see `repro-twin engine --help`). "
        f"query planes: paper methods {', '.join(available_methods())}; "
        f"extended planes {', '.join(extended_methods())}.",
    )
    parser.add_argument(
        "command",
        choices=COMMANDS,
        help="experiment to run, or `engine` for the serving engine",
    )
    parser.add_argument(
        "--dataset",
        choices=("insect", "eeg", "both"),
        default="both",
        help="dataset(s) to run against (default: both)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=100,
        help="workload size (paper: 100)",
    )
    parser.add_argument(
        "--scale-insect",
        type=float,
        default=DEFAULT_SCALE_INSECT,
        help="fraction of the insect series to use (default: 1.0)",
    )
    parser.add_argument(
        "--scale-eeg",
        type=float,
        default=DEFAULT_SCALE_EEG,
        help="fraction of the EEG series to use (default: 0.1)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override both dataset scales at once",
    )
    parser.add_argument(
        "--seed", type=int, default=1234, help="workload seed (default: 1234)"
    )
    return parser


def _contexts(args) -> list[exp.ExperimentContext]:
    names = ("insect", "eeg") if args.dataset == "both" else (args.dataset,)
    contexts = []
    for name in names:
        if args.scale is not None:
            scale = args.scale
        else:
            scale = args.scale_insect if name == "insect" else args.scale_eeg
        contexts.append(
            exp.ExperimentContext(
                dataset=name,
                scale=scale,
                query_count=args.queries,
                workload_seed=args.seed,
            )
        )
    return contexts


def _print_figure(data: exp.FigureData, *, chart: bool = True) -> None:
    print(f"\n== {data.figure} / {data.dataset} "
          f"(avg query time per method, ms) ==")
    print(
        format_series_table(
            data.sweep_name, data.sweep_values, data.series_ms, unit="ms"
        )
    )
    if chart:
        from .bench.charts import render_figure

        print()
        print(render_figure(data))
    checks = exp.check_figure_shape(data)
    if checks:
        print("shape checks: " + ", ".join(
            f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
        ))


def _run_command(command: str, contexts) -> None:
    if command == "table1":
        print("\n== Table 1: datasets and distance thresholds ==")
        print(format_table(exp.table1_rows()))
        return
    if command == "table2":
        print("\n== Table 2: other parameters ==")
        print(format_table(exp.table2_rows()))
        return

    for ctx in contexts:
        print(f"\n### dataset={ctx.dataset} scale={ctx.scale:g} "
              f"n={len(ctx.series)} queries={ctx.query_count}")
        if command == "intro":
            report = exp.run_intro(ctx)
            rows = [{
                "epsilon": report["epsilon"],
                "queries": report["queries"],
                "twin results": report["twin_results"],
                "euclidean results": report["euclidean_results"],
                "excess factor": round(report["excess_factor"], 1),
                "missed twins": report["missed_twins"],
            }]
            print(format_table(rows))
        elif command == "fig4":
            _print_figure(exp.run_figure4(ctx))
        elif command == "fig5":
            _print_figure(exp.run_figure5(ctx))
        elif command == "fig6":
            _print_figure(exp.run_figure6(ctx))
        elif command == "fig7":
            _print_figure(exp.run_figure7(ctx))
        elif command == "fig8":
            report = exp.run_figure8(ctx)
            print("\n== fig8: memory footprint and build time ==")
            print(format_table(report["rows"]))


# ----------------------------------------------------------------------
# Engine subcommands (repro.engine)
# ----------------------------------------------------------------------
def build_engine_parser() -> argparse.ArgumentParser:
    """Parser for the ``engine build|query|stats`` subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-twin engine",
        description="Build, query and inspect sharded twin-query engines.",
    )
    commands = parser.add_subparsers(dest="engine_command", required=True)

    build = commands.add_parser(
        "build", help="build a sharded TS-Index and save it to disk"
    )
    build.add_argument(
        "--output", required=True, help="archive path (.npz file or raw dir)"
    )
    build.add_argument(
        "--format",
        choices=("npz", "raw"),
        default="npz",
        help="archive container: compressed single-file npz, or a raw "
        "directory of uncompressed per-array files that later loads "
        "open O(1) via mmap (default: npz)",
    )
    source = build.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset",
        choices=("insect", "eeg"),
        default="insect",
        help="surrogate dataset to index (default: insect)",
    )
    source.add_argument("--input", help="CSV/text file with one series column")
    build.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="fraction of the dataset to index (default: 0.1)",
    )
    build.add_argument(
        "--length", type=int, default=100, help="window length (default: 100)"
    )
    build.add_argument(
        "--normalization",
        choices=("none", "global", "per_window"),
        default="global",
        help="value-preparation regime (default: global)",
    )
    build.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: auto from core count)",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=None,
        help="build thread count (default: one per shard)",
    )
    build.add_argument(
        "--frozen",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="freeze shards into flat read-optimized arrays after the "
        "build (identical answers, much faster queries; the archive "
        "stores the arrays natively). Default: on; pass --no-frozen "
        "to keep dynamic pointer trees.",
    )

    query = commands.add_parser(
        "query", help="run a twin or k-NN query against a saved engine"
    )
    query.add_argument("--index", required=True, help="archive built by `engine build`")
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--position",
        type=int,
        help="use the indexed window at this position as the query",
    )
    what.add_argument(
        "--query-file",
        help="CSV/text file with the query values in the raw value "
        "domain (mapped into the index's domain automatically)",
    )
    query.add_argument(
        "--epsilon", type=float, default=None, help="twin threshold ε"
    )
    query.add_argument(
        "--knn", type=int, default=None, help="run a k-NN query instead of ε"
    )
    query.add_argument(
        "--query-length",
        type=int,
        default=None,
        help="use only the first m values of the query (variable-length "
        "twin search over window prefixes, any m <= l; tail positions "
        "included)",
    )
    query.add_argument(
        "--limit",
        type=int,
        default=10,
        help="matches to print (default: 10; totals always shown)",
    )
    query.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="shard fan-out: serial in-process walk, a thread pool, or "
        "a process pool whose workers mmap the archive by path "
        "(default: serial; results are byte-identical)",
    )

    stats = commands.add_parser(
        "stats", help="per-shard structural stats of a saved engine"
    )
    stats.add_argument("--index", required=True, help="archive built by `engine build`")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the stats as one JSON object instead of tables",
    )
    return parser


def _engine_series(args):
    if args.input:
        from .data import load_series

        return load_series(args.input)
    from .data import load_dataset

    return load_dataset(args.dataset, scale=args.scale)


def _engine_load(path):
    from .engine import ShardedTSIndex
    from .persistence import load_index

    engine = load_index(path)
    if not isinstance(engine, ShardedTSIndex):
        raise SystemExit(
            f"{path}: not a sharded engine archive (got "
            f"{type(engine).__name__}; build one with `engine build`)"
        )
    return engine


def _fanout_pool(kind: str):
    """The fan-out executor behind a ``--executor`` flag: ``None``
    (serial), a thread pool, or a process pool sized to the CPUs this
    process may actually run on."""
    if kind == "thread":
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(thread_name_prefix="repro-cli")
    if kind == "process":
        from concurrent.futures import ProcessPoolExecutor

        from ._util import available_cpu_count

        return ProcessPoolExecutor(max_workers=available_cpu_count())
    return None


def _run_plane_query(index, args) -> int:
    """Run one search/k-NN query against any plane and print the result.

    The shared query path of the ``engine query`` and ``live query``
    subcommands: the query comes from ``--position`` (already in the
    index's value domain) or ``--query-file`` (raw values — the
    :class:`~repro.query.QuerySpec` ``domain="raw"`` mapping handles
    the global-normalization case that used to be open-coded here),
    and execution routes through the unified pipeline. Queries of any
    length ``m <= l`` are served (``--query-length`` truncates to a
    prefix; a short ``--query-file`` works as-is) — the planner
    dispatches them to the planes' variable-length kernels.
    """
    import numpy as np

    from .query import QuerySpec, execute

    if (args.epsilon is None) == (args.knn is None):
        raise SystemExit("pass exactly one of --epsilon or --knn")
    if args.position is not None:
        block = index.source.window_block(args.position, args.position + 1)
        query, domain = np.array(block[0]), "index"
    else:
        from .data import load_series

        query, domain = load_series(args.query_file).values, "raw"
    prefix = getattr(args, "query_length", None)
    if prefix is not None:
        if not 1 <= prefix <= query.size:
            raise SystemExit(
                f"--query-length must lie in [1, {query.size}] "
                f"(the query holds {query.size} values), got {prefix}"
            )
        query = np.array(query[:prefix])
    if args.knn is not None:
        spec = QuerySpec(query=query, mode="knn", k=args.knn, domain=domain)
    else:
        spec = QuerySpec(
            query=query, mode="search", epsilon=args.epsilon, domain=domain
        )
    pool = _fanout_pool(getattr(args, "executor", "serial"))
    try:
        result = execute(index, spec, executor=pool)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    if args.knn is not None:
        print(f"{len(result)} nearest windows:")
    else:
        print(f"{len(result)} twins within epsilon={args.epsilon:g}:")
    rows = [
        {"position": position, "distance": round(distance, 6)}
        for position, distance in list(result)[: max(0, args.limit)]
    ]
    if rows:
        print(format_table(rows))
    if len(result) > len(rows):
        print(f"... and {len(result) - len(rows)} more")
    stats = result.stats
    print(
        f"stats: candidates={stats.candidates} "
        f"nodes_visited={stats.nodes_visited} "
        f"nodes_pruned={stats.nodes_pruned} "
        f"leaves_accessed={stats.leaves_accessed}"
    )
    return 0


def build_live_parser() -> argparse.ArgumentParser:
    """Parser for the ``live init|append|query|stats`` subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-twin live",
        description="Initialize, feed and query a durable live "
        "ingestion plane (WAL + sealed segments).",
    )
    commands = parser.add_subparsers(dest="live_command", required=True)

    init = commands.add_parser(
        "init", help="initialize a live index directory"
    )
    init.add_argument("--path", required=True, help="live index directory")
    init.add_argument(
        "--length", type=int, required=True, help="window length l"
    )
    init.add_argument(
        "--normalization",
        choices=("none", "per_window"),
        default="none",
        help="value regime (global z-norm is undefined for a growing "
        "series; default: none)",
    )
    init.add_argument(
        "--seal-threshold",
        type=int,
        default=None,
        help="delta windows per sealed segment (default: library default)",
    )
    init.add_argument(
        "--max-segments",
        type=int,
        default=None,
        help="segment count that triggers compaction (default: library "
        "default)",
    )
    seed_source = init.add_mutually_exclusive_group()
    seed_source.add_argument(
        "--input", help="CSV/text file with initial readings (optional)"
    )
    seed_source.add_argument(
        "--dataset",
        choices=("insect", "eeg"),
        help="seed with a surrogate dataset instead of a file",
    )
    init.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="fraction of --dataset to seed with (default: 0.05)",
    )
    init.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every journal write (power-loss safe, slower)",
    )
    init.add_argument(
        "--archive-format",
        choices=("npz", "raw"),
        default="npz",
        help="sealed-segment container: compressed npz files, or raw "
        "directories that recovery and process fan-out open O(1) via "
        "mmap (default: npz)",
    )

    append = commands.add_parser(
        "append", help="durably append readings to a live index"
    )
    append.add_argument("--path", required=True, help="live index directory")
    what = append.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--values", help="comma-separated readings, e.g. 1.5,2.0,1.8"
    )
    what.add_argument("--input", help="CSV/text file with readings")

    query = commands.add_parser(
        "query", help="run a twin or k-NN query against a live index"
    )
    query.add_argument("--path", required=True, help="live index directory")
    what = query.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--position",
        type=int,
        help="use the indexed window at this position as the query",
    )
    what.add_argument(
        "--query-file", help="CSV/text file with the query values"
    )
    query.add_argument(
        "--epsilon", type=float, default=None, help="twin threshold ε"
    )
    query.add_argument(
        "--knn", type=int, default=None, help="run a k-NN query instead of ε"
    )
    query.add_argument(
        "--query-length",
        type=int,
        default=None,
        help="use only the first m values of the query (variable-length "
        "twin search over window prefixes, any m <= l; tail positions "
        "included)",
    )
    query.add_argument(
        "--limit",
        type=int,
        default=10,
        help="matches to print (default: 10; totals always shown)",
    )
    query.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="segment fan-out: serial in-process walk, a thread pool, "
        "or a process pool whose workers mmap the sealed segments by "
        "path (default: serial; results are byte-identical)",
    )

    stats = commands.add_parser(
        "stats", help="segment/delta/WAL stats of a live index"
    )
    stats.add_argument("--path", required=True, help="live index directory")
    stats.add_argument(
        "--json",
        action="store_true",
        help="emit the stats as one JSON object instead of tables",
    )
    return parser


def _live_readings(args):
    """Readings from --values or --input for `live append`."""
    import numpy as np

    if getattr(args, "values", None):
        try:
            return np.asarray(
                [float(part) for part in args.values.split(",") if part.strip()]
            )
        except ValueError as exc:
            raise SystemExit(f"--values: {exc}") from exc
    from .data import load_series

    return load_series(args.input).values


def run_live(argv) -> int:
    """Execute one ``live`` subcommand; returns an exit code."""
    from .exceptions import ReproError

    try:
        return _run_live(argv)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _run_live(argv) -> int:
    from .live import LiveTwinIndex

    args = build_live_parser().parse_args(argv)

    if args.live_command == "init":
        initial = None
        if args.input:
            from .data import load_series

            initial = load_series(args.input).values
        elif args.dataset:
            from .data import load_dataset

            initial = load_dataset(args.dataset, scale=args.scale)
        options = {}
        if args.seal_threshold is not None:
            options["seal_threshold"] = args.seal_threshold
        if args.max_segments is not None:
            options["max_segments"] = args.max_segments
        with LiveTwinIndex.create(
            args.path,
            initial,
            length=args.length,
            normalization=args.normalization,
            fsync=args.fsync,
            archive_format=args.archive_format,
            **options,
        ) as live:
            print(f"initialized {live!r} at {args.path}")
        return 0

    if args.live_command == "append":
        readings = _live_readings(args)
        with LiveTwinIndex.recover(args.path) as live:
            added = live.append(readings)
            print(
                f"appended {len(readings)} readings "
                f"({added} new windows); now {live!r}"
            )
        return 0

    if args.live_command == "query":
        with LiveTwinIndex.recover(args.path) as live:
            return _run_plane_query(live, args)

    with LiveTwinIndex.recover(args.path) as live:
        snapshot = live.stats()
        if args.json:
            import json

            print(json.dumps(snapshot, indent=2, sort_keys=True))
            return 0
        segment_rows = snapshot.pop("segment_stats")
        print(f"{live!r} normalization={snapshot['normalization']}")
        print(format_table([snapshot]))
        if segment_rows:
            print(format_table(segment_rows))
    return 0


def build_obs_parser() -> argparse.ArgumentParser:
    """Parser for the ``obs export`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-twin obs",
        description="Export the process-default metrics registry "
        "(Prometheus text exposition or a JSON snapshot).",
    )
    commands = parser.add_subparsers(dest="obs_command", required=True)

    export = commands.add_parser(
        "export", help="dump the default metrics registry"
    )
    export.add_argument(
        "--format",
        choices=("prometheus", "json"),
        default="prometheus",
        help="exposition format (default: prometheus)",
    )
    return parser


def run_obs(argv) -> int:
    """Execute one ``obs`` subcommand; returns an exit code.

    A fresh process has an empty default registry, so this is mostly
    useful after in-process work (or from tools embedding the CLI); it
    exists so every surface of :mod:`repro.obs` is scriptable.
    """
    from .obs import default_registry, to_json, to_prometheus

    args = build_obs_parser().parse_args(argv)
    registry = default_registry()
    if args.format == "json":
        print(to_json(registry))
    else:
        # Prometheus exposition of an empty registry is the empty
        # string; print() still terminates the output with a newline.
        sys.stdout.write(to_prometheus(registry))
    return 0


def build_chaos_parser() -> argparse.ArgumentParser:
    """Parser for the ``chaos`` subcommands (fault-injection drivers
    over :mod:`repro.faults.chaos`)."""
    parser = argparse.ArgumentParser(
        prog="repro-twin chaos",
        description="Drive the serving stack through injected failures: "
        "kill-and-recover loops or fault storms against a durable live "
        "plane, reporting the recovery contract as JSON.",
    )
    commands = parser.add_subparsers(dest="chaos_command", required=True)

    kill = commands.add_parser(
        "kill", help="kill-and-recover loops with byte-exact oracle checks"
    )
    kill.add_argument(
        "--loops", type=int, default=10,
        help="simulated kills to inject (default: 10)",
    )
    kill.add_argument("--length", type=int, default=32)
    kill.add_argument("--seed", type=int, default=0)
    kill.add_argument(
        "--path", default=None,
        help="working directory (default: a fresh temp dir, removed after)",
    )

    storm = commands.add_parser(
        "storm", help="probabilistic fault storm on the WAL or query path"
    )
    storm.add_argument(
        "--mode", choices=("enospc", "io", "search"), default="enospc",
        help="fault class to rain (default: enospc)",
    )
    storm.add_argument("--appends", type=int, default=300)
    storm.add_argument("--queries", type=int, default=200)
    storm.add_argument("--probability", type=float, default=0.15)
    storm.add_argument("--seed", type=int, default=0)
    storm.add_argument(
        "--path", default=None,
        help="working directory (default: a fresh temp dir, removed after)",
    )
    return parser


def run_chaos(argv) -> int:
    """Execute one ``chaos`` subcommand; returns an exit code (non-zero
    when the recovery contract was violated)."""
    import json
    import shutil
    import tempfile

    from .faults import chaos

    args = build_chaos_parser().parse_args(argv)
    workdir = args.path or tempfile.mkdtemp(prefix="repro_chaos_")
    try:
        if args.chaos_command == "kill":
            report = chaos.run_kill_recover(
                workdir, loops=args.loops, length=args.length,
                seed=args.seed,
            )
            failed = report["exactness_violations"] != 0
        else:
            report = chaos.run_storm(
                workdir, mode=args.mode, appends=args.appends,
                queries=args.queries, probability=args.probability,
                seed=args.seed,
            )
            failed = (
                report["exactness_violations"] != 0
                or not report["serviceable_after_storm"]
            )
    finally:
        if args.path is None:
            shutil.rmtree(workdir, ignore_errors=True)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 1 if failed else 0


def build_sweep_parser() -> argparse.ArgumentParser:
    """Parser for the ``sweep`` subcommands (statistical benchmark
    sweeps over :mod:`repro.sweep`)."""
    parser = argparse.ArgumentParser(
        prog="repro-twin sweep",
        description="Run parameter-grid benchmark sweeps with "
        "per-scenario observability signals, render sweep reports, and "
        "gate fresh runs against committed baselines.",
    )
    commands = parser.add_subparsers(dest="sweep_command", required=True)

    run = commands.add_parser(
        "run", help="execute a sweep and write the JSON artifact"
    )
    run.add_argument(
        "--smoke", action="store_true",
        help="the tiny CI grid instead of the full-scale one",
    )
    run.add_argument(
        "--output", default="BENCH_sweep.json",
        help="artifact path (default: BENCH_sweep.json)",
    )
    run.add_argument(
        "--repetitions", type=int, default=None,
        help="override the spec's timed repetitions per scenario",
    )
    run.add_argument(
        "--warmup", type=int, default=None,
        help="override the spec's un-timed warmup replays per scenario",
    )
    run.add_argument("--seed", type=int, default=7)

    report = commands.add_parser(
        "report", help="render a sweep artifact as markdown"
    )
    report.add_argument("artifact", help="path to a BENCH_sweep.json")

    compare = commands.add_parser(
        "compare",
        help="gate a sweep artifact against a baseline (exit 1 on "
        "regression)",
    )
    compare.add_argument("current", help="freshly generated artifact")
    compare.add_argument("baseline", help="committed baseline artifact")
    compare.add_argument(
        "--threshold-scale", type=float, default=1.0,
        help="multiply every per-metric threshold (default: 1.0)",
    )
    return parser


def run_sweep_cli(argv) -> int:
    """Execute one ``sweep`` subcommand; returns an exit code
    (``compare`` exits non-zero on a regression verdict)."""
    from . import sweep
    from .bench.record import read_artifact
    from .exceptions import ReproError

    args = build_sweep_parser().parse_args(argv)
    try:
        if args.sweep_command == "run":
            spec = (
                sweep.smoke_spec(seed=args.seed)
                if args.smoke
                else sweep.full_spec(seed=args.seed)
            )
            def progress(index, total, scenario_id):
                print(f"[{index + 1}/{total}] {scenario_id}", flush=True)
            result = sweep.run_sweep(
                spec,
                repetitions=args.repetitions,
                warmup=args.warmup,
                progress=progress,
            )
            sweep.write_report(args.output, result, seed=args.seed)
            print(f"wrote {args.output} ({result['scenario_count']} scenarios)")
            return 0
        if args.sweep_command == "report":
            print(sweep.render_markdown(sweep.load_report(args.artifact)))
            return 0
        comparison = sweep.compare_artifacts(
            read_artifact(args.current),
            read_artifact(args.baseline),
            threshold_scale=args.threshold_scale,
        )
        print(sweep.render_compare(comparison))
        return 0 if comparison["passed"] else 1
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc


def build_lint_parser() -> argparse.ArgumentParser:
    """Parser for the ``lint`` command (project-invariant static
    analysis over :mod:`repro.lint`)."""
    from .lint import CHECKERS

    parser = argparse.ArgumentParser(
        prog="repro-twin lint",
        description="Audit the repro source tree against the project's "
        "own invariants (failpoint registry, crash safety, lock "
        "discipline, layering, public-API hygiene). Exits 1 when any "
        "violation is found.",
        epilog="checkers: " + ", ".join(sorted(CHECKERS)),
    )
    parser.add_argument(
        "--check",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this checker (repeatable; default: all)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="package root to audit (default: the installed repro "
        "package itself)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_checks",
        help="list the available checkers and exit",
    )
    return parser


def run_lint_cli(argv) -> int:
    """Execute the ``lint`` command; returns an exit code (0 clean,
    non-zero when violations were found)."""
    from .exceptions import ReproError
    from .lint import CHECKERS, run_lint

    args = build_lint_parser().parse_args(argv)
    if args.list_checks:
        width = max(len(name) for name in CHECKERS)
        for name, checker in sorted(CHECKERS.items()):
            print(f"{name:<{width}}  {checker.description}")
        return 0
    try:
        report = run_lint(args.root, checks=args.check)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc
    if args.format == "json":
        import json

        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.format_text())
    return report.exit_code


def run_engine(argv) -> int:
    """Execute one ``engine`` subcommand; returns an exit code.

    Library errors (bad parameters, unreadable archives, mismatched
    queries) surface as clean one-line messages instead of tracebacks.
    """
    from .exceptions import ReproError

    try:
        return _run_engine(argv)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _run_engine(argv) -> int:
    args = build_engine_parser().parse_args(argv)

    if args.engine_command == "build":
        from .engine import ShardedTSIndex
        from .persistence import save_index

        series = _engine_series(args)
        engine = ShardedTSIndex.build(
            series,
            args.length,
            normalization=args.normalization,
            shards=args.shards,
            max_workers=args.workers,
            frozen=args.frozen,
        )
        save_index(engine, args.output, format=args.format)
        build = engine.build_stats
        print(
            f"built {engine!r} in {build.seconds:.2f}s "
            f"(critical path; {build.nodes} nodes, {build.splits} splits)"
        )
        print(f"saved to {args.output}")
        return 0

    if args.engine_command == "query":
        return _run_plane_query(_engine_load(args.index), args)

    engine = _engine_load(args.index)
    if args.json:
        import json

        snapshot = {
            "normalization": engine.source.normalization.value,
            "shards": engine.shard_stats(),
        }
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"{engine!r} normalization={engine.source.normalization.value}")
    print(format_table(engine.shard_stats()))
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    argv = list(argv)
    if argv and argv[0] == "engine":
        return run_engine(argv[1:])
    if argv and argv[0] == "live":
        return run_live(argv[1:])
    if argv and argv[0] == "obs":
        return run_obs(argv[1:])
    if argv and argv[0] == "chaos":
        return run_chaos(argv[1:])
    if argv and argv[0] == "sweep":
        return run_sweep_cli(argv[1:])
    if argv and argv[0] == "lint":
        return run_lint_cli(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command in ("engine", "live", "obs", "chaos", "sweep", "lint"):
        # Reached only when the subsystem word was not the first
        # argument (main dispatches argv[0] before this parser runs).
        raise SystemExit(
            f"`{args.command}` must be the first argument: "
            f"repro-twin {args.command} ... (see "
            f"`repro-twin {args.command} --help`)"
        )
    contexts = _contexts(args)
    if args.command == "all":
        for command in ("table1", "table2", "intro") + FIGURES:
            _run_command(command, contexts)
    else:
        _run_command(args.command, contexts)
    return 0


if __name__ == "__main__":
    sys.exit(main())
