"""Command-line experiment driver.

Regenerate any table or figure of the paper::

    python -m repro.cli table1
    python -m repro.cli fig4 --dataset insect
    python -m repro.cli fig5 --dataset eeg --scale 0.05
    python -m repro.cli fig8 --dataset both --queries 20
    python -m repro.cli intro --dataset eeg
    python -m repro.cli all --queries 20 --scale-eeg 0.05

Defaults follow the paper (100 queries of length 100); ``--scale-eeg``
truncates the 1.8M-point EEG surrogate so tree construction stays
tractable in pure Python (DESIGN.md §4 explains why this preserves the
comparisons).
"""

from __future__ import annotations

import argparse
import sys

from .bench import experiments as exp
from .bench.reporting import format_series_table, format_table

#: Dataset scales used when the user does not override them.
DEFAULT_SCALE_INSECT = 1.0
DEFAULT_SCALE_EEG = 0.1

FIGURES = ("fig4", "fig5", "fig6", "fig7", "fig8")
COMMANDS = ("table1", "table2", "intro", "all") + FIGURES


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-twin",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("command", choices=COMMANDS, help="experiment to run")
    parser.add_argument(
        "--dataset",
        choices=("insect", "eeg", "both"),
        default="both",
        help="dataset(s) to run against (default: both)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=100,
        help="workload size (paper: 100)",
    )
    parser.add_argument(
        "--scale-insect",
        type=float,
        default=DEFAULT_SCALE_INSECT,
        help="fraction of the insect series to use (default: 1.0)",
    )
    parser.add_argument(
        "--scale-eeg",
        type=float,
        default=DEFAULT_SCALE_EEG,
        help="fraction of the EEG series to use (default: 0.1)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="override both dataset scales at once",
    )
    parser.add_argument(
        "--seed", type=int, default=1234, help="workload seed (default: 1234)"
    )
    return parser


def _contexts(args) -> list[exp.ExperimentContext]:
    names = ("insect", "eeg") if args.dataset == "both" else (args.dataset,)
    contexts = []
    for name in names:
        if args.scale is not None:
            scale = args.scale
        else:
            scale = args.scale_insect if name == "insect" else args.scale_eeg
        contexts.append(
            exp.ExperimentContext(
                dataset=name,
                scale=scale,
                query_count=args.queries,
                workload_seed=args.seed,
            )
        )
    return contexts


def _print_figure(data: exp.FigureData, *, chart: bool = True) -> None:
    print(f"\n== {data.figure} / {data.dataset} "
          f"(avg query time per method, ms) ==")
    print(
        format_series_table(
            data.sweep_name, data.sweep_values, data.series_ms, unit="ms"
        )
    )
    if chart:
        from .bench.charts import render_figure

        print()
        print(render_figure(data))
    checks = exp.check_figure_shape(data)
    if checks:
        print("shape checks: " + ", ".join(
            f"{name}={'PASS' if ok else 'FAIL'}" for name, ok in checks.items()
        ))


def _run_command(command: str, contexts) -> None:
    if command == "table1":
        print("\n== Table 1: datasets and distance thresholds ==")
        print(format_table(exp.table1_rows()))
        return
    if command == "table2":
        print("\n== Table 2: other parameters ==")
        print(format_table(exp.table2_rows()))
        return

    for ctx in contexts:
        print(f"\n### dataset={ctx.dataset} scale={ctx.scale:g} "
              f"n={len(ctx.series)} queries={ctx.query_count}")
        if command == "intro":
            report = exp.run_intro(ctx)
            rows = [{
                "epsilon": report["epsilon"],
                "queries": report["queries"],
                "twin results": report["twin_results"],
                "euclidean results": report["euclidean_results"],
                "excess factor": round(report["excess_factor"], 1),
                "missed twins": report["missed_twins"],
            }]
            print(format_table(rows))
        elif command == "fig4":
            _print_figure(exp.run_figure4(ctx))
        elif command == "fig5":
            _print_figure(exp.run_figure5(ctx))
        elif command == "fig6":
            _print_figure(exp.run_figure6(ctx))
        elif command == "fig7":
            _print_figure(exp.run_figure7(ctx))
        elif command == "fig8":
            report = exp.run_figure8(ctx)
            print("\n== fig8: memory footprint and build time ==")
            print(format_table(report["rows"]))


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    contexts = _contexts(args)
    if args.command == "all":
        for command in ("table1", "table2", "intro") + FIGURES:
            _run_command(command, contexts)
    else:
        _run_command(args.command, contexts)
    return 0


if __name__ == "__main__":
    sys.exit(main())
