"""Structured logging for the ``repro`` library.

Following the standard library convention for packages, the ``repro``
root logger carries a :class:`logging.NullHandler` (installed by
:func:`install_null_handler` at import time from ``repro/__init__``),
so the library stays silent unless the application configures logging.

Applications that want to see the library's events — segment seals,
compactions, WAL recovery, cache invalidation — call
:func:`configure_logging`:

>>> import repro.obs
>>> repro.obs.configure_logging(level="INFO")  # doctest: +SKIP

Events and levels:

* ``WARNING`` — live-plane recovery dropped a truncated or corrupt WAL
  tail (data past the last intact record is discarded);
* ``INFO`` — segment seal, compaction, WAL recovery summary;
* ``DEBUG`` — cache invalidation, compaction scheduling.
"""

from __future__ import annotations

import logging
from typing import Any

#: Name of the library's root logger.
ROOT_LOGGER_NAME = "repro"

_DEFAULT_FORMAT = (
    "%(asctime)s %(levelname)s %(name)s %(message)s"
)


def get_logger(name: str = ROOT_LOGGER_NAME) -> logging.Logger:
    """The library logger for ``name`` (dotted children of ``repro``)."""
    return logging.getLogger(name)


def install_null_handler() -> None:
    """Attach a :class:`logging.NullHandler` to the ``repro`` root
    logger (idempotent). Keeps the library silent by default without
    suppressing application-configured handlers."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    if not any(
        isinstance(handler, logging.NullHandler)
        for handler in root.handlers
    ):
        root.addHandler(logging.NullHandler())


def configure_logging(
    level: Any = "INFO",
    *,
    stream: Any = None,
    fmt: str = _DEFAULT_FORMAT,
) -> logging.Logger:
    """Attach a :class:`~logging.StreamHandler` to the ``repro`` root
    logger and set its level.

    Parameters
    ----------
    level:
        A :mod:`logging` level name (``"DEBUG"``, ``"INFO"``, ...) or
        numeric value.
    stream:
        Destination stream (defaults to ``sys.stderr``).
    fmt:
        Log record format string.

    Returns the configured root logger. Calling again replaces the
    handler installed by the previous call rather than stacking
    duplicates.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt))
    handler._repro_obs_handler = True
    root.addHandler(handler)
    root.setLevel(level)
    return root
