"""Exposition formats for a :class:`~repro.obs.metrics.MetricsRegistry`.

Two formats, both computed from the same :meth:`MetricsRegistry.collect
<repro.obs.metrics.MetricsRegistry.collect>` walk:

* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` /
  ``_count`` series for histograms), ready to serve from a
  ``/metrics`` endpoint;
* :func:`to_json` / :func:`json_snapshot` — a stable JSON document
  with one entry per metric, including derived p50/p90/p99 estimates
  for histograms so dashboards need no bucket math.

Output is deterministic: metrics sort by name, label children keep
insertion order, floats render via ``repr`` (shortest round-trip form).
"""

from __future__ import annotations

import json
import time
from typing import Any

_INF = float("inf")


def _format_value(value: float) -> str:
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r'\"')
        .replace("\n", r"\n")
    )


def _escape_help(value: str) -> str:
    return str(value).replace("\\", r"\\").replace("\n", r"\n")


def _label_str(names: Any, values: Any, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus(registry: Any) -> str:
    """Render ``registry`` in the Prometheus text exposition format
    (version 0.0.4). Returns a string ending in a newline; an empty
    registry renders to an empty string."""
    lines: list[str] = []
    for metric in registry.collect():
        samples = metric.samples()
        if not samples:
            continue
        lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        names = metric.label_names
        for values, leaf in samples:
            if metric.kind == "histogram":
                counts, total_sum, total_count = leaf.snapshot()
                cumulative = 0
                for bound, count in zip(
                    list(leaf.buckets) + [_INF], counts
                ):
                    cumulative += count
                    le = _label_str(
                        names, values,
                        f'le="{_format_value(bound)}"',
                    )
                    lines.append(
                        f"{metric.name}_bucket{le} {cumulative}"
                    )
                suffix = _label_str(names, values)
                lines.append(
                    f"{metric.name}_sum{suffix} "
                    f"{_format_value(total_sum)}"
                )
                lines.append(
                    f"{metric.name}_count{suffix} {total_count}"
                )
            else:
                suffix = _label_str(names, values)
                lines.append(
                    f"{metric.name}{suffix} "
                    f"{_format_value(leaf.value)}"
                )
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def json_snapshot(registry: Any) -> dict:
    """``registry`` as a JSON-ready dict: metadata plus one entry per
    metric. Histogram entries include bucket bounds/counts and derived
    p50/p90/p99."""
    metrics = []
    for metric in registry.collect():
        entry = {
            "name": metric.name,
            "type": metric.kind,
            "help": metric.help,
            "labels": list(metric.label_names),
            "samples": [],
        }
        for values, leaf in metric.samples():
            labels = dict(zip(metric.label_names, values))
            if metric.kind == "histogram":
                counts, total_sum, total_count = leaf.snapshot()
                sample = {
                    "labels": labels,
                    "count": total_count,
                    "sum": total_sum,
                    "buckets": [
                        {"le": bound, "count": count}
                        for bound, count in zip(leaf.buckets, counts)
                    ],
                    "inf_count": counts[-1],
                }
                sample.update(leaf.percentiles())
            else:
                sample = {"labels": labels, "value": leaf.value}
            entry["samples"].append(sample)
        metrics.append(entry)
    return {
        "registry": registry.name,
        "exported_unix": time.time(),  # lint: disable=wall-clock epoch timestamp, not a duration
        "age_seconds": registry.age_seconds,
        "metrics": metrics,
    }


def to_json(registry: Any, indent: int = 2) -> str:
    """:func:`json_snapshot` serialized with sorted keys (stable
    output for golden tests and diffs)."""
    return json.dumps(
        json_snapshot(registry), indent=indent, sort_keys=True
    )
